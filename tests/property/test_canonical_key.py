"""Properties of :func:`repro.engine.canonical_query_key` — the isomorphism
key the batch layer's dedup pass trusts.

The contract the session relies on is one-directional soundness: **equal
keys must imply equal answer sets over any shared database**.  Collisions
between non-isomorphic queries would silently serve one query's answers for
another; missed collisions (distinct keys for isomorphic queries) only cost
a duplicate evaluation.  The properties below draw query shapes from the
workload generators (the population the batch workloads are built from) and
check:

* a variable renaming always collides with its original (the dedup hit the
  batch layer exists for);
* two draws with equal keys agree bit-for-bit with the naive solver on a
  shared random database (soundness, checked semantically — no appeal to
  the key's own construction);
* distinct generator shapes never collide (no-collision regression over
  the concrete population);
* queries with self-joins take the exact fallback: only literally equal
  queries collide, and the key says so (``"exact"`` tag).
"""

from hypothesis import given, settings, strategies as st

from repro.cq import Atom, ConjunctiveQuery
from repro.cq import generators as cqgen
from repro.cq.query import Constant
from repro.cq.homomorphism import naive_enumerate_answers
from repro.engine import canonical_query_key


def renamed(query: ConjunctiveQuery, suffix: str = "_r") -> ConjunctiveQuery:
    """A structurally isomorphic copy: every variable renamed."""

    def rename(term):
        return term if isinstance(term, Constant) else f"{term}{suffix}"

    atoms = [
        Atom(atom.relation, [rename(term) for term in atom.terms])
        for atom in query.atoms
    ]
    return ConjunctiveQuery(
        atoms, free_variables=[rename(v) for v in query.free_variables]
    )


def _shape(kind: str, size: int, head: str) -> ConjunctiveQuery:
    """One self-join-free query from the workload generator population."""
    if kind == "chain":
        query = cqgen.chain_query(size)
    elif kind == "star":
        query = cqgen.star_query(size)
    elif kind == "cycle":
        query = cqgen.cycle_query(size + 1)
    elif kind == "hub-cycle":
        query = cqgen.hub_cycle_query(size + 1)
    else:
        query = cqgen.clique_query(size + 1)
    if head == "boolean":
        return query.as_boolean()
    if head == "projected":
        return query.project(query.variables[:1])
    return query


SHAPE_KINDS = ("chain", "star", "cycle", "hub-cycle", "clique")
SHAPE_SIZES = (2, 3, 4)
SHAPE_HEADS = ("full", "boolean", "projected")

shapes = st.tuples(
    st.sampled_from(SHAPE_KINDS),
    st.sampled_from(SHAPE_SIZES),
    st.sampled_from(SHAPE_HEADS),
)


@settings(max_examples=60, deadline=None)
@given(shape=shapes, suffix=st.sampled_from(["_r", "__", "9"]))
def test_variable_renaming_always_collides(shape, suffix):
    query = _shape(*shape)
    copy = renamed(query, suffix)
    assert canonical_query_key(copy) == canonical_query_key(query)


@settings(max_examples=80, deadline=None)
@given(first=shapes, second=shapes, seed=st.integers(0, 2**16))
def test_equal_keys_imply_equal_answers(first, second, seed):
    query_a, query_b = _shape(*first), renamed(_shape(*second))
    if canonical_query_key(query_a) != canonical_query_key(query_b):
        return
    # Colliding queries must be interchangeable: same answers over any
    # database.  (Checked against the naive reference solver, so the
    # property cannot inherit a bug from the key's own construction.)
    database = cqgen.random_database(query_a, 4, 12, seed=seed)
    assert naive_enumerate_answers(query_a, database) == naive_enumerate_answers(
        query_b, database
    )


def test_distinct_generator_shapes_never_collide():
    population = {}
    for kind in SHAPE_KINDS:
        for size in SHAPE_SIZES:
            for head in SHAPE_HEADS:
                key = canonical_query_key(_shape(kind, size, head))
                label = (kind, size, head)
                if key in population:
                    raise AssertionError(
                        f"key collision between {population[key]} and {label}"
                    )
                population[key] = label


@settings(max_examples=40, deadline=None)
@given(
    length=st.sampled_from([4, 6, 8]),
    head=st.sampled_from(["boolean", "pair"]),
)
def test_self_joins_take_the_exact_fallback(length, head):
    query = cqgen.zigzag_cycle_query(
        length, free_variables=() if head == "boolean" else ["x0", "x1"]
    )
    assert query.has_self_joins()
    key = canonical_query_key(query)
    assert key[0] == "exact"
    # Exact duplicates still deduplicate; renamings of a self-join query do
    # NOT (canonicalising them would be graph canonisation) — the batch
    # layer must evaluate both rather than risk a wrong merge.
    assert canonical_query_key(ConjunctiveQuery(query.atoms, query.free_variables)) == key
    assert canonical_query_key(renamed(query)) != key


def test_reordered_projection_does_not_collide():
    # Answer tuples follow the head ORDER; a reordered head is a different
    # result schema and must never deduplicate against the original.
    chain = cqgen.chain_query(2)
    assert canonical_query_key(chain.project(["x0", "x2"])) != canonical_query_key(
        chain.project(["x2", "x0"])
    )
