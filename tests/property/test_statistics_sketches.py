"""Property tests for the statistics sketches the cost-based ordering
stands on (:mod:`repro.cq.statistics`).

Three families of invariants, over arbitrary value streams:

* **Space-Saving bounds** — per value, ``estimate`` is an upper bound on
  the true frequency, ``estimate - error`` a lower bound, and every value
  whose true frequency exceeds ``total/capacity`` is tracked (the guarantee
  hot-key detection relies on: a genuinely hot key is never missed);
* **distinct monotonicity** — a :class:`ColumnSketch`'s reported distinct
  count never decreases under append, in the exact range and across the
  exact→KMV hand-off (the property incremental consumers rely on when
  sketches are patched through the version seam);
* **estimate-vs-exact** — on relations small enough that every value is
  tracked exactly (within Space-Saving capacity, no evictions), the join
  estimator reproduces the true join size exactly, and the semijoin
  estimator the true surviving fraction bound.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.cq.relational import NamedRelation, natural_join_all
from repro.cq.statistics import (
    SPACE_SAVING_CAPACITY,
    ColumnSketch,
    RelationStatistics,
    SpaceSaving,
    estimate_join_rows,
    estimate_semijoin_fraction,
)

VALUES = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=400
)
CAPACITY = st.integers(min_value=1, max_value=12)


@settings(max_examples=200, deadline=None)
@given(values=VALUES, capacity=CAPACITY)
def test_space_saving_bounds(values, capacity):
    summary = SpaceSaving(capacity)
    for value in values:
        summary.add(value)
    true = Counter(values)
    assert summary.total == len(values)
    assert len(summary) <= capacity
    for value, frequency in true.items():
        estimate, error = summary.estimate(value)
        assert estimate >= frequency, "Space-Saving lost its upper bound"
        assert estimate - error <= frequency, "Space-Saving lost its lower bound"


@settings(max_examples=200, deadline=None)
@given(values=VALUES, capacity=CAPACITY)
def test_space_saving_tracks_every_true_heavy_hitter(values, capacity):
    summary = SpaceSaving(capacity)
    for value in values:
        summary.add(value)
    tracked = summary.upper_bounds()
    threshold = len(values) / capacity
    for value, frequency in Counter(values).items():
        if frequency > threshold:
            assert value in tracked, (
                f"value {value} has frequency {frequency} > n/k={threshold} "
                "but is not tracked"
            )


@settings(max_examples=200, deadline=None)
@given(
    values=VALUES,
    split=st.integers(min_value=0, max_value=400),
)
def test_distinct_count_is_monotone_under_append(values, split):
    sketch = ColumnSketch()
    previous = 0.0
    for value in values[: split % (len(values) + 1)]:
        sketch.add(value)
    previous = sketch.distinct if sketch.rows else 0.0
    for value in values:
        sketch.add(value)
        current = sketch.distinct
        assert current >= previous, "distinct estimate decreased under append"
        previous = current
    # In the exact range (always, for these sizes) the count is exact.
    assert sketch.exact


@settings(max_examples=150, deadline=None)
@given(values=st.sets(st.integers(min_value=0, max_value=1000), max_size=200))
def test_distinct_count_is_exact_below_the_limit(values):
    sketch = ColumnSketch()
    for value in values:
        sketch.add(value)
    if values:
        assert sketch.distinct == len(values)
        assert sketch.minimum == min(values)
        assert sketch.maximum == max(values)


SMALL_COLUMN = st.sets(
    st.integers(min_value=0, max_value=60),
    min_size=1,
    max_size=SPACE_SAVING_CAPACITY,
)


@settings(max_examples=200, deadline=None)
@given(left=SMALL_COLUMN, right=SMALL_COLUMN)
def test_join_estimate_is_exact_when_everything_is_tracked(left, right):
    # Single-column relations with at most SPACE_SAVING_CAPACITY distinct
    # values: every value is a tracked "hot" value with an exact count, so
    # the skew-corrected estimator must reproduce the true join size.
    relation_left = NamedRelation(("x",), {(v,) for v in left})
    relation_right = NamedRelation(("x",), {(v,) for v in right})
    stats_left = RelationStatistics.from_rows(("x",), relation_left.rows)
    stats_right = RelationStatistics.from_rows(("x",), relation_right.rows)
    estimate = estimate_join_rows(stats_left, stats_right, ("x",))
    exact = len(left & right)
    assert round(estimate) == exact


@settings(max_examples=200, deadline=None)
@given(left=SMALL_COLUMN, right=SMALL_COLUMN)
def test_semijoin_fraction_is_exact_when_everything_is_tracked(left, right):
    stats_left = RelationStatistics.from_rows(("x",), [(v,) for v in left])
    stats_right = RelationStatistics.from_rows(("x",), [(v,) for v in right])
    fraction = estimate_semijoin_fraction(stats_left, stats_right, ("x",))
    exact = len(left & right) / len(left)
    assert abs(fraction - exact) < 1e-9


@settings(max_examples=60, deadline=None)
@given(
    left=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=60
    ),
    right=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=60
    ),
    mid=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=60
    ),
)
def test_cost_based_multiway_join_matches_pairwise_reference(left, right, mid):
    # The ordering decision must never change the *result*: a three-relation
    # pool (the smallest with a genuine ordering choice, hence the cost
    # path) joined by natural_join_all equals the fixed-order reference.
    a = NamedRelation(("x", "y"), set(left))
    b = NamedRelation(("y", "z"), set(right))
    c = NamedRelation(("x", "z"), set(mid))
    joined = natural_join_all([a, b, c])
    reference = a.natural_join(b).natural_join(c).project(joined.columns)
    assert joined.rows == reference.rows
