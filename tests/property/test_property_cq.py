"""Property-based tests for the CQ engine and the Theorem 3.4 reduction."""

from hypothesis import given, settings, strategies as st

from repro.cq import generators as cqgen
from repro.cq.decomposition_eval import (
    decomposition_boolean_answer,
    decomposition_count_answers,
    decomposition_enumerate_answers,
)
from repro.cq.homomorphism import boolean_answer, count_answers, enumerate_answers
from repro.dilutions import DilutionSequence, MergeOnVertex, DeleteVertex
from repro.hypergraphs import Hypergraph
from repro.reductions import reduce_along_dilution
from repro.reductions.parsimonious import verify_answer_preservation, verify_parsimony


@st.composite
def small_query_and_database(draw):
    """A random small query (chain/cycle/star/jigsaw) with a random database."""
    kind = draw(st.sampled_from(["chain", "cycle", "star", "jigsaw"]))
    if kind == "chain":
        query = cqgen.chain_query(draw(st.integers(2, 4)))
    elif kind == "cycle":
        query = cqgen.cycle_query(draw(st.integers(3, 5)))
    elif kind == "star":
        query = cqgen.star_query(draw(st.integers(2, 4)))
    else:
        query = cqgen.jigsaw_query(2, 2)
    seed = draw(st.integers(0, 10_000))
    planted = draw(st.booleans())
    if planted:
        database = cqgen.planted_database(query, 3, draw(st.integers(2, 6)), seed=seed)
    else:
        database = cqgen.random_database(query, 3, draw(st.integers(2, 6)), seed=seed)
    return query, database


@given(small_query_and_database())
@settings(max_examples=40, deadline=None)
def test_decomposition_evaluation_agrees_with_baseline(instance):
    query, database = instance
    assert decomposition_boolean_answer(query, database) == boolean_answer(query, database)
    assert decomposition_enumerate_answers(query, database) == enumerate_answers(query, database)
    assert decomposition_count_answers(query, database) == count_answers(query, database)


@st.composite
def merge_reduction_instance(draw):
    """A source hypergraph with one merge operation, plus a database for the
    diluted query — the minimal non-trivial Theorem 3.4 scenario."""
    extra = draw(st.integers(1, 3))
    edges = [{"a", "v"}, {"v", "b"}] + [{f"w{i}", f"w{i+1}"} for i in range(extra)]
    edges.append({"b", "w0"})
    source = Hypergraph(edges=edges)
    sequence = DilutionSequence([MergeOnVertex("v")])
    seed = draw(st.integers(0, 10_000))
    return source, sequence, seed


@given(merge_reduction_instance())
@settings(max_examples=25, deadline=None)
def test_reduction_preserves_answers_and_counts(instance):
    source, sequence, seed = instance
    diluted = sequence.apply(source)
    query = cqgen.query_from_hypergraph(diluted)
    database = cqgen.random_database(query, 3, 5, seed=seed)
    result = reduce_along_dilution(query, database, source, sequence)
    assert result.query.hypergraph().edges == source.edges
    assert verify_answer_preservation(result)
    assert verify_parsimony(result)


@given(st.integers(0, 10_000), st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_vertex_deletion_reduction_roundtrip(seed, length):
    source = Hypergraph(
        edges=[{f"x{i}", f"x{i+1}", "extra"} if i == 0 else {f"x{i}", f"x{i+1}"} for i in range(length)]
    )
    sequence = DilutionSequence([DeleteVertex("extra")])
    diluted = sequence.apply(source)
    query = cqgen.query_from_hypergraph(diluted)
    database = cqgen.random_database(query, 3, 6, seed=seed)
    result = reduce_along_dilution(query, database, source, sequence)
    assert verify_answer_preservation(result)
    assert verify_parsimony(result)
