"""Property-based tests for the hypergraph substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.hypergraphs import Hypergraph, dual_hypergraph, primal_graph, reduce_hypergraph
from repro.hypergraphs.properties import is_alpha_acyclic


@st.composite
def hypergraphs(draw, max_vertices: int = 8, max_edges: int = 8):
    """Random small hypergraphs over integer vertices."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    vertices = list(range(n))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = [
        draw(st.sets(st.sampled_from(vertices), min_size=1, max_size=min(4, n)))
        for _ in range(num_edges)
    ]
    return Hypergraph(vertices=vertices, edges=edges)


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_degree_rank_duality(h):
    """degree(H^d) <= rank(H) and rank(H^d) <= degree(H) always hold."""
    dual = dual_hypergraph(h)
    assert dual.degree() <= max(1, h.rank())
    assert dual.rank() <= max(1, h.degree())


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_reduction_is_idempotent_and_reduced(h):
    reduced = reduce_hypergraph(h)
    assert reduce_hypergraph(reduced) == reduced
    if reduced.edges:
        assert reduced.is_reduced()


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_vertex_deletion_never_increases_degree_or_size(h):
    for v in list(h.vertices)[:3]:
        result = h.delete_vertex(v)
        assert result.degree() <= h.degree()
        assert result.size <= h.size


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_merge_never_increases_degree(h):
    for v in list(h.vertices)[:3]:
        merged = h.merge_on_vertex(v)
        assert merged.degree() <= max(1, h.degree())


@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_primal_graph_is_a_graph_with_same_connectivity(h):
    primal = primal_graph(h)
    assert primal.is_graph()
    assert len(primal.connected_components()) == len(h.connected_components())


@given(hypergraphs())
@settings(max_examples=40, deadline=None)
def test_acyclicity_invariant_under_adding_covering_edge(h):
    if not h.edges:
        return
    covered = h.add_edge(frozenset().union(*h.edges))
    assert is_alpha_acyclic(covered)


@given(hypergraphs(), hypergraphs())
@settings(max_examples=30, deadline=None)
def test_isomorphism_reflexive_and_label_invariant(a, b):
    from repro.hypergraphs.isomorphism import are_isomorphic

    assert are_isomorphic(a, a)
    relabelled = a.relabel(lambda v: ("tag", v))
    assert are_isomorphic(a, relabelled)
