"""Property-based tests for width bounds and dilution invariants."""

from hypothesis import given, settings, strategies as st

from repro.dilutions import DeleteSubedge, DeleteVertex, MergeOnVertex
from repro.hypergraphs import Hypergraph, generators
from repro.hypergraphs.properties import is_alpha_acyclic
from repro.widths.ghw import ghw_lower_bound, ghw_upper_bound
from repro.widths.treewidth import treewidth_lower_bound, treewidth_upper_bound


@st.composite
def degree2_hypergraphs(draw):
    """Random degree-2 hypergraphs: duals of random graphs."""
    n = draw(st.integers(min_value=4, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.2, max_value=0.7))
    h = generators.random_degree2_hypergraph(n, p, seed=seed)
    return h


@given(degree2_hypergraphs())
@settings(max_examples=30, deadline=None)
def test_ghw_bounds_are_ordered_and_certified(h):
    if not h.edges:
        return
    upper = ghw_upper_bound(h)
    lower = ghw_lower_bound(h, separator_budget=2)
    assert lower <= upper.upper
    assert upper.decomposition is None or upper.decomposition.is_valid_for(h)
    if is_alpha_acyclic(h):
        assert upper.upper == 1


@given(degree2_hypergraphs())
@settings(max_examples=30, deadline=None)
def test_treewidth_bounds_ordered(h):
    if not h.vertices:
        return
    assert treewidth_lower_bound(h) <= treewidth_upper_bound(h).upper


@given(degree2_hypergraphs(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_random_dilution_operations_respect_lemma32(h, seed):
    import random

    if not h.vertices:
        return
    rng = random.Random(seed)
    current = h
    for _ in range(3):
        if not current.vertices:
            break
        vertex = rng.choice(sorted(current.vertices, key=repr))
        operation = rng.choice([DeleteVertex(vertex), MergeOnVertex(vertex)])
        successor = operation.apply(current)
        # Lemma 3.2 (1) and (2).
        assert successor.degree() <= max(1, current.degree())
        assert successor.size <= current.size
        current = successor


@given(degree2_hypergraphs())
@settings(max_examples=20, deadline=None)
def test_subedge_deletion_preserves_ghw_upper_bound_direction(h):
    subedges = [
        e for e in h.edges if any(e < other for other in h.edges)
    ]
    if not subedges:
        return
    operation = DeleteSubedge(sorted(subedges, key=lambda e: sorted(map(repr, e)))[0])
    successor = operation.apply(h)
    # Removing a subedge cannot increase the ghw upper bound beyond the
    # original (the same decomposition still works).
    assert ghw_upper_bound(successor).upper <= ghw_upper_bound(h).upper + 1
