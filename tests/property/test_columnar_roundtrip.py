"""Property tests pinning the columnar kernel to the tuple-set kernel.

Two invariants, over random relations:

* **round-trip identity** — ``ColumnarRelation.from_named(r).to_named()``
  is ``r`` (same columns, same rows), including relations whose values mix
  types within a column and the zero-column units;
* **operation agreement** — joins (and semijoins / projections, which the
  join passes are built from) computed columnar-side decode to exactly what
  ``NamedRelation`` computes tuple-set-side, with both relations interned
  into one shared dictionary, in either argument order.
"""

from hypothesis import given, settings, strategies as st

from repro.cq.columnar import ColumnarRelation, ValueInterner
from repro.cq.relational import NamedRelation

# Small pools keep collisions (joins that actually match) likely while the
# mixed-type values exercise interning across Python equality classes.
VALUES = st.sampled_from([0, 1, 2, 3, True, "a", "b", "zz", 1.5, None, (1, 2)])
COLUMN_POOL = ("u", "v", "w", "x", "y", "z")


def relations(min_width=0, max_width=4):
    def build(columns):
        width = len(columns)
        rows = st.sets(
            st.tuples(*[VALUES] * width) if width else st.just(()),
            max_size=24,
        )
        return rows.map(lambda r: NamedRelation(columns, r))

    return st.sampled_from(
        [
            COLUMN_POOL[start : start + width]
            for width in range(min_width, max_width + 1)
            for start in range(len(COLUMN_POOL) - width + 1)
        ]
    ).flatmap(build)


@settings(max_examples=200, deadline=None)
@given(relation=relations())
def test_round_trip_is_identity(relation):
    interner = ValueInterner()
    columnar = ColumnarRelation.from_named(relation, interner)
    back = columnar.to_named()
    assert back.columns == relation.columns
    assert back == relation
    assert len(columnar) == len(relation.rows)


@settings(max_examples=200, deadline=None)
@given(left=relations(min_width=1), right=relations(min_width=1))
def test_natural_join_agrees_with_tuple_set_kernel(left, right):
    interner = ValueInterner()
    columnar_left = ColumnarRelation.from_named(left, interner)
    columnar_right = ColumnarRelation.from_named(right, interner)
    expected = left.natural_join(right)
    joined = columnar_left.natural_join(columnar_right)
    assert joined.columns == expected.columns
    assert joined.to_named() == expected
    # Join is commutative up to column order; both orders must decode right.
    assert columnar_right.natural_join(columnar_left).to_named() == right.natural_join(left)


@settings(max_examples=200, deadline=None)
@given(left=relations(min_width=1), right=relations(min_width=1))
def test_semijoin_agrees_with_tuple_set_kernel(left, right):
    interner = ValueInterner()
    columnar_left = ColumnarRelation.from_named(left, interner)
    columnar_right = ColumnarRelation.from_named(right, interner)
    assert columnar_left.semijoin(columnar_right).to_named() == left.semijoin(right)


@settings(max_examples=200, deadline=None)
@given(relation=relations(min_width=1), data=st.data())
def test_projection_agrees_with_tuple_set_kernel(relation, data):
    keep = data.draw(
        st.permutations(relation.columns).flatmap(
            lambda order: st.integers(0, len(order)).map(lambda n: tuple(order[:n]))
        )
    )
    interner = ValueInterner()
    columnar = ColumnarRelation.from_named(relation, interner)
    assert columnar.project(keep).to_named() == relation.project(keep)
