"""Property tests for the worker-affinity assignment functions.

Three invariants the owner-routed process runtime stands on, over random
token sets and worker pools:

* **determinism** — :func:`assign_pieces` is a pure function of the two
  *sets*: iteration order, duplicates, and shuffling never change the
  result (so a coordinator restart or a differential replay reroutes
  identically);
* **exact balance** — with ``n`` tokens over ``w`` workers, every worker
  owns ``n // w`` or ``n // w + 1`` pieces, with precisely ``n % w``
  workers at the higher load (the per-worker memory bound);
* **minimal movement** — :func:`reassign_pieces` after removing one worker
  moves *only* that worker's tokens (a worker death never disturbs a
  surviving worker's residency) and lands back in a ±1-balanced state.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.sharding import (
    assign_pieces,
    reassign_pieces,
    rendezvous_rank,
    rendezvous_score,
)

TOKENS = st.sets(
    st.integers(min_value=0, max_value=10_000).map(lambda i: f"ds{i}"),
    min_size=1,
    max_size=64,
)
WORKERS = st.integers(min_value=1, max_value=12)


@settings(max_examples=200, deadline=None)
@given(tokens=TOKENS, workers=WORKERS, seed=st.randoms())
def test_assignment_is_deterministic(tokens, workers, seed):
    pool = list(range(workers))
    baseline = assign_pieces(tokens, pool)
    shuffled_tokens = list(tokens) * 2
    seed.shuffle(shuffled_tokens)
    shuffled_pool = pool * 2
    seed.shuffle(shuffled_pool)
    assert assign_pieces(shuffled_tokens, shuffled_pool) == baseline
    # ... and every token lands on a real worker.
    assert set(baseline) == set(tokens)
    assert set(baseline.values()) <= set(pool)


@settings(max_examples=200, deadline=None)
@given(tokens=TOKENS, workers=WORKERS)
def test_assignment_is_balanced_within_one_piece(tokens, workers):
    pool = range(workers)
    assignment = assign_pieces(tokens, pool)
    loads = {worker: 0 for worker in pool}
    for owner in assignment.values():
        loads[owner] += 1
    floor_load = len(tokens) // workers
    assert set(loads.values()) <= {floor_load, floor_load + 1}
    assert sum(1 for load in loads.values() if load == floor_load + 1) == (
        len(tokens) % workers
    )


@settings(max_examples=200, deadline=None)
@given(tokens=TOKENS, workers=st.integers(min_value=2, max_value=12), data=st.data())
def test_removing_a_worker_moves_only_its_pieces(tokens, workers, data):
    pool = list(range(workers))
    assignment = assign_pieces(tokens, pool)
    dead = data.draw(st.sampled_from(pool))
    reassigned = reassign_pieces(assignment, dead, pool)
    assert set(reassigned) == set(assignment)
    survivors = set(pool) - {dead}
    for token, owner in assignment.items():
        if owner == dead:
            assert reassigned[token] in survivors
        else:
            # Minimal movement: a surviving worker's pieces never move.
            assert reassigned[token] == owner
    # The survivors end ±1 balanced again.
    loads = {worker: 0 for worker in survivors}
    for owner in reassigned.values():
        loads[owner] += 1
    assert max(loads.values()) - min(loads.values()) <= 1


@settings(max_examples=100, deadline=None)
@given(tokens=TOKENS, workers=WORKERS)
def test_rendezvous_rank_orders_by_score(tokens, workers):
    pool = list(range(workers))
    for token in sorted(tokens)[:5]:
        ranked = rendezvous_rank(token, pool)
        assert sorted(ranked) == pool
        scores = [rendezvous_score(token, worker) for worker in ranked]
        assert scores == sorted(scores, reverse=True)
