"""The indexed solver is observationally identical to the naive reference.

Property tests over randomized query/database pairs (including constants and
repeated variables, which exercise the single-pass selection in the atom
index) plus targeted tests for the ``_AtomIndex`` primitives: inverted-index
consistency checks and trie-backed extension enumeration.
"""

from hypothesis import given, settings, strategies as st

from repro.cq import generators as cqgen
from repro.cq.database import Database
from repro.cq.homomorphism import (
    _AtomConstraint,
    _AtomIndex,
    _solve,
    _solve_naive,
    boolean_answer,
    count_answers,
    enumerate_answers,
)
from repro.cq.query import Atom, ConjunctiveQuery, Constant


def _solution_set(solutions, variables):
    return {tuple(solution[v] for v in variables) for solution in solutions}


@st.composite
def query_and_database(draw):
    """A random small query (chain/cycle/star/clique/jigsaw) with a random or
    planted database."""
    kind = draw(st.sampled_from(["chain", "cycle", "star", "clique", "jigsaw"]))
    if kind == "chain":
        query = cqgen.chain_query(draw(st.integers(2, 4)))
    elif kind == "cycle":
        query = cqgen.cycle_query(draw(st.integers(3, 5)))
    elif kind == "star":
        query = cqgen.star_query(draw(st.integers(2, 4)))
    elif kind == "clique":
        query = cqgen.clique_query(3)
    else:
        query = cqgen.jigsaw_query(2, 2)
    seed = draw(st.integers(0, 10_000))
    tuples = draw(st.integers(2, 8))
    if draw(st.booleans()):
        database = cqgen.planted_database(query, 3, tuples, seed=seed)
    else:
        database = cqgen.random_database(query, 4, tuples, seed=seed)
    return query, database


@given(query_and_database())
@settings(max_examples=60, deadline=None)
def test_indexed_solver_equals_naive_solver(instance):
    query, database = instance
    variables = query.variables
    indexed = _solution_set(_solve(query, database), variables)
    naive = _solution_set(_solve_naive(query, database), variables)
    assert indexed == naive


@given(query_and_database())
@settings(max_examples=30, deadline=None)
def test_public_api_consistency(instance):
    query, database = instance
    answers = enumerate_answers(query, database)
    assert boolean_answer(query, database) == bool(answers)
    assert count_answers(query, database) == len(answers)


def _constant_query():
    return ConjunctiveQuery(
        [
            Atom("R", ["x", Constant(1)]),
            Atom("S", ["x", "y", "y"]),
        ]
    )


def _constant_database():
    database = Database()
    for row in [(0, 1), (2, 1), (2, 3), (0, 0)]:
        database.add_fact("R", row)
    for row in [(0, 5, 5), (2, 5, 5), (2, 5, 6), (0, 0, 0)]:
        database.add_fact("S", row)
    return database


def test_constants_and_repeated_variables_agree():
    query, database = _constant_query(), _constant_database()
    variables = query.variables
    assert _solution_set(_solve(query, database), variables) == _solution_set(
        _solve_naive(query, database), variables
    ) == {(0, 5), (2, 5), (0, 0)}


class TestAtomIndexPrimitives:
    def _index(self):
        database = Database()
        for row in [(1, 2), (1, 3), (2, 3), (3, 1)]:
            database.add_fact("R", row)
        return _AtomIndex(Atom("R", ["x", "y"]), database), database

    def test_assignments_match_reference(self):
        index, database = self._index()
        reference = _AtomConstraint(Atom("R", ["x", "y"]), database)
        indexed = {tuple(values) for values in index.assignments}
        naive = {
            tuple(a[v] for v in reference.variables) for a in reference.assignments
        }
        assert indexed == naive

    def test_consistent_matches_reference(self):
        index, database = self._index()
        reference = _AtomConstraint(Atom("R", ["x", "y"]), database)
        for partial in [{}, {"x": 1}, {"y": 3}, {"x": 1, "y": 3}, {"x": 9}, {"z": 0}]:
            assert index.consistent(partial) == reference.consistent(partial)

    def test_extensions_prefix_and_non_prefix(self):
        index, _ = self._index()
        # Bound prefix (x): trie walk.
        prefix = {frozenset(e.items()) for e in index.extensions({"x": 1})}
        assert prefix == {
            frozenset({("x", 1), ("y", 2)}),
            frozenset({("x", 1), ("y", 3)}),
        }
        # Bound non-prefix (y): inverted-index fallback.
        non_prefix = {frozenset(e.items()) for e in index.extensions({"y": 3})}
        assert non_prefix == {
            frozenset({("x", 1), ("y", 3)}),
            frozenset({("x", 2), ("y", 3)}),
        }
        # Unconstrained: all assignments.
        assert len(list(index.extensions({}))) == 4

    def test_inverted_index_layout(self):
        index, _ = self._index()
        assert set(index.inverted["x"]) == {1, 2, 3}
        ids = index.inverted["x"][1]
        assert {index.assignments[rid] for rid in ids} == {(1, 2), (1, 3)}

    def test_constant_only_atom(self):
        database = Database()
        database.add_fact("Flag", (7,))
        present = _AtomIndex(Atom("Flag", [Constant(7)]), database)
        absent = _AtomIndex(Atom("Flag", [Constant(8)]), database)
        assert present.assignments == [()]
        assert list(present.extensions({})) == [{}]
        assert absent.assignments == []
        assert not absent.consistent({})
