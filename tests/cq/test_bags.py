"""Bag materialisation regressions (repro.cq.bags).

The load-bearing invariant: atoms sharing a variable scope but carrying
different relation symbols must *all* be joined into every bag whose cover
uses that scope — a single repr-min representative would leave the bag
relation looser than the query at that node.
"""

import pytest

from repro.cq import Atom, ConjunctiveQuery, Database, Relation
from repro.cq.bags import atoms_by_scope, build_bag_join_tree
from repro.cq.decomposition_eval import (
    decomposition_count_answers,
    decomposition_enumerate_answers,
)
from repro.cq.homomorphism import count_answers, enumerate_answers
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.tree_decomposition import TreeDecomposition


@pytest.fixture
def same_scope_instance():
    """Two atoms over the same scope {x, y} whose extensions differ."""
    query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["x", "y"])])
    database = Database(
        [
            Relation("R", 2, {(1, 2), (3, 4), (5, 6)}),
            Relation("S", 2, {(1, 2), (3, 9)}),
        ]
    )
    return query, database


def test_atoms_by_scope_groups_all_atoms(same_scope_instance):
    query, _ = same_scope_instance
    groups = atoms_by_scope(query)
    assert set(groups) == {frozenset({"x", "y"})}
    assert [atom.relation for atom in groups[frozenset({"x", "y"})]] == ["R", "S"]


def test_every_covering_bag_joins_all_same_scope_atoms(same_scope_instance):
    """Regression: with the old repr-min mapping, a bag covering {x, y} at a
    node that was not the atoms' assignment host materialised only R — the
    looser relation {(1,2),(3,4),(5,6)} instead of R ⋈ S = {(1,2)}."""
    query, database = same_scope_instance
    edge = frozenset({"x", "y"})
    decomposition = TreeDecomposition({"a": edge, "b": edge}, [("a", "b")])
    ghd = GeneralizedHypertreeDecomposition(decomposition, {"a": [edge], "b": [edge]})
    tree = build_bag_join_tree(query, database, ghd)
    for node in ("a", "b"):
        relation = tree.relations[node]
        assert set(relation.columns) == {"x", "y"}
        x, y = relation.column_index("x"), relation.column_index("y")
        assert {(row[x], row[y]) for row in relation.rows} == {(1, 2)}


def test_same_scope_evaluation_matches_naive(same_scope_instance):
    query, database = same_scope_instance
    assert decomposition_enumerate_answers(query, database) == enumerate_answers(
        query, database
    ) == {(1, 2)}
    assert decomposition_count_answers(query, database) == count_answers(query, database) == 1


def test_same_scope_in_larger_acyclic_query():
    query = ConjunctiveQuery(
        [Atom("R", ["x", "y"]), Atom("S", ["x", "y"]), Atom("T", ["y", "z"])]
    )
    database = Database(
        [
            Relation("R", 2, {(1, 2), (3, 4)}),
            Relation("S", 2, {(1, 2), (3, 4), (7, 8)}),
            Relation("T", 2, {(2, 5), (4, 6), (8, 0)}),
        ]
    )
    assert decomposition_enumerate_answers(query, database) == enumerate_answers(
        query, database
    ) == {(1, 2, 5), (3, 4, 6)}


def test_same_scope_different_variable_order():
    """S(y, x) has the same scope as R(x, y) but reversed columns: the join
    must align on names, not positions."""
    query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "x"])])
    database = Database(
        [
            Relation("R", 2, {(1, 2), (3, 4)}),
            Relation("S", 2, {(2, 1), (9, 3)}),
        ]
    )
    assert decomposition_enumerate_answers(query, database) == enumerate_answers(
        query, database
    ) == {(1, 2)}
