"""Tests for the zero-copy relational kernel: memoized key indexes, cache
invalidation, in-place semijoin, the multi-way join planner, and the
permutation-based equality."""

import pytest

from repro.cq.relational import NamedRelation, intersect_all, natural_join_all


@pytest.fixture
def left():
    return NamedRelation(("x", "y"), {(1, 2), (1, 3), (2, 3)})


@pytest.fixture
def right():
    return NamedRelation(("y", "z"), {(2, 5), (3, 6)})


class TestKeyIndexCache:
    def test_index_is_memoized(self, left):
        first = left.key_index(["x"])
        second = left.key_index(["x"])
        assert first is second
        assert set(first) == {(1,), (2,)}
        assert sorted(first[(1,)]) == [(1, 2), (1, 3)]

    def test_distinct_keys_get_distinct_indexes(self, left):
        by_x = left.key_index(["x"])
        by_y = left.key_index(["y"])
        assert by_x is not by_y
        assert len(left.cached_index_keys) == 2

    def test_join_populates_and_reuses_other_index(self, left, right):
        left.natural_join(right)
        cached = right.key_index(["y"])
        # A second join reuses the same memoized index object.
        left.natural_join(right)
        assert right.key_index(["y"]) is cached

    def test_invalidate_indexes(self, left):
        stale = left.key_index(["x"])
        left.rows.add((9, 9))
        left.invalidate_indexes()
        fresh = left.key_index(["x"])
        assert fresh is not stale
        assert (9,) in fresh

    def test_semijoin_inplace_invalidates_cache(self, left, right):
        stale = left.key_index(["x"])
        result = left.semijoin_inplace(right)
        assert result is left
        assert left.rows == {(1, 2), (1, 3), (2, 3)}  # nothing filtered...
        assert left.key_index(["x"]) is stale  # ...so the cache survives
        left.semijoin_inplace(NamedRelation(("y",), {(2,)}))
        assert left.rows == {(1, 2)}
        assert left.key_index(["x"]) is not stale  # mutation dropped the cache

    def test_semijoin_zero_copy_when_nothing_filtered(self, left, right):
        assert left.semijoin(right) is left

    def test_semijoin_still_filters(self, left):
        filtered = left.semijoin(NamedRelation(("y",), {(2,)}))
        assert filtered is not left
        assert filtered.rows == {(1, 2)}


class TestZeroCopyPaths:
    def test_project_onto_all_columns_is_self(self, left):
        assert left.project(("x", "y")) is left

    def test_rename_shares_rows(self, left):
        renamed = left.rename({"x": "a"})
        assert renamed.rows is left.rows
        assert renamed.columns == ("a", "y")
        # In-place filtering on the original rebinds, never mutates, the
        # shared set: the renamed view is unaffected.
        left.semijoin_inplace(NamedRelation(("y",), {(2,)}))
        assert renamed.rows == {(1, 2), (1, 3), (2, 3)}

    def test_identity_rename_is_self(self, left):
        assert left.rename({}) is left

    def test_column_index_is_cached_lookup(self, left):
        assert left.column_index("y") == 1
        with pytest.raises(ValueError):
            left.column_index("nope")


class TestEquality:
    def test_permutation_equality(self):
        a = NamedRelation(("x", "y"), {(1, 2), (3, 4)})
        b = NamedRelation(("y", "x"), {(2, 1), (4, 3)})
        assert a == b

    def test_permutation_inequality(self):
        a = NamedRelation(("x", "y"), {(1, 2)})
        b = NamedRelation(("y", "x"), {(1, 2)})
        assert a != b

    def test_length_shortcut(self):
        a = NamedRelation(("x", "y"), {(1, 2)})
        b = NamedRelation(("y", "x"), {(2, 1), (4, 3)})
        assert a != b

    def test_different_column_sets(self):
        assert NamedRelation(("x",), {(1,)}) != NamedRelation(("y",), {(1,)})


class TestJoinPlanner:
    def test_natural_join_all_matches_pairwise(self, left, right):
        tail = NamedRelation(("z", "w"), {(5, 0), (6, 1), (7, 2)})
        planned = natural_join_all([tail, left, right])
        pairwise = left.natural_join(right).natural_join(tail)
        assert planned == pairwise

    def test_intersect_all_is_natural_join_all(self, left, right):
        assert intersect_all([left, right]) == left.natural_join(right)

    def test_planner_prefers_shared_columns_over_cross_product(self):
        a = NamedRelation(("x",), {(i,) for i in range(3)})
        b = NamedRelation(("y",), {(i,) for i in range(3)})
        ab = NamedRelation(("x", "y"), {(0, 0), (1, 1)})
        result = natural_join_all([a, b, ab])
        assert set(result.columns) == {"x", "y"}
        assert result == ab

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            natural_join_all([])

    def test_single_relation_returned_unchanged(self, left):
        assert natural_join_all([left]) is left
