"""Tests for the CQ solvers: backtracking baseline, Yannakakis, GHD-guided.

The key invariant exercised throughout: every evaluator agrees with the
generic backtracking solver on answers, Boolean answers, and counts.
"""

import pytest

from repro.cq import (
    Atom,
    ConjunctiveQuery,
    Database,
    boolean_answer,
    count_answers,
    decomposition_boolean_answer,
    decomposition_count_answers,
    decomposition_enumerate_answers,
    enumerate_answers,
)
from repro.cq import generators as cqgen
from repro.cq.counting import count_answers_via_join_tree, naive_count
from repro.cq.decomposition_eval import build_bag_join_tree, DecompositionMismatchError
from repro.cq.relational import NamedRelation
from repro.cq.yannakakis import JoinTree, yannakakis_boolean, yannakakis_full
from repro.widths.ghw import ghw_upper_bound


def small_path_instance():
    query = cqgen.chain_query(3)
    database = Database()
    for a in range(3):
        for b in range(3):
            if a != b:
                database.add_fact("R0", (a, b))
                database.add_fact("R1", (a, b))
                database.add_fact("R2", (a, b))
    return query, database


class TestBacktrackingSolver:
    def test_empty_query_is_true(self):
        assert boolean_answer(ConjunctiveQuery([]), Database())

    def test_missing_relation_means_false(self):
        query = cqgen.chain_query(2)
        assert not boolean_answer(query, Database())

    def test_path_instance_counts(self):
        query, database = small_path_instance()
        # Walks of length 3 in the complete digraph without loops on 3 nodes.
        assert count_answers(query, database) == 3 * 2 * 2 * 2

    def test_enumerate_respects_free_variables(self):
        query, database = small_path_instance()
        projected = query.project(["x0", "x3"])
        answers = enumerate_answers(projected, database)
        assert all(len(row) == 2 for row in answers)
        assert answers == {
            (row[0], row[3]) for row in enumerate_answers(query, database)
        }

    def test_boolean_projection(self):
        query, database = small_path_instance()
        assert enumerate_answers(query.as_boolean(), database) == {()}

    def test_planted_database_is_satisfiable(self):
        query = cqgen.jigsaw_query(2, 2)
        database = cqgen.planted_database(query, 4, 6, seed=11)
        assert boolean_answer(query, database)

    def test_unsatisfiable_database(self):
        query = cqgen.cycle_query(4)
        database = cqgen.unsatisfiable_database(query, 4, 10, seed=2)
        assert not boolean_answer(query, database)

    def test_proper_colouring_counts_on_cycles(self):
        # Proper q-colourings of the cycle C_n: (q-1)^n + (-1)^n (q-1).
        for n, q in [(3, 3), (4, 3), (5, 2)]:
            query = cqgen.cycle_query(n)
            database = cqgen.grid_constraint_database(query, colours=q)
            expected = (q - 1) ** n + (-1) ** n * (q - 1)
            assert count_answers(query, database) == expected


class TestYannakakis:
    def _tree(self):
        relations = {
            "top": NamedRelation(("x", "y"), {(1, 2), (2, 3)}),
            "left": NamedRelation(("y", "z"), {(2, 5), (3, 6)}),
            "right": NamedRelation(("y", "w"), {(2, 7)}),
        }
        parent = {"top": None, "left": "top", "right": "top"}
        return JoinTree(relations, parent)

    def test_join_tree_requires_single_root(self):
        with pytest.raises(ValueError):
            JoinTree({"a": NamedRelation(("x",), set())}, {"a": "a"})

    def test_boolean_answer(self):
        assert yannakakis_boolean(self._tree())

    def test_boolean_false_when_branch_empty(self):
        tree = self._tree()
        tree.relations["right"] = NamedRelation(("y", "w"), set())
        assert not yannakakis_boolean(tree)

    def test_full_enumeration_matches_naive_join(self):
        tree = self._tree()
        full = yannakakis_full(tree)
        assert set(full.columns) == {"x", "y", "z", "w"}
        assert len(full) == 1
        assert naive_count(tree) == 1

    def test_projection_output(self):
        tree = self._tree()
        result = yannakakis_full(tree, output_columns=("x",))
        assert result.rows == {(1,)}

    def test_counting_dp_matches_naive(self):
        tree = self._tree()
        assert count_answers_via_join_tree(tree) == naive_count(tree)


class TestDecompositionGuidedEvaluation:
    @pytest.mark.parametrize(
        "query_factory,seed",
        [
            (lambda: cqgen.cycle_query(4), 0),
            (lambda: cqgen.cycle_query(5), 1),
            (lambda: cqgen.chain_query(4), 2),
            (lambda: cqgen.star_query(3), 3),
            (lambda: cqgen.jigsaw_query(2, 2), 4),
            (lambda: cqgen.clique_query(3), 5),
        ],
    )
    def test_agrees_with_baseline(self, query_factory, seed):
        query = query_factory()
        database = cqgen.planted_database(query, 3, 6, seed=seed)
        assert decomposition_boolean_answer(query, database) == boolean_answer(query, database)
        assert decomposition_enumerate_answers(query, database) == enumerate_answers(query, database)
        assert decomposition_count_answers(query, database) == count_answers(query, database)

    def test_unsatisfiable_instances_agree(self):
        query = cqgen.jigsaw_query(2, 2)
        database = cqgen.unsatisfiable_database(query, 3, 8, seed=9)
        assert not decomposition_boolean_answer(query, database)

    def test_counting_requires_full_query(self):
        query = cqgen.cycle_query(4).as_boolean()
        database = cqgen.planted_database(query, 3, 5, seed=1)
        with pytest.raises(ValueError):
            decomposition_count_answers(query, database)

    def test_boolean_query_enumeration(self):
        query = cqgen.cycle_query(4).as_boolean()
        database = cqgen.planted_database(query, 3, 5, seed=1)
        assert decomposition_enumerate_answers(query, database) == {()}

    def test_explicit_ghd_is_used(self):
        query = cqgen.cycle_query(4)
        database = cqgen.grid_constraint_database(query, colours=3)
        ghd = ghw_upper_bound(query.hypergraph()).decomposition
        assert decomposition_count_answers(query, database, ghd=ghd) == 18

    def test_mismatched_ghd_rejected(self):
        query = cqgen.cycle_query(4)
        other = cqgen.chain_query(6)
        database = cqgen.grid_constraint_database(query, colours=3)
        foreign_ghd = ghw_upper_bound(other.hypergraph()).decomposition
        with pytest.raises(DecompositionMismatchError):
            build_bag_join_tree(query, database, foreign_ghd)

    def test_bag_join_tree_structure(self):
        query = cqgen.cycle_query(5)
        database = cqgen.grid_constraint_database(query, colours=3)
        ghd = ghw_upper_bound(query.hypergraph()).decomposition
        tree = build_bag_join_tree(query, database, ghd)
        assert set(tree.relations) == set(ghd.bags)
