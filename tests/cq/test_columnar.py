"""Unit tests for the columnar relational kernel: the interner, the
array-backed operations against their tuple-set twins, the per-database
view cache (cardinality-fingerprint invalidation, pickling contract), and
the decomposition-guided columnar evaluators against the naive reference.

Mirrors :mod:`tests.cq.test_relational` one representation down: every
operation here must coincide with the tuple-set kernel after decoding.
"""

import pickle

import pytest

from repro.cq import generators as cqgen
from repro.cq.columnar import (
    ColumnarRelation,
    ColumnarStore,
    ValueInterner,
    build_columnar_bag_tree,
    columnar_boolean_answer,
    columnar_count_answers,
    columnar_count_join_tree,
    columnar_enumerate_answers,
)
from repro.cq.database import Database, Relation
from repro.cq.homomorphism import naive_count_answers, naive_enumerate_answers
from repro.cq.query import Atom, ConjunctiveQuery, Constant
from repro.cq.relational import NamedRelation
from repro.cq.yannakakis import yannakakis_full


def named(columns, rows):
    return NamedRelation(tuple(columns), set(map(tuple, rows)))


def columnar(columns, rows, interner=None):
    return ColumnarRelation.from_named(
        named(columns, rows), interner or ValueInterner()
    )


class TestValueInterner:
    def test_ids_are_dense_and_stable(self):
        interner = ValueInterner()
        first = interner.intern("a")
        second = interner.intern("b")
        assert (first, second) == (0, 1)
        assert interner.intern("a") == first
        assert len(interner) == 2
        assert interner.values[first] == "a"

    def test_id_of_unseen_value(self):
        interner = ValueInterner()
        assert interner.id_of("never") is None
        interner.intern("seen")
        assert interner.id_of("seen") == 0

    def test_python_equality_classes_share_one_id(self):
        # 1 == True == 1.0: tuple-set semantics conflate them, so must ids.
        interner = ValueInterner()
        assert interner.intern(1) == interner.intern(True) == interner.intern(1.0)


class TestRoundTrip:
    def test_to_named_inverts_from_named(self):
        relation = named("xy", [(1, 2), (3, 4), (1, 4)])
        assert ColumnarRelation.from_named(relation, ValueInterner()).to_named() == relation

    def test_empty_and_zero_column_units(self):
        interner = ValueInterner()
        assert columnar("x", [], interner).to_named() == named("x", [])
        unit = NamedRelation((), {()})
        zero = NamedRelation((), set())
        assert ColumnarRelation.from_named(unit, interner).to_named() == unit
        assert ColumnarRelation.from_named(zero, interner).to_named() == zero
        assert len(ColumnarRelation.from_named(unit, interner)) == 1
        assert not ColumnarRelation.from_named(zero, interner)

    def test_decode_rows_matches_source(self):
        rows = {(1, "a"), (2, "b"), (1, "b")}
        relation = columnar("xy", rows)
        assert relation.decode_rows() == rows
        assert len(relation) == 3


class TestOperationsAgreeWithTupleSet:
    def setup_method(self):
        self.interner = ValueInterner()
        self.left_named = named("xy", [(1, 2), (2, 3), (3, 3), (4, 1)])
        self.right_named = named("yz", [(2, 9), (3, 8), (3, 7), (5, 1)])
        self.left = ColumnarRelation.from_named(self.left_named, self.interner)
        self.right = ColumnarRelation.from_named(self.right_named, self.interner)

    def test_natural_join(self):
        joined = self.left.natural_join(self.right)
        assert joined.to_named() == self.left_named.natural_join(self.right_named)
        assert joined.columns == ("x", "y", "z")

    def test_join_without_shared_columns_is_cross_product(self):
        other = columnar("w", [(10,), (11,)], self.interner)
        joined = self.left.natural_join(other)
        assert joined.to_named() == self.left_named.natural_join(
            named("w", [(10,), (11,)])
        )
        assert len(joined) == len(self.left) * 2

    def test_join_requires_shared_interner(self):
        stranger = columnar("yz", [(2, 9)])
        with pytest.raises(ValueError, match="interner"):
            self.left.natural_join(stranger)
        with pytest.raises(ValueError, match="interner"):
            self.left.semijoin(stranger)

    def test_semijoin(self):
        filtered = self.left.semijoin(self.right)
        assert filtered.to_named() == self.left_named.semijoin(self.right_named)

    def test_semijoin_is_zero_copy_when_nothing_filtered(self):
        superset = columnar("y", [(1,), (2,), (3,)], self.interner)
        assert self.left.semijoin(superset) is self.left

    def test_semijoin_inplace_rebinds_and_invalidates(self):
        relation = columnar("xy", [(1, 2), (2, 3), (4, 1)], self.interner)
        relation._buckets(("x", "y"))  # warm a memo that must not go stale
        relation.semijoin_inplace(self.right)
        expected = named("xy", [(1, 2), (2, 3), (4, 1)]).semijoin(self.right_named)
        assert relation.to_named() == expected
        assert relation._buckets(("x", "y")).keys() == {
            key for key in relation._keys(("x", "y"))
        }

    def test_project_with_dedup(self):
        assert self.left.project(("y",)).to_named() == self.left_named.project(("y",))
        assert self.left.project(("y", "x")).to_named() == self.left_named.project(
            ("y", "x")
        )

    def test_project_to_zero_columns_collapses(self):
        assert self.left.project(()).to_named() == NamedRelation((), {()})
        empty = columnar("x", [], self.interner)
        assert empty.project(()).to_named() == NamedRelation((), set())

    def test_project_identity_is_zero_copy(self):
        assert self.left.project(("x", "y")) is self.left

    def test_project_validates_columns(self):
        with pytest.raises(ValueError):
            self.left.project(("x", "x"))
        with pytest.raises(ValueError):
            self.left.project(("nope",))

    def test_multi_column_join_keys(self):
        # Two shared columns: the packed-int path, where base correctness shows.
        left = columnar("xyz", [(1, 2, 3), (1, 2, 4), (2, 2, 5)], self.interner)
        right = columnar("xyw", [(1, 2, 7), (2, 1, 8)], self.interner)
        expected = named("xyz", [(1, 2, 3), (1, 2, 4), (2, 2, 5)]).natural_join(
            named("xyw", [(1, 2, 7), (2, 1, 8)])
        )
        assert left.natural_join(right).to_named() == expected

    def test_packed_keys_refresh_when_dictionary_grows(self):
        left = columnar("xy", [(1, 2)], self.interner)
        keys_before = left._keys(("x", "y"))
        # Growing the dictionary changes the pack base: a fresh key vector
        # must be computed, not the memo for the old base.
        self.interner.intern("brand new value")
        keys_after = left._keys(("x", "y"))
        assert keys_before != keys_after or len(self.interner) == 0


class TestColumnarStore:
    def atom_db(self):
        database = Database()
        for row in [(1, 2), (2, 3), (3, 3), (2, 2)]:
            database.add_fact("R", row)
        return database

    def test_view_matches_from_atom(self):
        from repro.cq.relational import from_atom

        database = self.atom_db()
        atom = Atom("R", ["x", "y"])
        view = database.columnar_view(atom)
        assert view.to_named() == from_atom(atom, database)

    def test_view_handles_constants_and_repeats(self):
        from repro.cq.relational import from_atom

        database = self.atom_db()
        for atom in [
            Atom("R", [Constant(2), "y"]),
            Atom("R", ["x", Constant(3)]),
            Atom("R", ["x", "x"]),
            Atom("R", [Constant(1), Constant(2)]),
            Atom("R", [Constant(7), Constant(7)]),
        ]:
            assert database.columnar_view(atom).to_named() == from_atom(
                atom, database
            ), atom

    def test_views_are_memoized_and_extended_on_growth(self):
        database = self.atom_db()
        atom = Atom("R", ["x", "y"])
        first = database.columnar_view(atom)
        assert database.columnar_view(atom) is first
        info = database.columnar_cache.info()
        assert info["hits"] == 1 and info["misses"] == 1
        # Growth through the versioned API extends the resident view in
        # place — same object, new rows, extension counter bumped.
        database.add_fact("R", (9, 9))
        second = database.columnar_view(atom)
        assert second is first
        assert len(second) == 5
        assert (9, 9) in second.decode_rows()
        assert database.columnar_cache.extensions == 1

    def test_one_interner_per_database(self):
        database = self.atom_db()
        database.add_fact("S", (3, 4))
        view_r = database.columnar_view(Atom("R", ["x", "y"]))
        view_s = database.columnar_view(Atom("S", ["y", "z"]))
        assert view_r.interner is view_s.interner
        assert view_r.interner is database.columnar_cache.interner

    def test_store_info_reports_dictionary_size(self):
        database = self.atom_db()
        database.columnar_view(Atom("R", ["x", "y"]))
        info = database.columnar_cache.info()
        assert info["dictionary_size"] == 3  # values {1, 2, 3}
        assert info["size"] == 1

    def test_pickling_drops_the_store(self):
        database = self.atom_db()
        database.columnar_view(Atom("R", ["x", "y"]))
        assert database.columnar_cache is not None
        clone = pickle.loads(pickle.dumps(database))
        assert clone.columnar_cache is None
        assert clone == database
        # And the original is untouched.
        assert database.columnar_cache is not None

    def test_drop_columnar(self):
        database = self.atom_db()
        database.columnar_view(Atom("R", ["x", "y"]))
        database.drop_columnar()
        assert database.columnar_cache is None

    def test_view_cache_is_bounded(self):
        store = ColumnarStore(maxsize=2)
        relation = Relation("R", 1, [(1,)])
        for name in "abc":
            store.view(Atom("R", [name]), relation)
        assert store.views.info()["size"] == 2


class TestDatabaseWire:
    def mixed_db(self):
        database = Database()
        for row in [(1, "a"), (2, "b"), (3, "a"), (1, "b")]:
            database.add_fact("R", row)
        for row in [("a", "b"), ("b", "b")]:
            database.add_fact("S", row)
        database.add_fact("U", ())  # arity-0 unit relation
        database.add_relation(Relation("Empty", 2))
        return database

    def test_round_trip_is_identity(self):
        database = self.mixed_db()
        back = Database.from_wire(database.to_wire())
        assert back == database
        assert Database.from_wire(Database().to_wire()) == Database()

    def test_round_trip_survives_pickle(self):
        database = self.mixed_db()
        blob = pickle.dumps(database.to_wire(), protocol=pickle.HIGHEST_PROTOCOL)
        assert Database.from_wire(pickle.loads(blob)) == database

    def test_decode_attaches_a_warm_store(self):
        database = self.mixed_db()
        wire = database.to_wire()
        back = Database.from_wire(wire)
        store = back.columnar_cache
        assert store is not None
        assert len(store.interner) == len(wire.dictionary)
        # The identity view is zero-copy over the adopted base columns.
        view = back.columnar_view(Atom("R", ["x", "y"]))
        assert view._data[0] is wire.relations["R"][1][0]
        assert view.to_named() == NamedRelation(
            ("x", "y"), set(database.relation("R").tuples)
        )

    def test_decoded_views_agree_with_fresh_views(self):
        database = self.mixed_db()
        back = Database.from_wire(database.to_wire())
        for atom in [
            Atom("R", ["x", "y"]),
            Atom("R", [Constant(1), "y"]),
            Atom("R", [Constant(99), "y"]),  # constant outside the domain
            Atom("S", ["x", "x"]),
            Atom("S", [Constant("a"), Constant("b")]),
            Atom("Empty", ["x", "y"]),
        ]:
            assert (
                back.columnar_view(atom).to_named()
                == database.columnar_view(atom).to_named()
            ), atom

    def test_growth_after_decode_extends_the_based_view(self):
        database = self.mixed_db()
        back = Database.from_wire(database.to_wire())
        atom = Atom("R", ["x", "y"])
        before = back.columnar_view(atom)
        base_columns = back.columnar_cache._bases["R"][0]
        back.add_fact("R", (7, "fresh"))
        after = back.columnar_view(atom)
        # The identity view shared the adopted base arrays; extension
        # promotes them to private 'q' copies and appends — same object,
        # untouched base, new row present.
        assert after is before
        assert (7, "fresh") in after.decode_rows()
        assert all(column.typecode == "q" for column in after._data)
        assert len(base_columns[0]) == 4  # the adopted base is unmutated

    def test_typecode_narrows_with_the_dictionary(self):
        small = Database()
        small.add_fact("R", (1, 2))
        assert small.to_wire().relations["R"][1][0].typecode == "B"
        wide = Database()
        for value in range(300):
            wide.add_fact("R", (value,))
        assert wide.to_wire().relations["R"][1][0].typecode == "H"

    def test_wire_pickle_is_smaller_than_database_pickle(self):
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, 40, 3000, seed=11)
        wire_bytes = len(
            pickle.dumps(database.to_wire(), protocol=pickle.HIGHEST_PROTOCOL)
        )
        plain_bytes = len(
            pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert wire_bytes < plain_bytes

    def test_from_values_rejects_duplicates(self):
        with pytest.raises(ValueError, match="equal values"):
            ValueInterner.from_values([1, True])


def _tree_for(query, database):
    from repro.engine import Engine

    plan = Engine().plan(query)
    return build_columnar_bag_tree(query, database, plan.decomposition)


class TestColumnarEvaluation:
    @pytest.mark.parametrize("length", [3, 4, 6])
    def test_cycle_queries_match_naive(self, length):
        query = cqgen.cycle_query(length)
        database = cqgen.random_database(query, 8, 60, seed=length)
        tree = _tree_for(query, database)
        from repro.engine import Engine

        decomposition = Engine().plan(query).decomposition
        assert columnar_boolean_answer(query, database, decomposition) == bool(
            naive_enumerate_answers(query, database)
        )
        assert columnar_enumerate_answers(
            query, database, decomposition
        ) == naive_enumerate_answers(query, database)
        assert columnar_count_answers(
            query, database, decomposition
        ) == naive_count_answers(query, database)
        assert columnar_count_join_tree(tree) == naive_count_answers(query, database)

    def test_projected_query_matches_naive(self):
        query = cqgen.cycle_query(4).project(["x0", "x2"])
        database = cqgen.random_database(query, 7, 50, seed=11)
        from repro.engine import Engine

        decomposition = Engine().plan(query).decomposition
        assert columnar_enumerate_answers(
            query, database, decomposition
        ) == naive_enumerate_answers(query, database)
        with pytest.raises(ValueError):
            columnar_count_answers(query, database, decomposition)

    def test_acyclic_chain_matches_naive(self):
        query = cqgen.chain_query(5)
        database = cqgen.random_database(query, 6, 40, seed=23)
        from repro.engine import Engine

        decomposition = Engine().plan(query).decomposition
        assert columnar_enumerate_answers(
            query, database, decomposition
        ) == naive_enumerate_answers(query, database)

    def test_constants_and_repeated_variables(self):
        database = Database()
        for row in [(1, 2), (2, 2), (2, 3), (3, 1)]:
            database.add_fact("E", row)
        query = ConjunctiveQuery(
            (Atom("E", ["x", "y"]), Atom("E", ["y", "y"]))
        )
        from repro.engine import Engine

        decomposition = Engine().plan(query).decomposition
        assert columnar_enumerate_answers(
            query, database, decomposition
        ) == naive_enumerate_answers(query, database)

    def test_unsatisfiable_query(self):
        database = Database()
        database.add_fact("E", (1, 2))
        database.add_fact("F", (3, 4))
        query = ConjunctiveQuery((Atom("E", ["x", "y"]), Atom("F", ["y", "z"])))
        from repro.engine import Engine

        decomposition = Engine().plan(query).decomposition
        assert not columnar_boolean_answer(query, database, decomposition)
        assert columnar_enumerate_answers(query, database, decomposition) == set()
        assert columnar_count_answers(query, database, decomposition) == 0

    def test_missing_decomposition_raises(self):
        query = cqgen.chain_query(2)
        database = cqgen.random_database(query, 4, 10, seed=1)
        with pytest.raises(ValueError):
            columnar_boolean_answer(query, database, None)

    def test_full_tree_output_is_columnar_and_decodes_once(self):
        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 5, 30, seed=9)
        tree = _tree_for(query, database)
        result = yannakakis_full(tree, output_columns=query.free_variables)
        # The reused tuple-set tree walk returns a *columnar* relation: ids
        # only decode at the boundary.
        assert isinstance(result, ColumnarRelation)
        assert result.decode_rows() == naive_enumerate_answers(query, database)
