"""Tests for the relational-algebra kernel."""

import pytest

from repro.cq import Database
from repro.cq.query import Atom, Constant
from repro.cq.relational import NamedRelation, from_atom, intersect_all


@pytest.fixture
def left():
    return NamedRelation(("x", "y"), {(1, 2), (1, 3), (2, 3)})


@pytest.fixture
def right():
    return NamedRelation(("y", "z"), {(2, 5), (3, 6)})


class TestNamedRelation:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            NamedRelation(("x", "x"), set())

    def test_row_width_enforced(self):
        with pytest.raises(ValueError):
            NamedRelation(("x",), {(1, 2)})

    def test_projection(self, left):
        projected = left.project(["x"])
        assert projected.rows == {(1,), (2,)}

    def test_projection_onto_nothing(self, left):
        assert left.project([]).rows == {()}

    def test_select_equal(self, left):
        assert left.select_equal("x", 1).rows == {(1, 2), (1, 3)}

    def test_rename(self, left):
        renamed = left.rename({"x": "a"})
        assert renamed.columns == ("a", "y")

    def test_natural_join(self, left, right):
        joined = left.natural_join(right)
        assert set(joined.columns) == {"x", "y", "z"}
        assert (1, 2, 5) in joined.rows
        assert (2, 3, 6) in joined.rows
        assert len(joined) == 3

    def test_join_without_shared_columns_is_product(self):
        a = NamedRelation(("x",), {(1,), (2,)})
        b = NamedRelation(("y",), {(7,)})
        assert len(a.natural_join(b)) == 2

    def test_semijoin(self, left, right):
        filtered = left.semijoin(NamedRelation(("y",), {(2,)}))
        assert filtered.rows == {(1, 2)}

    def test_semijoin_no_shared_columns(self, left):
        empty_other = NamedRelation(("q",), set())
        assert len(left.semijoin(empty_other)) == 0
        nonempty_other = NamedRelation(("q",), {(1,)})
        assert left.semijoin(nonempty_other).rows == left.rows

    def test_cross_product_requires_disjoint(self, left):
        with pytest.raises(ValueError):
            left.cross_product(left)

    def test_equality_is_column_order_insensitive(self):
        a = NamedRelation(("x", "y"), {(1, 2)})
        b = NamedRelation(("y", "x"), {(2, 1)})
        assert a == b

    def test_intersect_all(self, left, right):
        result = intersect_all([left, right])
        assert len(result) == 3


class TestFromAtom:
    def test_plain_atom(self):
        db = Database()
        db.add_fact("R", (1, 2))
        relation = from_atom(Atom("R", ["x", "y"]), db)
        assert relation.columns == ("x", "y")
        assert relation.rows == {(1, 2)}

    def test_constant_selection(self):
        db = Database()
        db.add_fact("R", (1, 2))
        db.add_fact("R", (3, 2))
        relation = from_atom(Atom("R", [Constant(1), "y"]), db)
        assert relation.columns == ("y",)
        assert relation.rows == {(2,)}

    def test_repeated_variable_selection(self):
        db = Database()
        db.add_fact("R", (1, 1))
        db.add_fact("R", (1, 2))
        relation = from_atom(Atom("R", ["x", "x"]), db)
        assert relation.rows == {(1,)}

    def test_zero_arity_atom(self):
        db = Database()
        db.add_fact("Flag", ())
        relation = from_atom(Atom("Flag", []), db)
        assert relation.rows == {()}
