"""Unit tests for :mod:`repro.cq.statistics`: the sketches' incremental
maintenance on the version seam, the exact→KMV distinct hand-off, the
ordering-mode toggle, and the estimate ledger."""

import pytest

from repro.cq import statistics
from repro.cq.database import Database, Relation
from repro.cq.statistics import (
    EXACT_DISTINCT_LIMIT,
    ORDERING_COST,
    ORDERING_STATIC,
    ColumnSketch,
    RelationStatistics,
    StatisticsStore,
    forced_join_ordering,
    join_ordering,
    ledger_delta,
    ledger_snapshot,
    recent_estimates,
    record_cost_join,
    set_join_ordering,
)


# ----------------------------------------------------------------------
# StatisticsStore: appends extend, they never rebuild
# ----------------------------------------------------------------------
def test_store_builds_once_and_extends_on_append():
    database = Database()
    database.add_relation(Relation("R", 2, {(i, i % 3) for i in range(20)}))
    store = database.statistics()
    relation = database.relation("R")

    stats = store.relation_stats(relation)
    assert store.info() == {"relations": 1, "builds": 1, "extensions": 0}
    assert stats.rows == 20
    assert stats.sketches[0].distinct == 20
    assert stats.sketches[1].distinct == 3

    # A clean re-read is a pure cache hit: same object, no extension.
    assert store.relation_stats(relation) is stats
    assert store.info()["extensions"] == 0

    # Appending moves the version; the store folds exactly the delta in.
    database.add_fact("R", (100, 7))
    updated = store.relation_stats(relation)
    assert updated is stats, "append must extend the existing sketches"
    assert store.info() == {"relations": 1, "builds": 1, "extensions": 1}
    assert updated.rows == 21
    assert updated.sketches[0].distinct == 21
    assert updated.sketches[1].distinct == 4
    assert updated.sketches[0].maximum == 100


def test_store_is_dropped_on_pickle_and_rebuilt_lazily():
    import pickle

    database = Database()
    database.add_relation(Relation("R", 1, {(1,), (2,)}))
    database.statistics().relation_stats(database.relation("R"))
    clone = pickle.loads(pickle.dumps(database))
    # The store is derived data: the clone starts fresh and rebuilds.
    store = clone.statistics()
    assert store.info()["relations"] == 0
    assert store.relation_stats(clone.relation("R")).rows == 2


# ----------------------------------------------------------------------
# The exact -> KMV hand-off
# ----------------------------------------------------------------------
def test_distinct_switches_to_sampling_and_stays_monotone(monkeypatch):
    monkeypatch.setattr(statistics, "EXACT_DISTINCT_LIMIT", 64)
    sketch = ColumnSketch()
    previous = 0.0
    for value in range(500):
        sketch.add(value)
        current = sketch.distinct
        assert current >= previous, "distinct decreased across the hand-off"
        previous = current
    assert not sketch.exact, "the sketch never left the exact range"
    # The estimate stays in the right ballpark (KMV over CRC32 of small
    # ints is coarse; the ordering decisions only need the magnitude).
    assert 100 <= sketch.distinct <= 5000
    assert sketch.rows == 500


def test_distinct_is_capped_by_rows():
    sketch = ColumnSketch()
    for value in range(10):
        sketch.add(value)
    assert sketch.distinct <= sketch.rows
    assert sketch.distinct == 10


def test_unorderable_values_disable_min_max_only():
    sketch = ColumnSketch()
    sketch.add(3)
    sketch.add("three")  # int vs str: not orderable
    assert sketch.minimum is None and sketch.maximum is None
    assert sketch.distinct == 2
    assert sketch.rows == 2


def test_exact_limit_is_wired():
    # The production limit stays generous enough that the differential
    # workloads (hundreds of rows) always run in the exact range.
    assert EXACT_DISTINCT_LIMIT >= 1024


# ----------------------------------------------------------------------
# Column-wise builds (the columnar kernel's layout)
# ----------------------------------------------------------------------
def test_from_columns_matches_from_rows():
    rows = [(1, "a"), (2, "b"), (1, "c")]
    by_rows = RelationStatistics.from_rows(("x", "y"), rows)
    by_columns = RelationStatistics.from_columns(
        ("x", "y"), [[1, 2, 1], ["a", "b", "c"]], 3
    )
    assert by_rows.rows == by_columns.rows == 3
    for column in ("x", "y"):
        assert (
            by_rows.sketch(column).distinct == by_columns.sketch(column).distinct
        )
        assert (
            by_rows.sketch(column).hot_values()
            == by_columns.sketch(column).hot_values()
        )


# ----------------------------------------------------------------------
# Mode toggle and ledger
# ----------------------------------------------------------------------
def test_default_mode_is_cost_based():
    assert join_ordering() == ORDERING_COST


def test_set_join_ordering_validates_and_returns_previous():
    with pytest.raises(ValueError):
        set_join_ordering("optimistic")
    previous = set_join_ordering(ORDERING_STATIC)
    try:
        assert previous == ORDERING_COST
        assert join_ordering() == ORDERING_STATIC
    finally:
        set_join_ordering(previous)


def test_forced_join_ordering_restores_on_exit_and_error():
    with forced_join_ordering(ORDERING_STATIC):
        assert join_ordering() == ORDERING_STATIC
    assert join_ordering() == ORDERING_COST
    with pytest.raises(RuntimeError):
        with forced_join_ordering(ORDERING_STATIC):
            raise RuntimeError("boom")
    assert join_ordering() == ORDERING_COST


def test_ledger_records_estimates_vs_actuals():
    before = ledger_snapshot()
    record_cost_join(12.7, 9)
    after = ledger_snapshot()
    moved = ledger_delta(before, after)
    assert moved["cost_joins"] == 1
    assert moved["estimated_rows"] == 12
    assert moved["actual_rows"] == 9
    assert (12, 9) in recent_estimates()
    assert after["mode"] == join_ordering()
