"""Tests for databases and relations."""

import pytest

from repro.cq import Database, Relation


class TestRelation:
    def test_add_and_contains(self):
        r = Relation("R", 2, [(1, 2)])
        assert (1, 2) in r
        assert len(r) == 1

    def test_arity_enforced(self):
        r = Relation("R", 2)
        with pytest.raises(ValueError):
            r.add((1, 2, 3))

    def test_duplicates_collapse(self):
        r = Relation("R", 1, [(1,), (1,)])
        assert len(r) == 1

    def test_size_counts_cells(self):
        r = Relation("R", 3, [(1, 2, 3), (4, 5, 6)])
        assert r.size() == 6

    def test_zero_arity_relation(self):
        r = Relation("Z", 0, [()])
        assert () in r
        assert r.size() == 1


class TestDatabase:
    def test_add_fact_creates_relation(self):
        db = Database()
        db.add_fact("R", (1, 2))
        assert db.has_relation("R")
        assert (1, 2) in db.relation("R")

    def test_duplicate_relation_rejected(self):
        db = Database([Relation("R", 1)])
        with pytest.raises(ValueError):
            db.add_relation(Relation("R", 1))

    def test_missing_relation_raises(self):
        with pytest.raises(KeyError):
            Database().relation("nope")

    def test_active_domain(self):
        db = Database()
        db.add_fact("R", (1, 2))
        db.add_fact("S", (2, 3))
        assert db.active_domain() == frozenset({1, 2, 3})

    def test_size_measure(self):
        db = Database()
        db.add_fact("R", (1, 2))
        db.add_fact("R", (3, 4))
        assert db.size() == 4 + 1

    def test_copy_is_independent(self):
        db = Database()
        db.add_fact("R", (1, 2))
        clone = db.copy()
        clone.add_fact("R", (5, 6))
        assert len(db.relation("R")) == 1
        assert len(clone.relation("R")) == 2

    def test_equality(self):
        a = Database()
        a.add_fact("R", (1,))
        b = Database()
        b.add_fact("R", (1,))
        assert a == b
