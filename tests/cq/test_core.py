"""Tests for query cores, equivalence, and semantic width."""

import pytest

from repro.cq import Atom, ConjunctiveQuery, core_of, queries_equivalent, semantic_ghw
from repro.cq import generators as cqgen
from repro.cq.semantic_width import semantic_degree, semantic_treewidth
from repro.reductions.query_reduction import core_hypergraph_class, core_instance, degree_preserved_by_core


class TestCores:
    def test_core_of_core_free_query_is_itself(self):
        query = cqgen.cycle_query(5).as_boolean()
        core = core_of(query)
        assert len(core.atoms) == len(query.atoms)

    def test_redundant_atom_folds_away(self):
        # R(x, y) AND R(x, z): z can map to y, so the core has a single atom.
        query = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("R", ["x", "z"])], free_variables=[]
        )
        core = core_of(query)
        assert len(core.atoms) == 1

    def test_free_variables_are_preserved(self):
        query = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("R", ["x", "z"])], free_variables=["x", "y", "z"]
        )
        core = core_of(query)
        # All variables free: nothing can fold, the query is its own core.
        assert len(core.atoms) == 2

    def test_equivalence_of_query_and_its_core(self):
        query = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("R", ["x", "z"]), Atom("S", ["y", "w"])],
            free_variables=[],
        )
        assert queries_equivalent(query, core_of(query))

    def test_non_equivalent_queries(self):
        chain = cqgen.chain_query(2).as_boolean()
        cycle = cqgen.cycle_query(3).as_boolean()
        assert not queries_equivalent(chain, cycle)

    def test_directed_cycle_is_its_own_core(self):
        # The directed 6-cycle self-join query has only rotations as
        # endomorphisms, so it is a core despite "feeling" foldable.
        atoms = [Atom("E", [f"x{i}", f"x{(i + 1) % 6}"]) for i in range(6)]
        query = ConjunctiveQuery(atoms, free_variables=[])
        assert len(core_of(query).atoms) == 6

    def test_zigzag_cycle_folds_to_single_atom(self):
        # The alternating-orientation 4-cycle folds onto one of its edges:
        # x2 -> x0, x3 -> x1 is a retraction, so the core has a single atom.
        atoms = [
            Atom("E", ["x0", "x1"]),
            Atom("E", ["x2", "x1"]),
            Atom("E", ["x2", "x3"]),
            Atom("E", ["x0", "x3"]),
        ]
        query = ConjunctiveQuery(atoms, free_variables=[])
        assert len(core_of(query).atoms) == 1

    def test_degree_preserved_by_core(self):
        query = cqgen.jigsaw_query(2, 2).as_boolean()
        assert degree_preserved_by_core(query)

    def test_core_instance_and_class(self):
        queries = [cqgen.cycle_query(4).as_boolean(), cqgen.chain_query(3).as_boolean()]
        hypergraphs = core_hypergraph_class(queries)
        assert len(hypergraphs) == 2
        instance = core_instance(queries[0])
        assert instance.hypergraph().degree() <= queries[0].hypergraph().degree()


class TestSemanticWidth:
    def test_semantic_ghw_of_acyclic_query(self):
        result = semantic_ghw(cqgen.chain_query(4))
        assert result.exact and result.value == 1

    def test_semantic_ghw_of_cycle(self):
        result = semantic_ghw(cqgen.cycle_query(5))
        assert result.exact and result.value == 2

    def test_semantic_ghw_collapses_for_foldable_query(self):
        # The zigzag 4-cycle has a cyclic hypergraph (ghw 2) but folds onto a
        # single atom, so its semantic ghw is 1 — semantic width must reflect
        # the core, not the raw query.
        atoms = [
            Atom("E", ["x0", "x1"]),
            Atom("E", ["x2", "x1"]),
            Atom("E", ["x2", "x3"]),
            Atom("E", ["x0", "x3"]),
        ]
        query = ConjunctiveQuery(atoms, free_variables=[])
        from repro.widths.ghw import ghw

        assert ghw(query.hypergraph()).value == 2
        result = semantic_ghw(query)
        assert result.exact and result.value == 1

    def test_semantic_treewidth_of_clique(self):
        result = semantic_treewidth(cqgen.clique_query(4))
        assert result.exact and result.value == 3

    def test_semantic_degree(self):
        assert semantic_degree(cqgen.jigsaw_query(2, 2)) <= 2
