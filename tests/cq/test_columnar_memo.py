"""The bounded derived-key memos of the columnar kernel: LRU behaviour at
the cap, hit/miss/eviction counters, and their surfacing through
``EngineSession.stats()``."""

import itertools

from repro.cq import columnar
from repro.cq.columnar import (
    _MEMO_CAP,
    _BoundedMemo,
    ColumnarRelation,
    ValueInterner,
    memo_counters,
    reset_memo_counters,
)
from repro.cq.relational import NamedRelation


def test_bounded_memo_caps_and_evicts_lru():
    reset_memo_counters()
    memo = _BoundedMemo()
    for key in range(_MEMO_CAP):
        memo.store(key, f"v{key}")
    assert len(memo) == _MEMO_CAP
    # Touch key 0 so it becomes most-recent; the next store evicts key 1.
    assert memo.lookup(0) == "v0"
    memo.store("new", "vn")
    assert len(memo) == _MEMO_CAP
    assert 0 in memo and "new" in memo
    assert 1 not in memo, "eviction must hit the least recently used entry"
    counters = memo_counters()
    assert counters["hits"] == 1
    assert counters["evictions"] == 1


def test_bounded_memo_counts_misses():
    reset_memo_counters()
    memo = _BoundedMemo()
    assert memo.lookup("absent") is None
    memo.store("k", "v")
    assert memo.lookup("k") == "v"
    counters = memo_counters()
    assert counters["misses"] == 1
    assert counters["hits"] == 1


def test_bounded_memo_is_a_dict():
    # The columnar store's extend-in-place path iterates, patches, and
    # purges the memos directly — they must stay real dicts.
    memo = _BoundedMemo()
    memo.store("a", [1])
    memo["a"].append(2)
    assert dict(memo) == {"a": [1, 2]}
    del memo["a"]
    assert not memo


def test_relation_key_memos_stay_bounded_under_many_patterns():
    # Seven columns give 21 two-column probe patterns (> _MEMO_CAP): the
    # per-relation memos must evict instead of growing without bound.
    columns = tuple(f"c{i}" for i in range(7))
    rows = {tuple((r * (i + 1)) % 5 for i in range(7)) for r in range(40)}
    relation = ColumnarRelation.from_named(
        NamedRelation(columns, rows), ValueInterner()
    )
    patterns = list(itertools.combinations(columns, 2))
    assert len(patterns) > _MEMO_CAP
    for pattern in patterns:
        relation._buckets(pattern)
        relation._keyset(pattern)
        relation._keys(pattern)
    assert len(relation._key_cache) <= _MEMO_CAP
    assert len(relation._bucket_cache) <= _MEMO_CAP
    assert len(relation._keyset_cache) <= _MEMO_CAP
    # Re-probing a recent pattern is a pure hit — no new entries.
    before = memo_counters()["hits"]
    relation._buckets(patterns[-1])
    assert memo_counters()["hits"] > before


def test_session_stats_surface_memo_and_ordering_counters():
    from repro.engine.session import EngineSession

    stats = EngineSession().stats()
    assert set(stats["columnar_memo"]) == {"hits", "misses", "evictions"}
    assert stats["join_ordering"]["mode"] in ("cost-based", "static-greedy")
    for field in ("cost_joins", "static_joins", "prefilter_passes"):
        assert field in stats["join_ordering"]
