"""Tests for conjunctive query representation."""

import pytest

from repro.cq import Atom, ConjunctiveQuery
from repro.cq.query import Constant
from repro.cq import generators as cqgen


class TestAtom:
    def test_variables_in_order(self):
        atom = Atom("R", ["x", "y", "x", "z"])
        assert atom.variables() == ("x", "y", "z")
        assert atom.arity == 4
        assert atom.has_repeated_variables()

    def test_constants_are_not_variables(self):
        atom = Atom("R", ["x", Constant(1)])
        assert atom.variables() == ("x",)

    def test_variable_set(self):
        assert Atom("R", ["x", "y"]).variable_set() == frozenset({"x", "y"})


class TestConjunctiveQuery:
    def test_full_by_default(self):
        query = cqgen.chain_query(3)
        assert query.is_full()
        assert not query.is_boolean()

    def test_boolean_query(self):
        query = cqgen.chain_query(3).as_boolean()
        assert query.is_boolean()
        assert query.existential_variables == query.variables

    def test_free_variables_must_occur(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([Atom("R", ["x"])], free_variables=["y"])

    def test_arity(self):
        query = cqgen.chain_query(2, arity=3)
        assert query.arity() == 3

    def test_self_join_detection(self):
        query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("R", ["y", "z"])])
        assert query.has_self_joins()
        assert not cqgen.chain_query(3).has_self_joins()

    def test_hypergraph_of_chain(self):
        query = cqgen.chain_query(3)
        h = query.hypergraph()
        assert h.num_edges == 3
        assert h.num_vertices == 4

    def test_duplicate_scopes_collapse_in_hypergraph(self):
        query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "x"]), Atom("T", ["x", "z"])])
        h = query.hypergraph()
        assert h.num_edges == 2
        assert query.degree() == 2  # the Section 4.3 reading of degree-2 CQs

    def test_cycle_query_degree_two(self):
        assert cqgen.cycle_query(5).degree() == 2

    def test_jigsaw_query_properties(self):
        query = cqgen.jigsaw_query(3, 3)
        assert query.degree() == 2
        assert query.arity() <= 4
        assert query.hypergraph().num_edges == 9

    def test_projection(self):
        query = cqgen.chain_query(2)
        projected = query.project(["x0", "x2"])
        assert set(projected.free_variables) == {"x0", "x2"}

    def test_restrict_to_atoms(self):
        query = cqgen.chain_query(3)
        restricted = query.restrict_to_atoms(query.atoms[:2])
        assert len(restricted.atoms) == 2
        assert set(restricted.free_variables) <= set(query.free_variables)

    def test_equality_ignores_atom_order(self):
        a = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        b = ConjunctiveQuery([Atom("S", ["y", "z"]), Atom("R", ["x", "y"])])
        assert a == b
        assert hash(a) == hash(b)

    def test_query_from_hypergraph_matches_hypergraph(self, jigsaw22):
        query = cqgen.query_from_hypergraph(jigsaw22)
        assert query.hypergraph().edges == jigsaw22.edges
        assert not query.has_self_joins()
        assert not query.has_repeated_variables()
