"""The storage layer's version seam: monotone counters, the per-relation
append log (``delta_since``), the cached sorted iteration order, and the
memoized active domain — the contract every higher cache layer keys on."""

import pickle

import pytest

from repro.cq.database import Database, Relation


class TestRelationVersion:
    def test_version_counts_distinct_rows(self):
        relation = Relation("R", 2)
        assert relation.version == 0
        relation.add((1, 2))
        relation.add((3, 4))
        assert relation.version == 2
        relation.add((1, 2))  # duplicate: a no-op at every layer
        assert relation.version == 2

    def test_delta_since_returns_appended_rows_in_order(self):
        relation = Relation("R", 1, [(1,), (2,)])
        v = relation.version
        relation.add((3,))
        relation.add((2,))  # duplicate — must not appear in the delta
        relation.add((4,))
        assert relation.delta_since(v) == ((3,), (4,))
        assert relation.delta_since(0) == ((1,), (2,), (3,), (4,))
        assert relation.delta_since(relation.version) == ()

    def test_delta_since_validates_range(self):
        relation = Relation("R", 1, [(1,)])
        with pytest.raises(ValueError):
            relation.delta_since(-1)
        with pytest.raises(ValueError):
            relation.delta_since(relation.version + 1)

    def test_version_survives_pickling(self):
        relation = Relation("R", 2, [(1, 2), (3, 4)])
        clone = pickle.loads(pickle.dumps(relation))
        assert clone.version == relation.version
        assert clone.tuples == relation.tuples
        clone.add((5, 6))
        assert clone.delta_since(relation.version) == ((5, 6),)


class TestSortedIterationCache:
    def test_iteration_order_is_sorted_and_stable(self):
        relation = Relation("R", 1, [(3,), (1,), (2,)])
        assert list(relation) == [(1,), (2,), (3,)]
        # The cached order object is reused until the version moves.
        assert relation._sorted is relation._sorted

    def test_append_invalidates_the_cached_order(self):
        relation = Relation("R", 1, [(2,), (3,)])
        assert list(relation) == [(2,), (3,)]
        relation.add((1,))
        assert list(relation) == [(1,), (2,), (3,)]

    def test_duplicate_add_keeps_the_cached_order(self):
        relation = Relation("R", 1, [(1,), (2,)])
        list(relation)
        first = relation._sorted
        relation.add((1,))
        list(relation)
        assert relation._sorted is first


class TestDatabaseVersion:
    def test_database_version_moves_on_any_growth(self):
        database = Database()
        v0 = database.version
        database.add_fact("R", (1, 2))
        v1 = database.version
        assert v1 > v0  # new relation + new row
        database.add_fact("R", (1, 2))  # duplicate
        assert database.version == v1
        database.add_fact("S", (7,))
        assert database.version > v1


class TestActiveDomainMemo:
    def test_active_domain_is_memoized(self):
        database = Database()
        database.add_fact("R", (1, 2))
        first = database.active_domain()
        assert database.active_domain() is first

    def test_active_domain_updates_incrementally(self):
        database = Database()
        database.add_fact("R", (1, 2))
        assert database.active_domain() == frozenset({1, 2})
        database.add_fact("R", (2, 3))
        database.add_fact("S", (9,))
        assert database.active_domain() == frozenset({1, 2, 3, 9})

    def test_duplicate_values_keep_the_frozen_set(self):
        database = Database()
        database.add_fact("R", (1, 2))
        first = database.active_domain()
        database.add_fact("R", (2, 1))  # new row, no new values
        assert database.active_domain() is first
        assert database.active_domain() == frozenset({1, 2})
