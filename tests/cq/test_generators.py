"""Tests for the CQ/database workload generators."""

import pytest

from repro.cq import boolean_answer
from repro.cq import generators as cqgen
from repro.hypergraphs import generators as hgen


class TestQueryGenerators:
    def test_query_from_hypergraph_one_atom_per_edge(self, jigsaw33):
        query = cqgen.query_from_hypergraph(jigsaw33)
        assert len(query.atoms) == jigsaw33.num_edges
        assert query.hypergraph().edges == jigsaw33.edges

    def test_query_from_hypergraph_free_variables(self, jigsaw22):
        some_vertex = next(iter(jigsaw22.vertices))
        query = cqgen.query_from_hypergraph(jigsaw22, free_variables=[some_vertex])
        assert query.free_variables == (some_vertex,)

    def test_chain_and_cycle_shapes(self):
        assert len(cqgen.chain_query(4).atoms) == 4
        assert len(cqgen.cycle_query(6).atoms) == 6
        assert cqgen.star_query(5).hypergraph().degree() == 5
        assert len(cqgen.clique_query(4).atoms) == 6

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            cqgen.cycle_query(2)
        with pytest.raises(ValueError):
            cqgen.chain_query(0)
        with pytest.raises(ValueError):
            cqgen.clique_query(1)


class TestDatabaseGenerators:
    def test_random_database_matches_schema(self):
        query = cqgen.cycle_query(4)
        database = cqgen.random_database(query, 5, 10, seed=1)
        for atom in query.atoms:
            assert database.relation(atom.relation).arity == atom.arity

    def test_random_database_deterministic(self):
        query = cqgen.chain_query(3)
        assert cqgen.random_database(query, 4, 5, seed=9) == cqgen.random_database(query, 4, 5, seed=9)

    def test_planted_database_always_satisfiable(self):
        for seed in range(4):
            query = cqgen.jigsaw_query(2, 2)
            database = cqgen.planted_database(query, 4, 4, seed=seed)
            assert boolean_answer(query, database)

    def test_unsatisfiable_database_never_satisfiable(self):
        for seed in range(4):
            query = cqgen.cycle_query(5)
            database = cqgen.unsatisfiable_database(query, 4, 8, seed=seed)
            assert not boolean_answer(query, database)

    def test_grid_constraint_database_tuples_are_proper(self):
        query = cqgen.cycle_query(3)
        database = cqgen.grid_constraint_database(query, colours=3)
        for relation in database.relations.values():
            for row in relation.tuples:
                assert all(a != b for a, b in zip(row, row[1:]))


class TestZigzagCycleQuery:
    def test_hypergraph_is_the_cycle(self):
        query = cqgen.zigzag_cycle_query(6)
        hypergraph = query.hypergraph()
        assert len(hypergraph.edge_list()) == 6
        assert query.is_boolean()
        # Cyclic syntax: the GYO reduction must fail.
        from repro.widths.acyclicity import join_tree_decomposition

        assert join_tree_decomposition(hypergraph) is None

    def test_core_is_a_single_atom(self):
        from repro.cq.core import core_of

        for length in (4, 6, 8):
            core = core_of(cqgen.zigzag_cycle_query(length))
            assert len(core.atoms) == 1

    def test_free_variables_survive_the_fold(self):
        from repro.cq.core import core_of

        query = cqgen.zigzag_cycle_query(6, free_variables=["x0", "x1"])
        core = core_of(query)
        assert len(core.atoms) == 1
        assert set(core.free_variables) == {"x0", "x1"}

    def test_validation(self):
        with pytest.raises(ValueError, match="even length"):
            cqgen.zigzag_cycle_query(5)
        with pytest.raises(ValueError, match="even length"):
            cqgen.zigzag_cycle_query(2)
        with pytest.raises(ValueError, match="x0"):
            cqgen.zigzag_cycle_query(6, free_variables=["x3"])
        # None would mean "full query" — every variable free, nothing folds.
        with pytest.raises(ValueError, match="x0"):
            cqgen.zigzag_cycle_query(6, free_variables=None)


class TestUnsatisfiableSelfJoins:
    def test_self_join_queries_get_an_empty_relation(self):
        # The domain-split trick cannot work when every atom shares one
        # relation; the generator must fall back to an empty relation.
        for seed in range(3):
            query = cqgen.zigzag_cycle_query(6)
            database = cqgen.unsatisfiable_database(query, 4, 8, seed=seed)
            assert not boolean_answer(query, database)
