"""Tests for the CQ/database workload generators."""

import pytest

from repro.cq import boolean_answer
from repro.cq import generators as cqgen
from repro.hypergraphs import generators as hgen


class TestQueryGenerators:
    def test_query_from_hypergraph_one_atom_per_edge(self, jigsaw33):
        query = cqgen.query_from_hypergraph(jigsaw33)
        assert len(query.atoms) == jigsaw33.num_edges
        assert query.hypergraph().edges == jigsaw33.edges

    def test_query_from_hypergraph_free_variables(self, jigsaw22):
        some_vertex = next(iter(jigsaw22.vertices))
        query = cqgen.query_from_hypergraph(jigsaw22, free_variables=[some_vertex])
        assert query.free_variables == (some_vertex,)

    def test_chain_and_cycle_shapes(self):
        assert len(cqgen.chain_query(4).atoms) == 4
        assert len(cqgen.cycle_query(6).atoms) == 6
        assert cqgen.star_query(5).hypergraph().degree() == 5
        assert len(cqgen.clique_query(4).atoms) == 6

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            cqgen.cycle_query(2)
        with pytest.raises(ValueError):
            cqgen.chain_query(0)
        with pytest.raises(ValueError):
            cqgen.clique_query(1)


class TestDatabaseGenerators:
    def test_random_database_matches_schema(self):
        query = cqgen.cycle_query(4)
        database = cqgen.random_database(query, 5, 10, seed=1)
        for atom in query.atoms:
            assert database.relation(atom.relation).arity == atom.arity

    def test_random_database_deterministic(self):
        query = cqgen.chain_query(3)
        assert cqgen.random_database(query, 4, 5, seed=9) == cqgen.random_database(query, 4, 5, seed=9)

    def test_planted_database_always_satisfiable(self):
        for seed in range(4):
            query = cqgen.jigsaw_query(2, 2)
            database = cqgen.planted_database(query, 4, 4, seed=seed)
            assert boolean_answer(query, database)

    def test_unsatisfiable_database_never_satisfiable(self):
        for seed in range(4):
            query = cqgen.cycle_query(5)
            database = cqgen.unsatisfiable_database(query, 4, 8, seed=seed)
            assert not boolean_answer(query, database)

    def test_grid_constraint_database_tuples_are_proper(self):
        query = cqgen.cycle_query(3)
        database = cqgen.grid_constraint_database(query, colours=3)
        for relation in database.relations.values():
            for row in relation.tuples:
                assert all(a != b for a, b in zip(row, row[1:]))
