"""Tests for the HyperBench-substitute corpus."""

from repro.benchdata import (
    corpus_statistics,
    degree2_ghw_table,
    generate_corpus,
    render_table1,
)


class TestCorpus:
    def test_generation_is_deterministic(self):
        first = generate_corpus(seed=3, scale=0.05)
        second = generate_corpus(seed=3, scale=0.05)
        assert [e.name for e in first] == [e.name for e in second]
        assert [e.ghw_lower for e in first] == [e.ghw_lower for e in second]

    def test_bounds_are_consistent(self):
        corpus = generate_corpus(seed=1, scale=0.05)
        for entry in corpus:
            assert 0 <= entry.ghw_lower <= entry.ghw_upper

    def test_degree2_families_are_degree2(self):
        corpus = generate_corpus(seed=2, scale=0.05)
        for entry in corpus:
            if entry.family in {"chain", "cycle", "jigsaw", "thickened-jigsaw",
                                "dual-of-random-graph", "dual-of-partial-k-tree"}:
                assert entry.degree <= 2, entry.name

    def test_corpus_contains_non_degree2_entries(self):
        corpus = generate_corpus(seed=2, scale=0.1)
        assert any(not entry.is_degree_two for entry in corpus)

    def test_statistics_shape(self):
        corpus = generate_corpus(seed=0, scale=0.05)
        stats = corpus_statistics(corpus)
        assert stats["degree2"] <= stats["total"]
        assert stats["degree2_synthetic"] + stats["degree2_application_like"] == stats["degree2"]

    def test_table1_is_monotone_decreasing(self):
        corpus = generate_corpus(seed=0, scale=0.1)
        table = degree2_ghw_table(corpus)
        amounts = [amount for _, amount in table]
        assert amounts == sorted(amounts, reverse=True)
        assert table[0][0] == 1 and table[-1][0] == 5

    def test_table1_has_nontrivial_tail(self):
        corpus = generate_corpus(seed=0, scale=0.2)
        table = dict(degree2_ghw_table(corpus))
        assert table[1] > 0
        assert table[5] > 0

    def test_render_table1_mentions_all_thresholds(self):
        corpus = generate_corpus(seed=0, scale=0.05)
        rendered = render_table1(corpus)
        assert "ghw > k" in rendered
        for k in range(1, 6):
            assert f"\n  {k}" in rendered

    def test_jigsaw_entries_have_dimension_lower_bounds(self):
        corpus = generate_corpus(seed=4, scale=0.1)
        jigsaw_entries = [e for e in corpus if e.family == "jigsaw"]
        assert jigsaw_entries
        assert any(e.ghw_lower >= 4 for e in jigsaw_entries)
