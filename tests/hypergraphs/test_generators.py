"""Tests for the hypergraph generators."""

import pytest

from repro.hypergraphs import Hypergraph, dual_hypergraph, generators
from repro.hypergraphs.graphs import grid_graph
from repro.hypergraphs.isomorphism import are_isomorphic
from repro.hypergraphs.properties import is_alpha_acyclic


class TestJigsawGenerator:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 3), (3, 4), (4, 4)])
    def test_every_vertex_has_degree_two(self, rows, cols):
        j = generators.jigsaw(rows, cols)
        assert all(j.degree(v) == 2 for v in j.vertices)

    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3), (3, 4)])
    def test_edge_and_vertex_counts(self, rows, cols):
        j = generators.jigsaw(rows, cols)
        assert j.num_edges == rows * cols
        assert j.num_vertices == rows * (cols - 1) + cols * (rows - 1)

    def test_adjacent_edges_share_exactly_one_vertex(self):
        j = generators.jigsaw(3, 3)
        e00 = generators.jigsaw_edge_of(3, 3, (0, 0))
        e01 = generators.jigsaw_edge_of(3, 3, (0, 1))
        e11 = generators.jigsaw_edge_of(3, 3, (1, 1))
        assert len(e00 & e01) == 1
        assert len(e00 & e11) == 0
        assert e00 in j.edges and e01 in j.edges

    def test_jigsaw_is_dual_of_grid(self):
        j = generators.jigsaw(3, 4)
        grid = grid_graph(3, 4)
        assert are_isomorphic(dual_hypergraph(j), Hypergraph(grid.vertices, grid.edges))

    def test_jigsaw_edge_of_out_of_range(self):
        with pytest.raises(ValueError):
            generators.jigsaw_edge_of(3, 3, (3, 0))

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            generators.jigsaw(0, 3)


class TestThickenedJigsaw:
    def test_degree_two(self):
        assert generators.thickened_jigsaw(3, 3).degree() == 2

    def test_larger_than_jigsaw(self):
        base = generators.jigsaw(3, 3)
        thick = generators.thickened_jigsaw(3, 3)
        assert thick.size > base.size

    def test_structure_metadata(self):
        h, big_edge_of, connector_of = generators.thickened_jigsaw_with_structure(2, 3)
        assert set(big_edge_of) == {(i, j) for i in range(2) for j in range(3)}
        assert all(edge in h.edges for edge in big_edge_of.values())
        assert all(edge in h.edges for edge in connector_of.values())
        assert len(connector_of) == generators.jigsaw(2, 3).num_vertices

    def test_big_edges_do_not_intersect_each_other(self):
        _, big_edge_of, _ = generators.thickened_jigsaw_with_structure(3, 3)
        edges = list(big_edge_of.values())
        for i, e in enumerate(edges):
            for f in edges[i + 1:]:
                assert not (e & f)

    def test_degenerate_dimensions_rejected(self):
        with pytest.raises(ValueError):
            generators.thickened_jigsaw(1, 2)

    def test_figure2_hypergraph_is_thickened_32(self):
        assert generators.figure2_hypergraph() == generators.thickened_jigsaw(3, 2)


class TestOtherFamilies:
    def test_figure1_hypergraph_shape(self):
        h = generators.figure1_hypergraph()
        assert h.degree() == 3
        assert h.rank() == 3
        assert h.num_edges == 5

    def test_dual_of_graph_degree_two(self):
        graph = generators.erdos_renyi_graph(10, 0.4, seed=7)
        alive = [v for v in graph.vertices if graph.degree(v) > 0]
        dual = generators.dual_of_graph(graph.induced_subhypergraph(alive))
        assert dual.degree() <= 2

    def test_random_degree2_hypergraph(self):
        h = generators.random_degree2_hypergraph(12, 0.3, seed=5)
        assert h.degree() <= 2

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi_graph(5, 1.5)
        assert generators.erdos_renyi_graph(5, 0.0).num_edges == 0
        assert generators.erdos_renyi_graph(5, 1.0).num_edges == 10

    def test_erdos_renyi_deterministic_in_seed(self):
        first = generators.erdos_renyi_graph(10, 0.5, seed=11)
        second = generators.erdos_renyi_graph(10, 0.5, seed=11)
        assert first == second

    def test_partial_ktree_respects_width(self):
        from repro.widths.treewidth import treewidth_upper_bound

        graph = generators.random_graph_with_treewidth_at_most(10, 2, seed=3)
        assert treewidth_upper_bound(graph).upper <= 2

    def test_hypercycle_properties(self):
        h = generators.hypercycle(5, edge_size=3)
        assert h.num_edges == 5
        assert h.degree() == 2
        assert not is_alpha_acyclic(h)

    def test_hyperpath_is_acyclic(self):
        assert is_alpha_acyclic(generators.hyperpath(6, edge_size=3))

    def test_star_hypergraph_degree(self):
        h = generators.star_hypergraph(5)
        assert h.degree("centre") == 5
        assert is_alpha_acyclic(h)

    def test_random_acyclic_hypergraph(self):
        for seed in range(3):
            h = generators.random_acyclic_hypergraph(8, max_rank=4, seed=seed)
            assert is_alpha_acyclic(h)
            assert h.rank() <= 4

    def test_disjoint_union(self):
        a = generators.hypercycle(3)
        b = generators.hyperpath(2)
        union = generators.disjoint_union([a, b])
        assert union.num_edges == a.num_edges + b.num_edges
        assert not union.is_connected()

    def test_generator_validation_errors(self):
        with pytest.raises(ValueError):
            generators.hypercycle(2)
        with pytest.raises(ValueError):
            generators.hyperpath(0)
        with pytest.raises(ValueError):
            generators.star_hypergraph(0)
