"""Tests for dual hypergraphs and primal graphs."""

from repro.hypergraphs import Hypergraph, dual_hypergraph, primal_graph, generators
from repro.hypergraphs.duality import (
    double_dual_mapping,
    dual_degree_equals_rank,
    is_self_dual_consistent,
)
from repro.hypergraphs.graphs import grid_graph
from repro.hypergraphs.isomorphism import are_isomorphic


class TestDual:
    def test_dual_vertices_are_edges(self, jigsaw22):
        dual = dual_hypergraph(jigsaw22)
        assert dual.vertices == jigsaw22.edges

    def test_dual_swaps_degree_and_rank(self, jigsaw33):
        dual = dual_hypergraph(jigsaw33)
        assert dual.rank() == jigsaw33.degree()
        assert dual.degree() == jigsaw33.rank()
        assert dual_degree_equals_rank(jigsaw33)

    def test_dual_of_jigsaw_is_grid(self, jigsaw33):
        grid = grid_graph(3, 3)
        assert are_isomorphic(dual_hypergraph(jigsaw33), Hypergraph(grid.vertices, grid.edges))

    def test_dual_of_graph_has_degree_two(self):
        graph = generators.erdos_renyi_graph(8, 0.5, seed=3)
        alive = [v for v in graph.vertices if graph.degree(v) > 0]
        dual = dual_hypergraph(graph.induced_subhypergraph(alive))
        assert dual.degree() <= 2

    def test_double_dual_of_reduced_hypergraph(self, jigsaw33):
        assert is_self_dual_consistent(jigsaw33)

    def test_double_dual_mapping_none_for_unreduced(self):
        h = Hypergraph(vertices=["isolated"], edges=[{"a", "b"}])
        assert double_dual_mapping(h) is None


class TestPrimalGraph:
    def test_primal_graph_of_triangle_edge(self):
        h = Hypergraph(edges=[{"a", "b", "c"}])
        primal = primal_graph(h)
        assert primal.num_edges == 3

    def test_primal_graph_of_graph_is_itself(self, cycle5):
        primal = primal_graph(Hypergraph(cycle5.vertices, cycle5.edges))
        assert primal.edges == cycle5.edges

    def test_primal_keeps_isolated_vertices(self):
        h = Hypergraph(vertices=["x"], edges=[{"a", "b"}])
        assert "x" in primal_graph(h).vertices

    def test_primal_graph_of_jigsaw(self, jigsaw22):
        primal = primal_graph(jigsaw22)
        # Every pair of vertices inside one jigsaw edge becomes adjacent.
        assert primal.num_vertices == jigsaw22.num_vertices
        assert all(len(e) == 2 for e in primal.edges)
