"""Tests for reduced hypergraphs and the Lemma 3.6 dilution sequence."""

from repro.hypergraphs import Hypergraph, reduce_hypergraph, reduction_dilution_sequence


class TestReduceHypergraph:
    def test_already_reduced_is_unchanged(self, jigsaw33):
        assert reduce_hypergraph(jigsaw33) == jigsaw33

    def test_isolated_vertices_removed(self):
        h = Hypergraph(vertices=["x"], edges=[{"a", "b"}])
        assert "x" not in reduce_hypergraph(h).vertices

    def test_empty_edges_removed(self):
        h = Hypergraph(edges=[set(), {"a", "b"}])
        assert not reduce_hypergraph(h).has_empty_edge()

    def test_duplicate_vertex_types_collapse(self):
        h = Hypergraph(edges=[{"a", "b", "c"}, {"c", "d"}])
        reduced = reduce_hypergraph(h)
        # a and b share the type {abc}; only one survives.
        assert reduced.num_vertices == 3
        assert reduced.is_reduced()

    def test_result_is_always_reduced(self):
        h = Hypergraph(
            vertices=["iso"],
            edges=[set(), {"a", "b"}, {"a", "b", "c"}, {"c", "d", "e"}],
        )
        assert reduce_hypergraph(h).is_reduced()


class TestReductionDilutionSequence:
    def test_sequence_reproduces_reduced_hypergraph(self):
        h = Hypergraph(
            vertices=["iso"],
            edges=[{"a", "b"}, {"a", "b", "c"}, {"c", "d", "e"}],
        )
        sequence = reduction_dilution_sequence(h)
        assert sequence.apply(h) == reduce_hypergraph(h)

    def test_sequence_is_applicable_step_by_step(self):
        h = Hypergraph(vertices=["iso"], edges=[{"a", "b"}, {"b", "c", "d"}])
        sequence = reduction_dilution_sequence(h)
        assert sequence.is_applicable_to(h)

    def test_sequence_empty_for_reduced_input(self, jigsaw22):
        assert len(reduction_dilution_sequence(jigsaw22)) == 0

    def test_sequence_monotone(self):
        h = Hypergraph(vertices=["iso"], edges=[{"a", "b"}, {"a", "b", "c"}])
        sequence = reduction_dilution_sequence(h)
        checks = sequence.check_monotonicity(h)
        assert checks["degree_monotone"]
        assert checks["size_monotone"]
