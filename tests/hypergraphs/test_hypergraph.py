"""Unit tests for the core Hypergraph data structure."""

import pytest

from repro.hypergraphs import Hypergraph


class TestConstruction:
    def test_vertices_collected_from_edges(self):
        h = Hypergraph(edges=[{"x", "y"}, {"y", "z"}])
        assert h.vertices == frozenset({"x", "y", "z"})

    def test_explicit_isolated_vertices(self):
        h = Hypergraph(vertices=["lonely"], edges=[{"x", "y"}])
        assert "lonely" in h.vertices
        assert h.degree("lonely") == 0
        assert h.isolated_vertices() == frozenset({"lonely"})

    def test_duplicate_edges_collapse(self):
        h = Hypergraph(edges=[{"x", "y"}, {"y", "x"}])
        assert h.num_edges == 1

    def test_empty_edge_allowed(self):
        h = Hypergraph(edges=[set(), {"x"}])
        assert h.has_empty_edge()
        assert h.num_edges == 2

    def test_empty_hypergraph(self):
        h = Hypergraph()
        assert h.num_vertices == 0
        assert h.num_edges == 0
        assert h.degree() == 0
        assert h.rank() == 0

    def test_size_measure(self):
        h = Hypergraph(edges=[{"x", "y"}, {"y", "z"}])
        assert h.size == 3 + 2

    def test_equality_and_hash(self):
        h1 = Hypergraph(edges=[{"x", "y"}])
        h2 = Hypergraph(edges=[{"y", "x"}])
        assert h1 == h2
        assert hash(h1) == hash(h2)
        assert h1 != Hypergraph(edges=[{"x", "z"}])


class TestIncidenceAndDegree:
    def test_incident_edges(self):
        h = Hypergraph(edges=[{"x", "y"}, {"y", "z"}, {"z", "w"}])
        assert h.incident_edges("y") == frozenset({frozenset({"x", "y"}), frozenset({"y", "z"})})

    def test_degree_of_vertex_and_hypergraph(self):
        h = Hypergraph(edges=[{"x", "y"}, {"y", "z"}, {"y", "w"}])
        assert h.degree("y") == 3
        assert h.degree("x") == 1
        assert h.degree() == 3

    def test_rank(self):
        h = Hypergraph(edges=[{"a"}, {"a", "b", "c", "d"}])
        assert h.rank() == 4

    def test_unknown_vertex_raises(self):
        h = Hypergraph(edges=[{"x", "y"}])
        with pytest.raises(KeyError):
            h.incident_edges("nope")

    def test_vertex_type(self):
        h = Hypergraph(edges=[{"x", "y"}, {"x", "z"}])
        assert h.vertex_type("x") == h.incident_edges("x")


class TestModifications:
    def test_delete_vertex_removes_from_edges(self):
        h = Hypergraph(edges=[{"x", "y", "z"}, {"z", "w"}])
        result = h.delete_vertex("z")
        assert frozenset({"x", "y"}) in result.edges
        assert frozenset({"w"}) in result.edges
        assert "z" not in result.vertices

    def test_delete_vertex_can_collapse_edges(self):
        h = Hypergraph(edges=[{"x", "y"}, {"x", "y", "z"}])
        result = h.delete_vertex("z")
        assert result.num_edges == 1

    def test_delete_vertex_keeps_empty_edge_by_default(self):
        h = Hypergraph(edges=[{"v"}, {"v", "w"}])
        result = h.delete_vertex("v")
        assert result.has_empty_edge()

    def test_delete_vertices_drops_empty_edges(self):
        h = Hypergraph(edges=[{"v"}, {"v", "w"}])
        result = h.delete_vertices(["v"])
        assert not result.has_empty_edge()

    def test_induced_subhypergraph(self):
        h = Hypergraph(edges=[{"a", "b", "c"}, {"c", "d"}])
        induced = h.induced_subhypergraph({"a", "b"})
        assert induced.edges == frozenset({frozenset({"a", "b"})})

    def test_delete_edge(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}])
        result = h.delete_edge({"a", "b"})
        assert result.num_edges == 1
        assert "a" in result.vertices  # vertices are kept

    def test_delete_missing_edge_raises(self):
        h = Hypergraph(edges=[{"a", "b"}])
        with pytest.raises(KeyError):
            h.delete_edge({"a", "c"})

    def test_add_edge_and_vertex(self):
        h = Hypergraph(edges=[{"a", "b"}])
        assert h.add_edge({"b", "c"}).num_edges == 2
        assert "z" in h.add_vertex("z").vertices

    def test_merge_on_vertex(self):
        h = Hypergraph(edges=[{"x", "y"}, {"y", "z"}, {"z", "w"}])
        merged = h.merge_on_vertex("y")
        assert frozenset({"x", "z"}) in merged.edges
        assert "y" not in merged.vertices
        assert frozenset({"z", "w"}) in merged.edges
        assert merged.num_edges == 2

    def test_merge_on_degree_one_vertex(self):
        h = Hypergraph(edges=[{"x", "y"}, {"y", "z"}])
        merged = h.merge_on_vertex("x")
        assert frozenset({"y"}) in merged.edges

    def test_relabel_injective_required(self):
        h = Hypergraph(edges=[{"a", "b"}])
        with pytest.raises(ValueError):
            h.relabel(lambda v: "same")

    def test_canonical_relabel_roundtrip(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}])
        relabelled, mapping = h.canonical_relabel()
        assert relabelled.num_edges == h.num_edges
        assert set(mapping.values()) == set(range(h.num_vertices))


class TestConnectivity:
    def test_connected_components(self):
        h = Hypergraph(edges=[{"a", "b"}, {"c", "d"}])
        components = h.connected_components()
        assert len(components) == 2
        assert frozenset({"a", "b"}) in components

    def test_is_connected(self):
        assert Hypergraph(edges=[{"a", "b"}, {"b", "c"}]).is_connected()
        assert not Hypergraph(edges=[{"a", "b"}, {"c", "d"}]).is_connected()

    def test_isolated_vertex_is_own_component(self):
        h = Hypergraph(vertices=["x"], edges=[{"a", "b"}])
        assert len(h.connected_components()) == 2

    def test_find_path_alternates_vertices_and_edges(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"c", "d"}])
        path = h.find_path("a", "d")
        assert path[0] == "a"
        assert path[-1] == "d"
        # Alternating structure: odd positions are edges.
        assert all(isinstance(path[i], frozenset) for i in range(1, len(path), 2))

    def test_find_path_none_when_disconnected(self):
        h = Hypergraph(edges=[{"a", "b"}, {"c", "d"}])
        assert h.find_path("a", "c") is None

    def test_edges_connected(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"d", "e"}])
        assert h.edges_connected([frozenset({"a", "b"}), frozenset({"b", "c"})])
        assert not h.edges_connected([frozenset({"a", "b"}), frozenset({"d", "e"})])

    def test_edge_connected_components(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"d", "e"}])
        groups = h.edge_connected_components()
        assert len(groups) == 2


class TestPredicates:
    def test_is_reduced_positive(self, jigsaw33):
        assert jigsaw33.is_reduced()

    def test_is_reduced_fails_with_isolated_vertex(self):
        h = Hypergraph(vertices=["x"], edges=[{"a", "b"}])
        assert not h.is_reduced()

    def test_is_reduced_fails_with_empty_edge(self):
        assert not Hypergraph(edges=[set(), {"a", "b"}]).is_reduced()

    def test_is_reduced_fails_with_duplicate_vertex_types(self):
        h = Hypergraph(edges=[{"a", "b", "c"}])
        # a, b, c all have the same type {the edge}.
        assert not h.is_reduced()

    def test_is_graph(self):
        assert Hypergraph(edges=[{"a", "b"}, {"b", "c"}]).is_graph()
        assert not Hypergraph(edges=[{"a", "b", "c"}]).is_graph()

    def test_is_subhypergraph_of(self):
        small = Hypergraph(edges=[{"a", "b"}])
        big = Hypergraph(edges=[{"a", "b"}, {"b", "c"}])
        assert small.is_subhypergraph_of(big)
        assert not big.is_subhypergraph_of(small)
