"""Tests for hypergraph isomorphism."""

from repro.hypergraphs import Hypergraph, are_isomorphic, find_isomorphism, generators


class TestIsomorphism:
    def test_identical_hypergraphs(self, jigsaw22):
        assert are_isomorphic(jigsaw22, jigsaw22)

    def test_relabelled_hypergraph(self, jigsaw33):
        relabelled, _ = jigsaw33.canonical_relabel()
        mapping = find_isomorphism(jigsaw33, relabelled)
        assert mapping is not None
        assert len(set(mapping.values())) == jigsaw33.num_vertices

    def test_mapping_is_edge_preserving(self, thickened32):
        relabelled, _ = thickened32.canonical_relabel()
        mapping = find_isomorphism(thickened32, relabelled)
        mapped_edges = frozenset(frozenset(mapping[v] for v in e) for e in thickened32.edges)
        assert mapped_edges == relabelled.edges

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(
            Hypergraph(edges=[{"a", "b"}]), Hypergraph(edges=[{"a", "b"}, {"b", "c"}])
        )

    def test_same_counts_different_structure(self):
        path = Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"c", "d"}])
        star = Hypergraph(edges=[{"x", "a"}, {"x", "b"}, {"x", "c"}])
        assert not are_isomorphic(path, star)

    def test_jigsaw_transpose_isomorphic(self):
        assert are_isomorphic(generators.jigsaw(3, 4), generators.jigsaw(4, 3))

    def test_jigsaw_different_dimensions_not_isomorphic(self):
        assert not are_isomorphic(generators.jigsaw(3, 4), generators.jigsaw(2, 6))

    def test_larger_jigsaw_isomorphism_is_fast(self):
        assert are_isomorphic(generators.jigsaw(5, 5), generators.jigsaw(5, 5))

    def test_empty_hypergraphs(self):
        assert are_isomorphic(Hypergraph(), Hypergraph())

    def test_edge_size_multiset_mismatch(self):
        first = Hypergraph(edges=[{"a", "b", "c"}, {"c", "d"}])
        second = Hypergraph(edges=[{"a", "b"}, {"b", "c", "d"}])
        # Same multiset here, actually isomorphic; now a genuine mismatch:
        third = Hypergraph(edges=[{"a", "b", "c", "d"}, {"d", "e"}])
        assert not are_isomorphic(first, third)
        assert are_isomorphic(first, second)
