"""Tests for hypergraph properties: acyclicity, histograms, statistics."""

from repro.hypergraphs import Hypergraph, generators
from repro.hypergraphs.properties import (
    degree_histogram,
    edge_size_histogram,
    gyo_reduction,
    hypergraph_statistics,
    is_alpha_acyclic,
    join_forest,
    vertex_types,
)


class TestAcyclicity:
    def test_single_edge_is_acyclic(self):
        assert is_alpha_acyclic(Hypergraph(edges=[{"a", "b", "c"}]))

    def test_triangle_is_cyclic(self, triangle):
        assert not is_alpha_acyclic(triangle)

    def test_covered_triangle_is_acyclic(self, triangle):
        covered = triangle.add_edge({"a", "b", "c"})
        assert is_alpha_acyclic(covered)

    def test_jigsaw_is_cyclic(self, jigsaw22):
        assert not is_alpha_acyclic(jigsaw22)

    def test_acyclic_fixture(self, small_acyclic):
        assert is_alpha_acyclic(small_acyclic)

    def test_gyo_residual_on_cycle(self):
        h = generators.hypercycle(4)
        result = gyo_reduction(h)
        assert not result.acyclic
        assert result.residual

    def test_join_forest_for_acyclic(self, small_acyclic):
        forest = join_forest(small_acyclic)
        assert forest is not None
        assert set(forest) == set(small_acyclic.edges)
        roots = [edge for edge, parent in forest.items() if parent is None]
        assert len(roots) == 1

    def test_join_forest_none_for_cyclic(self, triangle):
        assert join_forest(triangle) is None

    def test_disconnected_acyclic(self):
        h = generators.disjoint_union([generators.hyperpath(2), generators.hyperpath(3)])
        assert is_alpha_acyclic(h)


class TestStatistics:
    def test_vertex_types(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}])
        types = vertex_types(h)
        assert types["b"] == h.incident_edges("b")

    def test_degree_histogram(self, jigsaw33):
        histogram = degree_histogram(jigsaw33)
        assert histogram == {2: jigsaw33.num_vertices}

    def test_edge_size_histogram(self, jigsaw33):
        histogram = edge_size_histogram(jigsaw33)
        assert sum(histogram.values()) == jigsaw33.num_edges
        assert set(histogram) == {2, 3, 4}

    def test_hypergraph_statistics_record(self, jigsaw22):
        stats = hypergraph_statistics(jigsaw22)
        assert stats.degree == 2
        assert stats.connected
        assert not stats.alpha_acyclic
        assert stats.reduced
