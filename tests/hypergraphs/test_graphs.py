"""Tests for the graph layer and standard graph families."""

import pytest

from repro.hypergraphs.graphs import (
    Graph,
    as_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.hypergraphs import Hypergraph


class TestGraphConstruction:
    def test_rejects_non_binary_edges(self):
        with pytest.raises(ValueError):
            Graph(edges=[{"a", "b", "c"}])

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            Graph(edges=[{"a"}])

    def test_as_graph_conversion(self):
        h = Hypergraph(edges=[{"a", "b"}])
        assert isinstance(as_graph(h), Graph)
        with pytest.raises(ValueError):
            as_graph(Hypergraph(edges=[{"a", "b", "c"}]))

    def test_adjacency(self):
        g = path_graph(3)
        assert g.adjacency()[1] == frozenset({0, 2})

    def test_has_edge(self):
        g = cycle_graph(4)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)


class TestFamilies:
    def test_path_graph(self):
        g = path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices)

    def test_cycle_requires_three_vertices(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g.vertices)

    def test_star_graph(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.num_edges == 4

    def test_grid_graph_dimensions(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 4 * 2  # horizontal + vertical edges

    def test_grid_graph_degrees(self):
        g = grid_graph(3, 3)
        degrees = sorted(g.degree(v) for v in g.vertices)
        assert degrees == [2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_grid_graph_rejects_non_positive(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestGraphOperations:
    def test_contract_edge_merges_neighbourhoods(self):
        g = path_graph(4)
        contracted = g.contract_edge(1, 2, merged_name="m")
        assert contracted.num_vertices == 3
        assert contracted.has_edge(0, "m")
        assert contracted.has_edge("m", 3)

    def test_contract_non_edge_raises(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            g.contract_edge(0, 3)

    def test_contract_triangle_drops_parallel_edges(self):
        g = cycle_graph(3)
        contracted = g.contract_edge(0, 1, merged_name="m")
        assert contracted.num_vertices == 2
        assert contracted.num_edges == 1

    def test_delete_graph_vertex(self):
        g = cycle_graph(4)
        reduced = g.delete_graph_vertex(0)
        assert reduced.num_vertices == 3
        assert reduced.num_edges == 2

    def test_delete_graph_edge(self):
        g = cycle_graph(4)
        reduced = g.delete_graph_edge(0, 1)
        assert reduced.num_edges == 3
        with pytest.raises(ValueError):
            g.delete_graph_edge(0, 2)

    def test_to_hypergraph_keeps_data(self):
        g = path_graph(3)
        h = g.to_hypergraph()
        assert h.edges == g.edges
        assert h.vertices == g.vertices
