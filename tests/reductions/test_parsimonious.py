"""Tests for the counting (parsimonious) side of the reduction."""

from repro.cq import count_answers, decomposition_count_answers
from repro.cq import generators as cqgen
from repro.dilutions import DilutionSequence, MergeOnVertex, find_dilution_sequence
from repro.hypergraphs import Hypergraph, generators
from repro.reductions import counting_reduction
from repro.reductions.parsimonious import verify_parsimony


class TestCountingReduction:
    def test_counts_preserved_on_colouring_instance(self):
        # The cycle query with a proper-colouring database has a known count;
        # the reduction to a merged-vertex source must preserve it exactly.
        source = Hypergraph(edges=[{"x0", "v"}, {"v", "x1"}, {"x1", "x2"}, {"x2", "x3"}, {"x3", "x0"}])
        sequence = DilutionSequence([MergeOnVertex("v")])
        diluted = sequence.apply(source)
        query = cqgen.query_from_hypergraph(diluted)
        database = cqgen.grid_constraint_database(query, colours=3)
        expected = count_answers(query, database)
        result = counting_reduction(query, database, source, sequence)
        assert count_answers(result.query, result.database) == expected

    def test_parsimony_on_random_instances(self):
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        diluted = sequence.apply(source)
        for seed in range(3):
            query = cqgen.query_from_hypergraph(diluted)
            database = cqgen.planted_database(query, 3, 5, seed=seed)
            result = counting_reduction(query, database, source, sequence)
            assert verify_parsimony(result)

    def test_reduced_instance_counts_match_decomposition_counting(self):
        source = Hypergraph(edges=[{"a", "v"}, {"v", "b"}, {"b", "c"}, {"c", "a"}])
        sequence = DilutionSequence([MergeOnVertex("v")])
        diluted = sequence.apply(source)
        query = cqgen.query_from_hypergraph(diluted)
        database = cqgen.grid_constraint_database(query, colours=3)
        result = counting_reduction(query, database, source, sequence)
        assert decomposition_count_answers(result.query, result.database) == count_answers(
            query, database
        )
