"""Tests for the Theorem 3.4 reduction."""

import pytest

from repro.cq import Atom, ConjunctiveQuery, Database
from repro.cq import generators as cqgen
from repro.dilutions import (
    DeleteSubedge,
    DeleteVertex,
    DilutionSequence,
    MergeOnVertex,
    find_dilution_sequence,
)
from repro.hypergraphs import Hypergraph, generators
from repro.reductions import normalize_query, reduce_along_dilution
from repro.reductions.parsimonious import (
    size_bound_holds,
    verify_answer_preservation,
    verify_parsimony,
)


def make_instance(hypergraph, seed=0, satisfiable=True, domain=3, tuples=6):
    query = cqgen.query_from_hypergraph(hypergraph)
    if satisfiable:
        database = cqgen.planted_database(query, domain, tuples, seed=seed)
    else:
        database = cqgen.unsatisfiable_database(query, domain, tuples, seed=seed)
    return query, database


class TestNormalization:
    def test_self_joins_are_split(self):
        query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("R", ["y", "z"])])
        database = Database()
        database.add_fact("R", (1, 2))
        database.add_fact("R", (2, 3))
        normalized, new_database = normalize_query(query, database)
        assert not normalized.has_self_joins()
        names = {atom.relation for atom in normalized.atoms}
        assert len(names) == 2
        for name in names:
            assert len(new_database.relation(name)) == 2

    def test_same_scope_atoms_merged(self):
        query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "x"])])
        database = Database()
        database.add_fact("R", (1, 2))
        database.add_fact("R", (3, 4))
        database.add_fact("S", (2, 1))
        normalized, new_database = normalize_query(query, database)
        assert len(normalized.atoms) == 1
        merged = new_database.relation(normalized.atoms[0].relation)
        assert len(merged) == 1  # only (x=1, y=2) satisfies both

    def test_repeated_variables_rejected(self):
        query = ConjunctiveQuery([Atom("R", ["x", "x"])])
        with pytest.raises(ValueError):
            normalize_query(query, Database())

    def test_normalization_preserves_answers(self):
        from repro.cq.homomorphism import enumerate_answers

        query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("R", ["y", "z"])])
        database = Database()
        for row in [(1, 2), (2, 3), (3, 1)]:
            database.add_fact("R", row)
        normalized, new_database = normalize_query(query, database)
        assert enumerate_answers(query, database) == enumerate_answers(normalized, new_database)


class TestSingleOperationReversal:
    def test_reverse_vertex_deletion(self):
        source = Hypergraph(edges=[{"a", "b", "v"}, {"b", "c"}])
        sequence = DilutionSequence([DeleteVertex("v")])
        target = sequence.apply(source)
        query = cqgen.query_from_hypergraph(target)
        database = cqgen.planted_database(query, 3, 5, seed=1)
        result = reduce_along_dilution(query, database, source, sequence)
        assert result.query.hypergraph().edges == source.edges
        assert verify_answer_preservation(result)
        assert verify_parsimony(result)

    def test_reverse_merge(self):
        source = Hypergraph(edges=[{"a", "v"}, {"v", "b"}, {"b", "c"}])
        sequence = DilutionSequence([MergeOnVertex("v")])
        target = sequence.apply(source)
        query = cqgen.query_from_hypergraph(target)
        database = cqgen.planted_database(query, 3, 6, seed=2)
        result = reduce_along_dilution(query, database, source, sequence)
        assert result.query.hypergraph().edges == source.edges
        assert verify_answer_preservation(result)
        assert verify_parsimony(result)

    def test_reverse_subedge_deletion(self):
        source = Hypergraph(edges=[{"a", "b"}, {"a", "b", "c"}, {"c", "d"}])
        sequence = DilutionSequence([DeleteSubedge({"a", "b"})])
        target = sequence.apply(source)
        query = cqgen.query_from_hypergraph(target)
        database = cqgen.planted_database(query, 3, 6, seed=3)
        result = reduce_along_dilution(query, database, source, sequence)
        assert result.query.hypergraph().edges == source.edges
        assert verify_answer_preservation(result)
        assert verify_parsimony(result)

    def test_wrong_sequence_rejected(self):
        source = generators.jigsaw(2, 2)
        query = cqgen.query_from_hypergraph(generators.hypercycle(3))
        database = cqgen.planted_database(query, 3, 4, seed=0)
        with pytest.raises(ValueError):
            reduce_along_dilution(query, database, source, DilutionSequence())


class TestEndToEnd:
    @pytest.mark.parametrize("satisfiable", [True, False])
    def test_thickened_jigsaw_reduction(self, satisfiable):
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        diluted = sequence.apply(source)
        query, database = make_instance(diluted, seed=5, satisfiable=satisfiable)
        result = reduce_along_dilution(query, database, source, sequence)
        assert result.query.hypergraph().edges == source.edges
        assert verify_answer_preservation(result)
        assert verify_parsimony(result)
        assert size_bound_holds(result, source.degree())

    def test_reduction_along_lemma36_sequence(self):
        from repro.hypergraphs import reduction_dilution_sequence

        source = Hypergraph(
            vertices=["isolated"],
            edges=[{"a", "b"}, {"a", "b", "c"}, {"c", "d", "e"}],
        )
        sequence = reduction_dilution_sequence(source)
        reduced = sequence.apply(source)
        query = cqgen.query_from_hypergraph(reduced)
        database = cqgen.planted_database(query, 3, 5, seed=8)
        result = reduce_along_dilution(query, database, source, sequence)
        assert verify_answer_preservation(result)
        assert verify_parsimony(result)

    def test_blow_up_and_steps_recorded(self):
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        diluted = sequence.apply(source)
        query, database = make_instance(diluted, seed=4)
        result = reduce_along_dilution(query, database, source, sequence)
        assert len(result.steps) == len(sequence)
        assert result.blow_up >= 1.0
        assert all(step.database_size > 0 for step in result.steps)
