"""Tests for dilution sequences and the Lemma 3.2 monotonicity facts."""

import pytest

from repro.dilutions import DeleteSubedge, DeleteVertex, DilutionSequence, MergeOnVertex
from repro.hypergraphs import Hypergraph, generators
from repro.widths.ghw import ghw_upper_bound


@pytest.fixture
def sample():
    return Hypergraph(edges=[{"a", "b", "c"}, {"c", "d"}, {"d", "e"}, {"a", "b"}])


class TestSequenceBasics:
    def test_empty_sequence_is_identity(self, sample):
        assert DilutionSequence().apply(sample) == sample

    def test_sequence_applies_in_order(self, sample):
        sequence = DilutionSequence([DeleteSubedge({"a", "b"}), DeleteVertex("e")])
        result = sequence.apply(sample)
        assert frozenset({"a", "b"}) not in result.edges
        assert "e" not in result.vertices

    def test_order_matters_for_applicability(self, sample):
        # Deleting vertex c first makes {a, b} no longer a proper subedge
        # of {a, b, c}, so the subedge deletion becomes inapplicable.
        bad_order = DilutionSequence([DeleteVertex("c"), DeleteSubedge({"a", "b"})])
        good_order = DilutionSequence([DeleteSubedge({"a", "b"}), DeleteVertex("c")])
        assert not bad_order.is_applicable_to(sample)
        assert good_order.is_applicable_to(sample)

    def test_intermediate_hypergraphs(self, sample):
        sequence = DilutionSequence([DeleteVertex("e"), MergeOnVertex("c")])
        stages = sequence.intermediate_hypergraphs(sample)
        assert len(stages) == 3
        assert stages[0] == sample
        assert stages[-1] == sequence.apply(sample)

    def test_concatenation(self, sample):
        first = DilutionSequence([DeleteVertex("e")])
        second = DilutionSequence([MergeOnVertex("c")])
        combined = first + second
        assert len(combined) == 2
        assert combined.apply(sample) == second.apply(first.apply(sample))

    def test_indexing_and_iteration(self):
        operations = [DeleteVertex("a"), DeleteVertex("b")]
        sequence = DilutionSequence(operations)
        assert sequence[0] == operations[0]
        assert list(sequence) == operations


class TestLemma32Monotonicity:
    def test_degree_and_size_monotone_on_examples(self, sample):
        sequence = DilutionSequence(
            [DeleteSubedge({"a", "b"}), MergeOnVertex("c"), DeleteVertex("e")]
        )
        checks = sequence.check_monotonicity(sample)
        assert checks["degree_monotone"]
        assert checks["size_monotone"]

    def test_size_strictly_decreases_per_operation(self, sample):
        sequence = DilutionSequence([DeleteSubedge({"a", "b"}), MergeOnVertex("c")])
        stages = sequence.intermediate_hypergraphs(sample)
        for earlier, later in zip(stages, stages[1:]):
            assert later.size < earlier.size

    def test_ghw_never_increases_along_thickened_jigsaw_dilution(self):
        # Lemma 3.2(3) checked on a concrete dilution: the thickened jigsaw
        # dilutes to the jigsaw, whose ghw upper bound must not exceed the
        # source's by more than the certification slack.
        from repro.jigsaws import dilute_to_jigsaw

        source = generators.thickened_jigsaw(2, 2)
        certificate = dilute_to_jigsaw(source, 2, 2)
        assert certificate is not None
        source_upper = ghw_upper_bound(source).upper
        result_upper = ghw_upper_bound(certificate.result).upper
        assert result_upper <= source_upper + 1
