"""Tests for the dilution decision procedure."""

import pytest

from repro.dilutions import find_dilution_sequence, is_dilution_of
from repro.dilutions.search import SearchBudgetExceeded
from repro.hypergraphs import Hypergraph, generators


class TestDilutionSearch:
    def test_every_hypergraph_dilutes_to_itself(self, jigsaw22):
        sequence = find_dilution_sequence(jigsaw22, jigsaw22)
        assert sequence is not None
        assert len(sequence) == 0

    def test_dilutes_to_isomorphic_copy(self, jigsaw22):
        relabelled, _ = jigsaw22.canonical_relabel()
        assert is_dilution_of(relabelled, jigsaw22)

    def test_thickened_22_dilutes_to_jigsaw_22(self):
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        assert sequence is not None
        from repro.hypergraphs.isomorphism import are_isomorphic

        assert are_isomorphic(sequence.apply(source), target)

    def test_hypergraph_dilutes_to_its_reduction(self):
        h = Hypergraph(edges=[{"a", "b"}, {"a", "b", "c"}, {"c", "d", "e"}])
        from repro.hypergraphs import reduce_hypergraph

        assert is_dilution_of(reduce_hypergraph(h), h, max_nodes=50_000)

    def test_larger_hypergraph_is_not_a_dilution(self, jigsaw22, jigsaw33):
        # |V| + |E| strictly decreases, so a bigger hypergraph can never be a
        # dilution of a smaller one.
        assert not is_dilution_of(jigsaw33, jigsaw22)

    def test_higher_degree_target_is_rejected_quickly(self):
        source = generators.hypercycle(4)          # degree 2
        target = generators.star_hypergraph(3)     # degree 3
        assert not is_dilution_of(target, source, max_nodes=20_000)

    def test_path_dilutes_to_shorter_path(self):
        source = generators.hyperpath(4)
        target = generators.hyperpath(2)
        assert is_dilution_of(target, source, max_nodes=50_000)

    def test_budget_exception(self):
        source = generators.thickened_jigsaw(3, 2)
        target = generators.jigsaw(3, 2)
        with pytest.raises(SearchBudgetExceeded):
            find_dilution_sequence(source, target, max_nodes=3)

    def test_found_sequences_are_valid(self):
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        assert sequence.is_applicable_to(source)
        checks = sequence.check_monotonicity(source)
        assert checks["degree_monotone"] and checks["size_monotone"]
