"""Tests for edge-label tracking (Lemma B.1)."""

from repro.dilutions import (
    DeleteSubedge,
    DeleteVertex,
    DilutionSequence,
    MergeOnVertex,
    dilution_edge_labels,
    dilution_to_dual_minor_map,
    find_dilution_sequence,
)
from repro.hypergraphs import Hypergraph, dual_hypergraph, generators
from repro.hypergraphs.graphs import grid_graph
from repro.minors.minor_map import MinorMap


class TestLabelTracking:
    def test_initial_labels_are_singletons(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}])
        result, labels = dilution_edge_labels(h, DilutionSequence())
        assert result == h
        assert all(labels[e] == frozenset({e}) for e in h.edges)

    def test_merge_unions_labels(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"c", "d"}])
        sequence = DilutionSequence([MergeOnVertex("b")])
        result, labels = dilution_edge_labels(h, sequence)
        merged_edge = frozenset({"a", "c"})
        assert labels[merged_edge] == frozenset({frozenset({"a", "b"}), frozenset({"b", "c"})})

    def test_vertex_deletion_collapse_unions_labels(self):
        h = Hypergraph(edges=[{"a", "b"}, {"a", "b", "c"}])
        sequence = DilutionSequence([DeleteVertex("c")])
        result, labels = dilution_edge_labels(h, sequence)
        assert labels[frozenset({"a", "b"})] == frozenset(h.edges)

    def test_subedge_deletion_absorbs_label(self):
        h = Hypergraph(edges=[{"a", "b"}, {"a", "b", "c"}])
        sequence = DilutionSequence([DeleteSubedge({"a", "b"})])
        result, labels = dilution_edge_labels(h, sequence)
        assert labels[frozenset({"a", "b", "c"})] == frozenset(h.edges)

    def test_labels_partition_into_disjoint_sets(self):
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        _, labels = dilution_edge_labels(source, sequence)
        seen = set()
        for label in labels.values():
            assert not (label & seen)
            seen.update(label)

    def test_labels_give_minor_map_into_dual(self):
        # Lemma B.1 on a concrete instance: the labels of a dilution from the
        # thickened jigsaw to the 2x2 jigsaw form a minor map of the 2x2 grid
        # into the dual of the source.
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        result, labels = dilution_edge_labels(source, sequence)
        labels = {edge: branch for edge, branch in labels.items() if branch}
        dual = dual_hypergraph(source)
        # The result is (isomorphic to) the jigsaw = dual of the grid, so its
        # edges play the role of grid vertices.
        pattern_edges = []
        result_edges = list(labels)
        for i, e in enumerate(result_edges):
            for f in result_edges[i + 1:]:
                if e & f:
                    pattern_edges.append({("edge", tuple(sorted(map(repr, e)))),
                                          ("edge", tuple(sorted(map(repr, f))))})
        pattern = Hypergraph(
            vertices=[("edge", tuple(sorted(map(repr, e)))) for e in result_edges],
            edges=pattern_edges,
        )
        mapping = {
            ("edge", tuple(sorted(map(repr, e)))): labels[e] for e in result_edges
        }
        minor = MinorMap(pattern, dual, mapping)
        assert minor.is_valid()

    def test_dilution_to_dual_minor_map_wrapper(self):
        source = generators.thickened_jigsaw(2, 2)
        target = generators.jigsaw(2, 2)
        sequence = find_dilution_sequence(source, target, max_nodes=100_000)
        labels = dilution_to_dual_minor_map(source, sequence)
        assert labels
        assert all(branch <= source.edges for branch in labels.values() if branch)
