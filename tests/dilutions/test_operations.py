"""Tests for the three dilution operations of Definition 3.1."""

import pytest

from repro.dilutions import DeleteSubedge, DeleteVertex, MergeOnVertex
from repro.hypergraphs import Hypergraph


@pytest.fixture
def sample():
    return Hypergraph(edges=[{"a", "b", "c"}, {"c", "d"}, {"d", "e"}, {"a", "b"}])


class TestDeleteVertex:
    def test_apply(self, sample):
        result = DeleteVertex("c").apply(sample)
        assert "c" not in result.vertices
        assert frozenset({"a", "b"}) in result.edges
        assert frozenset({"d"}) in result.edges

    def test_applicability(self, sample):
        assert DeleteVertex("a").is_applicable(sample)
        assert not DeleteVertex("zzz").is_applicable(sample)

    def test_apply_inapplicable_raises(self, sample):
        with pytest.raises(ValueError):
            DeleteVertex("zzz").apply(sample)

    def test_deletion_keeps_empty_edges(self):
        h = Hypergraph(edges=[{"x"}, {"x", "y"}])
        result = DeleteVertex("x").apply(h)
        assert result.has_empty_edge()

    def test_never_increases_degree(self, sample):
        result = DeleteVertex("c").apply(sample)
        assert result.degree() <= sample.degree()


class TestDeleteSubedge:
    def test_apply_removes_subedge(self, sample):
        result = DeleteSubedge({"a", "b"}).apply(sample)
        assert frozenset({"a", "b"}) not in result.edges
        assert result.num_edges == sample.num_edges - 1

    def test_only_proper_subedges_allowed(self, sample):
        assert DeleteSubedge({"a", "b"}).is_applicable(sample)
        assert not DeleteSubedge({"d", "e"}).is_applicable(sample)

    def test_missing_edge_not_applicable(self, sample):
        assert not DeleteSubedge({"x", "y"}).is_applicable(sample)

    def test_empty_edge_is_subedge_of_everything(self):
        h = Hypergraph(edges=[set(), {"a"}])
        assert DeleteSubedge(set()).is_applicable(h)
        assert not DeleteSubedge(set()).apply(h).has_empty_edge()

    def test_apply_inapplicable_raises(self, sample):
        with pytest.raises(ValueError):
            DeleteSubedge({"d", "e"}).apply(sample)

    def test_vertices_are_kept(self, sample):
        result = DeleteSubedge({"a", "b"}).apply(sample)
        assert "a" in result.vertices and "b" in result.vertices


class TestMergeOnVertex:
    def test_merge_replaces_incident_edges(self, sample):
        result = MergeOnVertex("c").apply(sample)
        assert frozenset({"a", "b", "d"}) in result.edges
        assert frozenset({"a", "b", "c"}) not in result.edges
        assert "c" not in result.vertices

    def test_merge_keeps_other_edges(self, sample):
        result = MergeOnVertex("c").apply(sample)
        assert frozenset({"d", "e"}) in result.edges
        assert frozenset({"a", "b"}) in result.edges

    def test_merge_on_figure1_creates_rank4_edge(self, figure1_hypergraph):
        # Figure 1: merging on y creates an edge with 4 vertices, exceeding
        # the rank of the original hypergraph, while the degree stays put.
        result = MergeOnVertex("y").apply(figure1_hypergraph)
        assert frozenset({"x", "c", "d", "e"}) in result.edges
        assert result.rank() == 4 > figure1_hypergraph.rank()
        assert result.degree() <= figure1_hypergraph.degree()

    def test_merge_never_increases_degree(self, sample):
        result = MergeOnVertex("d").apply(sample)
        assert result.degree() <= sample.degree()

    def test_merge_inapplicable_raises(self, sample):
        with pytest.raises(ValueError):
            MergeOnVertex("zzz").apply(sample)

    def test_merge_reduces_size_for_degree_ge_one(self, sample):
        result = MergeOnVertex("c").apply(sample)
        assert result.size < sample.size
