"""Smoke test: every script in examples/ must import and run end-to-end.

API refactors have silently broken the examples before; this module executes
each script exactly as ``python examples/<name>.py`` would (they are
small-input demos, about a second each) and asserts it printed something.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert SCRIPTS, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda path: path.name)
def test_example_script_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"
