"""Tests for treewidth bounds and exact computation."""

import pytest

from repro.hypergraphs import Hypergraph
from repro.hypergraphs.graphs import complete_graph, cycle_graph, grid_graph, path_graph
from repro.widths import (
    tree_decomposition_from_elimination_order,
    treewidth,
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
)


class TestKnownValues:
    def test_path_has_treewidth_one(self):
        result = treewidth(path_graph(6))
        assert result.exact and result.value == 1

    def test_cycle_has_treewidth_two(self):
        result = treewidth(cycle_graph(6))
        assert result.exact and result.value == 2

    def test_clique_has_treewidth_n_minus_one(self):
        result = treewidth(complete_graph(5))
        assert result.exact and result.value == 4

    def test_tree_has_treewidth_one(self):
        star = Hypergraph(edges=[{0, i} for i in range(1, 6)])
        result = treewidth(star)
        assert result.exact and result.value == 1

    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 3)])
    def test_square_grid_treewidth(self, n, expected):
        result = treewidth(grid_graph(n, n))
        assert result.exact and result.value == expected

    def test_rectangular_grid(self):
        result = treewidth(grid_graph(2, 5))
        assert result.exact and result.value == 2

    def test_empty_graph(self):
        result = treewidth(Hypergraph())
        assert result.upper == 0

    def test_hypergraph_treewidth_is_primal_treewidth(self):
        triangle_edge = Hypergraph(edges=[{"a", "b", "c"}])
        result = treewidth(triangle_edge)
        assert result.exact and result.value == 2


class TestBounds:
    def test_lower_bound_never_exceeds_upper(self):
        for n in (4, 6, 8):
            g = grid_graph(2, n)
            assert treewidth_lower_bound(g) <= treewidth_upper_bound(g).upper

    def test_degeneracy_of_grid(self):
        assert treewidth_lower_bound(grid_graph(4, 4)) == 2

    def test_upper_bound_decomposition_is_valid(self):
        g = grid_graph(3, 4)
        result = treewidth_upper_bound(g)
        assert result.decomposition.is_valid_for(g)

    def test_heuristic_on_larger_graph(self):
        g = grid_graph(4, 5)  # 20 vertices: heuristic path
        result = treewidth(g)
        assert result.lower <= 4 <= result.upper
        assert result.decomposition.is_valid_for(g)

    def test_exact_raises_above_limit(self):
        with pytest.raises(ValueError):
            treewidth_exact(grid_graph(5, 5), max_vertices=10)

    def test_value_raises_when_not_exact(self):
        result = treewidth(grid_graph(4, 5))
        if not result.exact:
            with pytest.raises(ValueError):
                _ = result.value


class TestEliminationOrderDecomposition:
    def test_decomposition_from_arbitrary_order_is_valid(self):
        g = cycle_graph(6)
        order = sorted(g.vertices)
        decomposition = tree_decomposition_from_elimination_order(g, order)
        assert decomposition.is_valid_for(g)

    def test_disconnected_graph_decomposition(self):
        g = Hypergraph(edges=[{0, 1}, {2, 3}])
        result = treewidth(g)
        assert result.decomposition.is_valid_for(g)
        assert result.value == 1
