"""Tests for generalised hypertree width bounds and GHD constructions."""

import pytest

from repro.hypergraphs import Hypergraph, generators
from repro.widths import (
    GeneralizedHypertreeDecomposition,
    ghd_from_tree_decomposition,
    ghd_via_dual_treewidth,
    ghw,
    ghw_lower_bound,
    ghw_upper_bound,
    join_tree_decomposition,
    treewidth,
)
from repro.widths.ghd import trivial_ghd
from repro.widths.tree_decomposition import TreeDecomposition


class TestGHDValidation:
    def test_trivial_ghd_is_valid(self, jigsaw22):
        assert trivial_ghd(jigsaw22).is_valid_for(jigsaw22)

    def test_width_counts_cover_edges(self, jigsaw22):
        ghd = trivial_ghd(jigsaw22)
        assert ghd.width() == jigsaw22.num_edges

    def test_missing_cover_raises(self):
        decomposition = TreeDecomposition({0: {"a", "b"}}, [])
        with pytest.raises(ValueError):
            GeneralizedHypertreeDecomposition(decomposition, {})

    def test_invalid_when_bag_not_covered(self):
        h = Hypergraph(edges=[{"a", "b"}, {"b", "c"}])
        decomposition = TreeDecomposition({0: {"a", "b", "c"}}, [])
        ghd = GeneralizedHypertreeDecomposition(decomposition, {0: [frozenset({"a", "b"})]})
        assert not ghd.is_valid_for(h)

    def test_invalid_when_cover_uses_foreign_edge(self):
        h = Hypergraph(edges=[{"a", "b"}])
        decomposition = TreeDecomposition({0: {"a", "b"}}, [])
        ghd = GeneralizedHypertreeDecomposition(decomposition, {0: [frozenset({"a", "b", "c"})]})
        assert not ghd.is_valid_for(h)


class TestGHWKnownValues:
    def test_acyclic_hypergraph_has_ghw_one(self, small_acyclic):
        result = ghw(small_acyclic)
        assert result.exact and result.value == 1

    def test_cycle_has_ghw_two(self):
        h = generators.hypercycle(6)
        result = ghw(h)
        assert result.exact and result.value == 2

    def test_triangle_has_ghw_two(self, triangle):
        result = ghw(triangle)
        assert result.exact and result.value == 2

    @pytest.mark.parametrize("n", [2, 3])
    def test_jigsaw_lower_bound_matches_dimension(self, n):
        result = ghw(generators.jigsaw(n, n), separator_budget=n)
        assert result.lower >= n
        assert result.upper <= n + 1

    def test_jigsaw_upper_via_lemma46(self, jigsaw33):
        ghd = ghd_via_dual_treewidth(jigsaw33)
        assert ghd.is_valid_for(jigsaw33)
        assert ghd.width() <= treewidth(generators.jigsaw(3, 3)).upper + 1

    def test_empty_hypergraph(self):
        result = ghw(Hypergraph())
        assert result.upper == 0

    def test_thickened_jigsaw_bounds(self):
        h = generators.thickened_jigsaw(3, 3)
        result = ghw(h, separator_budget=2)
        assert result.lower >= 2
        assert result.upper >= result.lower


class TestGHWCertificates:
    def test_upper_bound_comes_with_valid_ghd(self, jigsaw33):
        result = ghw_upper_bound(jigsaw33)
        assert result.decomposition is not None
        assert result.decomposition.is_valid_for(jigsaw33)
        assert result.decomposition.width() == result.upper

    def test_upper_bound_for_acyclic_is_join_tree(self, small_acyclic):
        result = ghw_upper_bound(small_acyclic)
        assert result.upper == 1
        assert result.decomposition.width() == 1

    def test_ghd_from_tree_decomposition_valid(self, triangle):
        td = treewidth(triangle).decomposition
        ghd = ghd_from_tree_decomposition(triangle, td)
        assert ghd.is_valid_for(triangle)

    def test_lower_bound_monotone_in_budget(self, jigsaw33):
        weak = ghw_lower_bound(jigsaw33, separator_budget=1)
        strong = ghw_lower_bound(jigsaw33, separator_budget=2)
        assert strong >= weak

    def test_lower_never_exceeds_upper(self):
        for seed in range(3):
            h = generators.random_degree2_hypergraph(9, 0.4, seed=seed)
            if not h.edges:
                continue
            result = ghw(h, separator_budget=2)
            assert result.lower <= result.upper

    def test_join_tree_decomposition_none_for_cyclic(self, triangle):
        assert join_tree_decomposition(triangle) is None

    def test_join_tree_decomposition_width_one(self, small_acyclic):
        ghd = join_tree_decomposition(small_acyclic)
        assert ghd is not None
        assert ghd.width() == 1
        assert ghd.is_valid_for(small_acyclic)

    def test_value_raises_when_inexact(self):
        result = ghw(generators.jigsaw(4, 4), separator_budget=2)
        if not result.exact:
            with pytest.raises(ValueError):
                _ = result.value
