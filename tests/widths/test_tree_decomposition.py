"""Tests for tree decompositions and f-widths."""

import pytest

from repro.hypergraphs import Hypergraph
from repro.widths import TreeDecomposition
from repro.widths.tree_decomposition import single_bag_decomposition


@pytest.fixture
def path_hypergraph():
    return Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"c", "d"}])


@pytest.fixture
def path_decomposition():
    return TreeDecomposition(
        {0: {"a", "b"}, 1: {"b", "c"}, 2: {"c", "d"}},
        [(0, 1), (1, 2)],
    )


class TestValidity:
    def test_valid_path_decomposition(self, path_hypergraph, path_decomposition):
        assert path_decomposition.is_valid_for(path_hypergraph)

    def test_missing_edge_coverage(self, path_hypergraph):
        decomposition = TreeDecomposition({0: {"a", "b"}, 1: {"c", "d"}}, [(0, 1)])
        assert not decomposition.covers_edges(path_hypergraph)
        assert not decomposition.is_valid_for(path_hypergraph)

    def test_broken_connectivity(self, path_hypergraph):
        decomposition = TreeDecomposition(
            {0: {"a", "b"}, 1: {"b", "c"}, 2: {"c", "d"}, 3: {"b"}},
            [(0, 1), (1, 2), (2, 3)],
        )
        # 'b' occurs in bags 0, 1 and 3 but not in 2: not connected.
        assert not decomposition.has_connected_occurrences(path_hypergraph)

    def test_not_a_tree_cycle(self):
        decomposition = TreeDecomposition(
            {0: {"a"}, 1: {"a"}, 2: {"a"}},
            [(0, 1), (1, 2), (2, 0)],
        )
        assert not decomposition.is_tree()

    def test_not_a_tree_disconnected(self):
        decomposition = TreeDecomposition({0: {"a"}, 1: {"b"}}, [])
        assert not decomposition.is_tree()

    def test_unknown_tree_edge_node(self):
        with pytest.raises(ValueError):
            TreeDecomposition({0: {"a"}}, [(0, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            TreeDecomposition({0: {"a"}}, [(0, 0)])

    def test_bag_outside_vertices(self, path_hypergraph):
        decomposition = TreeDecomposition({0: {"a", "b", "zzz"}}, [])
        assert not decomposition.is_valid_for(path_hypergraph)


class TestWidths:
    def test_width_of_path_decomposition(self, path_decomposition):
        assert path_decomposition.width() == 1

    def test_f_width_custom_function(self, path_decomposition):
        assert path_decomposition.f_width(len) == 2

    def test_single_bag_decomposition(self, path_hypergraph):
        decomposition = single_bag_decomposition(path_hypergraph)
        assert decomposition.is_valid_for(path_hypergraph)
        assert decomposition.width() == path_hypergraph.num_vertices - 1

    def test_empty_decomposition_width(self):
        assert TreeDecomposition({}, []).width() == 0

    def test_all_vertices(self, path_decomposition):
        assert path_decomposition.all_vertices() == frozenset({"a", "b", "c", "d"})

    def test_neighbours(self, path_decomposition):
        assert path_decomposition.neighbours(1) == [0, 2]
