"""Tests for integral and fractional edge covers."""

import pytest

from repro.hypergraphs import Hypergraph, generators
from repro.widths import (
    fractional_edge_cover_number,
    greedy_edge_cover,
    integral_edge_cover,
    integral_edge_cover_number,
)
from repro.widths.edge_cover import UncoverableError


@pytest.fixture
def cycle5_hypergraph(cycle5):
    return Hypergraph(cycle5.vertices, cycle5.edges)


class TestIntegralCover:
    def test_cover_of_empty_set(self, cycle5_hypergraph):
        assert integral_edge_cover(cycle5_hypergraph, []) == []

    def test_cycle_cover_number(self, cycle5_hypergraph):
        # Covering all 5 vertices of C5 with edges needs 3 edges.
        assert integral_edge_cover_number(cycle5_hypergraph, cycle5_hypergraph.vertices) == 3

    def test_single_big_edge_cover(self):
        h = Hypergraph(edges=[{"a", "b", "c", "d"}, {"a", "b"}, {"c", "d"}])
        assert integral_edge_cover_number(h, {"a", "b", "c", "d"}) == 1

    def test_cover_is_actually_a_cover(self, jigsaw33):
        target = set(list(jigsaw33.vertices)[:7])
        cover = integral_edge_cover(jigsaw33, target)
        covered = set()
        for edge in cover:
            covered.update(edge)
        assert target <= covered

    def test_cover_edges_come_from_hypergraph(self, jigsaw33):
        cover = integral_edge_cover(jigsaw33, jigsaw33.vertices)
        assert all(edge in jigsaw33.edges for edge in cover)

    def test_greedy_cover_at_least_optimal(self, cycle5_hypergraph):
        greedy = greedy_edge_cover(cycle5_hypergraph, cycle5_hypergraph.vertices)
        optimal = integral_edge_cover(cycle5_hypergraph, cycle5_hypergraph.vertices)
        assert len(greedy) >= len(optimal)

    def test_uncoverable_vertex_raises(self):
        h = Hypergraph(vertices=["lonely"], edges=[{"a", "b"}])
        with pytest.raises(UncoverableError):
            integral_edge_cover(h, {"lonely"})

    def test_unknown_vertex_raises(self):
        h = Hypergraph(edges=[{"a", "b"}])
        with pytest.raises(KeyError):
            integral_edge_cover(h, {"zzz"})


class TestFractionalCover:
    def test_fractional_at_most_integral(self, cycle5_hypergraph):
        vertices = cycle5_hypergraph.vertices
        fractional = fractional_edge_cover_number(cycle5_hypergraph, vertices)
        integral = integral_edge_cover_number(cycle5_hypergraph, vertices)
        assert fractional <= integral + 1e-9

    def test_odd_cycle_fractional_cover(self, cycle5_hypergraph):
        value = fractional_edge_cover_number(cycle5_hypergraph, cycle5_hypergraph.vertices)
        assert value == pytest.approx(2.5, abs=1e-6)

    def test_triangle_fractional_cover(self, triangle):
        value = fractional_edge_cover_number(triangle, triangle.vertices)
        assert value == pytest.approx(1.5, abs=1e-6)

    def test_empty_target(self, triangle):
        assert fractional_edge_cover_number(triangle, []) == 0.0

    def test_jigsaw_fractional_cover_bounded_by_edges(self, jigsaw22):
        value = fractional_edge_cover_number(jigsaw22, jigsaw22.vertices)
        assert 1.0 <= value <= jigsaw22.num_edges
