"""Tests for balanced edge separators (the jigsaw ghw lower bound)."""

import pytest

from repro.hypergraphs import Hypergraph, generators
from repro.widths.separators import (
    balanced_edge_separator,
    component_edge_weight,
    is_balanced_separator,
    minimum_balanced_separator_size,
    separator_components,
    separator_ghw_lower_bound,
)


class TestSeparatorMachinery:
    def test_components_after_removal(self):
        h = generators.hyperpath(4)
        middle = sorted(h.edges, key=lambda e: sorted(map(repr, e)))[1]
        components = separator_components(h, [middle])
        assert len(components) >= 2

    def test_component_edge_weight(self):
        h = generators.hyperpath(3)
        component = frozenset({("c", 0)})
        assert component_edge_weight(h, component) == 1

    def test_empty_separator_balanced_for_disconnected(self):
        h = generators.disjoint_union([generators.hyperpath(2), generators.hyperpath(2)])
        assert is_balanced_separator(h, [])

    def test_path_needs_one_edge(self):
        h = generators.hyperpath(5)
        assert minimum_balanced_separator_size(h) == 1

    def test_jigsaw_33_needs_three_edges(self, jigsaw33):
        size = minimum_balanced_separator_size(jigsaw33, max_edges=3)
        assert size == 3

    def test_jigsaw_22_needs_two_edges(self, jigsaw22):
        assert minimum_balanced_separator_size(jigsaw22, max_edges=2) == 2

    def test_budget_exhausted_returns_none(self, jigsaw33):
        assert minimum_balanced_separator_size(jigsaw33, max_edges=2) is None

    def test_lower_bound_from_budget_exhaustion(self, jigsaw33):
        assert separator_ghw_lower_bound(jigsaw33, max_edges=2) == 3

    def test_separator_witness_is_balanced(self, jigsaw33):
        separator = balanced_edge_separator(jigsaw33, max_edges=3)
        assert separator is not None
        assert is_balanced_separator(jigsaw33, separator)
        assert all(edge in jigsaw33.edges for edge in separator)

    def test_lower_bound_at_least_one_for_nonempty(self):
        h = Hypergraph(edges=[{"a", "b"}])
        assert separator_ghw_lower_bound(h, max_edges=1) >= 1
