"""Tests for fractional hypertree width bounds."""

import pytest

from repro.hypergraphs import generators
from repro.widths.fhw import fhw_ghw_gap, fhw_of_decomposition, fhw_upper_bound
from repro.widths.ghw import ghw_upper_bound


class TestFHW:
    def test_acyclic_fhw_is_one(self, small_acyclic):
        result = fhw_upper_bound(small_acyclic)
        assert result.upper == pytest.approx(1.0)

    def test_fhw_never_exceeds_ghw_on_same_decomposition(self, jigsaw33):
        fractional, integral = fhw_ghw_gap(jigsaw33)
        assert fractional <= integral + 1e-9

    def test_fhw_of_explicit_decomposition(self, triangle):
        ghd = ghw_upper_bound(triangle).decomposition
        value = fhw_of_decomposition(triangle, ghd.decomposition)
        assert 1.0 <= value <= 2.0

    def test_fhw_lower_bound_is_one(self, jigsaw22):
        result = fhw_upper_bound(jigsaw22)
        assert result.lower == pytest.approx(1.0)
        assert result.upper >= result.lower

    def test_empty_hypergraph(self):
        from repro.hypergraphs import Hypergraph

        assert fhw_upper_bound(Hypergraph()).upper == 0.0

    def test_bounded_degree_gap_is_small_for_cycles(self):
        h = generators.hypercycle(7)
        fractional, integral = fhw_ghw_gap(h)
        assert integral - fractional <= 1.0
