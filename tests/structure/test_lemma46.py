"""Tests for the constructive Lemma 4.6 (ghw(H) <= tw(H^d) + 1)."""

import pytest

from repro.hypergraphs import Hypergraph, dual_hypergraph, generators, reduce_hypergraph
from repro.structure import ghd_from_dual_tree_decomposition, lemma46_bound
from repro.widths import TreeDecomposition, treewidth


class TestLemma46:
    @pytest.mark.parametrize(
        "hypergraph_factory",
        [
            lambda: generators.jigsaw(2, 2),
            lambda: generators.jigsaw(3, 3),
            lambda: generators.hypercycle(6),
            lambda: generators.thickened_jigsaw(2, 3),
            lambda: generators.random_degree2_hypergraph(10, 0.4, seed=3),
        ],
    )
    def test_inequality_holds(self, hypergraph_factory):
        hypergraph = hypergraph_factory()
        outcome = lemma46_bound(hypergraph)
        assert outcome["ghd_valid"]
        assert outcome["inequality_holds"]

    def test_explicit_dual_decomposition(self, jigsaw33):
        dual = dual_hypergraph(jigsaw33)
        dual_td = treewidth(dual).decomposition
        ghd = ghd_from_dual_tree_decomposition(jigsaw33, dual_td)
        assert ghd.is_valid_for(jigsaw33)
        assert ghd.width() <= dual_td.width() + 1

    def test_invalid_dual_decomposition_rejected(self, jigsaw22):
        bogus = TreeDecomposition({0: set()}, [])
        with pytest.raises(ValueError):
            ghd_from_dual_tree_decomposition(jigsaw22, bogus)

    def test_empty_hypergraph(self):
        outcome = lemma46_bound(Hypergraph())
        assert outcome["inequality_holds"]

    def test_reduction_applied_first(self):
        h = Hypergraph(vertices=["isolated"], edges=[{"a", "b"}, {"b", "c"}])
        outcome = lemma46_bound(h)
        assert outcome["ghd_valid"]
        assert outcome["inequality_holds"]
