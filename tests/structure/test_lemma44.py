"""Tests for the constructive Lemma 4.4."""

import pytest

from repro.hypergraphs import dual_hypergraph, generators
from repro.hypergraphs.graphs import cycle_graph, grid_graph
from repro.hypergraphs.isomorphism import are_isomorphic
from repro.minors.grid_minor import find_grid_minor
from repro.minors.minor_map import MinorMap
from repro.structure import dilution_from_dual_minor
from repro.structure.lemma44 import pattern_dual


class TestLemma44:
    def test_thickened_jigsaw_to_jigsaw(self):
        hypergraph = generators.thickened_jigsaw(2, 2)
        dual = dual_hypergraph(hypergraph)
        pattern = grid_graph(2, 2)
        minor = find_grid_minor(dual, 2, 2)
        result = dilution_from_dual_minor(hypergraph, pattern, minor)
        assert are_isomorphic(result.result, generators.jigsaw(2, 2))
        assert result.sequence.apply(hypergraph) == result.result

    def test_planted_minor_route(self):
        hypergraph, minor = __import__(
            "repro.jigsaws", fromlist=["planted_thickened_jigsaw_minor"]
        ).planted_thickened_jigsaw_minor(3, 3)
        pattern = grid_graph(3, 3)
        result = dilution_from_dual_minor(hypergraph, pattern, minor)
        assert are_isomorphic(result.result, generators.jigsaw(3, 3))

    def test_cycle_pattern(self):
        # The dual of a hyper-cycle is (essentially) a cycle graph; the cycle
        # pattern maps into it with singleton branch sets.
        hypergraph = generators.hypercycle(5)
        dual = dual_hypergraph(hypergraph)
        pattern = cycle_graph(5)
        # Build an explicit minor map: edges of the hypercycle as branch sets.
        edges = sorted(hypergraph.edges, key=lambda e: sorted(map(repr, e)))
        ordered = [edges[0]]
        while len(ordered) < len(edges):
            last = ordered[-1]
            nxt = next(
                e for e in edges if e not in ordered and (e & last)
            )
            ordered.append(nxt)
        mapping = {i: {ordered[i]} for i in range(5)}
        minor = MinorMap(pattern, dual, mapping)
        assert minor.is_valid()
        result = dilution_from_dual_minor(hypergraph, pattern, minor)
        assert are_isomorphic(result.result, pattern_dual(pattern))

    def test_degree_bound_enforced(self):
        with pytest.raises(ValueError):
            dilution_from_dual_minor(
                generators.star_hypergraph(3),
                grid_graph(2, 2),
                MinorMap(grid_graph(2, 2), generators.star_hypergraph(3), {}),
            )

    def test_result_edges_match_connector_sets(self):
        hypergraph = generators.thickened_jigsaw(2, 2)
        dual = dual_hypergraph(hypergraph)
        pattern = grid_graph(2, 2)
        minor = find_grid_minor(dual, 2, 2)
        result = dilution_from_dual_minor(hypergraph, pattern, minor)
        for vertex, expected_edge in result.edge_of_pattern_vertex.items():
            assert expected_edge in result.result.edges

    def test_sequence_is_valid_dilution(self):
        hypergraph = generators.thickened_jigsaw(2, 3)
        dual = dual_hypergraph(hypergraph)
        pattern = grid_graph(2, 3)
        minor = find_grid_minor(dual, 2, 3)
        result = dilution_from_dual_minor(hypergraph, pattern, minor)
        assert result.sequence.is_applicable_to(hypergraph)
        checks = result.sequence.check_monotonicity(hypergraph)
        assert checks["degree_monotone"] and checks["size_monotone"]
