"""Property tests for counting consistency across all engine strategies.

On every generated scenario, and for every strategy the planner will accept
for it, the three query tasks must cohere:

* ``count(q, D) == len(answer(q, D))`` (distinct-projection semantics), and
* ``is_satisfiable(q, D) == (count(q, D) > 0)``.

These are the invariants that tie the counting DP (Prop. 4.14), the
enumeration path, and the Boolean path together — a bug in any one of them
breaks the equation on some regime.  A hypothesis-driven variant draws fresh
seeds so the invariant is exercised beyond the pinned scenario list.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cq import workloads
from repro.engine import EngineSession, STRATEGY_TRIVIAL, registered_strategies

SCENARIOS = workloads.generate_workload(seed=0, size="small")


@pytest.fixture(scope="module")
def session():
    return EngineSession()


def _consistent_on(session, query, database, plan=None):
    rows = session.answer(query, database, plan=plan).rows
    count = session.count(query, database, plan=plan).count
    satisfiable = session.is_satisfiable(query, database, plan=plan).satisfiable
    assert count == len(rows)
    assert satisfiable == (count > 0)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=[s.name for s in SCENARIOS])
def test_counting_consistency_across_strategies(session, scenario):
    query, database = scenario.query, scenario.database
    _consistent_on(session, query, database)
    for strategy in registered_strategies():
        if strategy == STRATEGY_TRIVIAL and query.atoms:
            continue
        try:
            plan = session.plan(query, force_strategy=strategy)
        except ValueError:
            continue
        _consistent_on(session, query, database, plan=plan)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_counting_consistency_on_fresh_seeds(seed):
    session = EngineSession()
    # One scenario per regime keeps each hypothesis example fast while still
    # touching every dispatch route.
    for regime in workloads.ALL_REGIMES:
        scenario = workloads.generate_workload(seed=seed, regimes=[regime])[0]
        _consistent_on(session, scenario.query, scenario.database)
