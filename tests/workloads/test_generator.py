"""The scenario workload generator: determinism, regime labelling matching
actual planner dispatch, database-flavour guarantees, and batch assembly."""

import pytest

from repro.cq import workloads
from repro.cq.homomorphism import naive_boolean_answer
from repro.engine import (
    EngineSession,
    STRATEGY_BACKTRACKING,
    STRATEGY_GHD,
    STRATEGY_YANNAKAKIS,
)


@pytest.fixture(scope="module")
def suite():
    return workloads.generate_workload(seed=0, size="small")


@pytest.fixture(scope="module")
def session():
    return EngineSession()


class TestDeterminism:
    def test_same_seed_reproduces_everything(self, suite):
        again = workloads.generate_workload(seed=0, size="small")
        assert [s.name for s in suite] == [s.name for s in again]
        for first, second in zip(suite, again):
            assert first.query == second.query
            assert first.query.free_variables == second.query.free_variables
            assert first.database == second.database

    def test_different_seeds_differ(self, suite):
        other = workloads.generate_workload(seed=1, size="small")
        assert any(
            first.database != second.database for first, second in zip(suite, other)
        )

    def test_regime_streams_are_independent(self):
        # Asking for one regime reproduces exactly the scenarios that regime
        # gets inside the full suite: selecting a subset never reshuffles.
        full = workloads.generate_workload(seed=3)
        only_hard = workloads.generate_workload(seed=3, regimes=[workloads.REGIME_HARD])
        from_full = [s for s in full if s.regime == workloads.REGIME_HARD]
        assert [s.name for s in only_hard] == [s.name for s in from_full]
        for first, second in zip(only_hard, from_full):
            assert first.database == second.database

    def test_unknown_inputs_rejected(self):
        with pytest.raises(ValueError, match="regime"):
            workloads.generate_workload(regimes=["no-such-regime"])
        with pytest.raises(ValueError, match="size"):
            workloads.generate_workload(size="enormous")


class TestRegimesMatchDispatch:
    """The regime label is a *claim* about planner dispatch — verify it."""

    def test_acyclic_scenarios_plan_yannakakis(self, suite, session):
        for scenario in suite:
            if scenario.regime == workloads.REGIME_ACYCLIC:
                assert session.plan(scenario.query).strategy == STRATEGY_YANNAKAKIS

    def test_bounded_ghw_scenarios_plan_ghd(self, suite, session):
        for scenario in suite:
            if scenario.regime == workloads.REGIME_BOUNDED_GHW:
                plan = session.plan(scenario.query)
                assert plan.strategy == STRATEGY_GHD
                assert plan.width is not None and plan.width <= 3

    def test_core_reducible_scenarios_improve_under_use_core(self, suite, session):
        for scenario in suite:
            if scenario.regime == workloads.REGIME_CORE_REDUCIBLE:
                semantic = session.plan(scenario.query, use_core=True)
                assert semantic.strategy == STRATEGY_YANNAKAKIS
                assert len(semantic.query.atoms) < len(scenario.query.atoms)

    def test_hard_regime_contains_backtracking_fallbacks(self, suite, session):
        hard = [s for s in suite if s.regime == workloads.REGIME_HARD]
        assert hard
        strategies = {session.plan(s.query).strategy for s in hard}
        assert STRATEGY_BACKTRACKING in strategies


class TestDatabaseFlavours:
    def test_planted_databases_are_satisfiable(self, suite):
        planted = [s for s in suite if s.name.split("/")[2] == "planted"]
        assert planted
        for scenario in planted:
            assert naive_boolean_answer(scenario.query, scenario.database), scenario.name

    def test_unsat_databases_are_unsatisfiable(self, suite):
        unsat = [s for s in suite if s.name.split("/")[2] == "unsat"]
        assert unsat
        for scenario in unsat:
            assert not naive_boolean_answer(scenario.query, scenario.database), scenario.name

    def test_scenario_schema_is_complete(self, suite):
        for scenario in suite:
            for atom in scenario.query.atoms:
                assert scenario.database.has_relation(atom.relation), scenario.name


class TestMixedBatch:
    def test_batch_shape_and_namespacing(self):
        queries, database = workloads.mixed_batch(seed=5, copies=3, distinct=10)
        assert len(queries) == 30
        # Namespaced relations: every query resolves in the one database.
        for query in queries:
            for atom in query.atoms:
                assert database.has_relation(atom.relation)

    def test_batch_contains_isomorphic_but_unequal_repeats(self):
        # copies=3 yields both exact repeats (copies 0 and 2 are equal) and
        # variable-renamed repeats (copy 1), so the set is strictly smaller
        # than the list but bigger than one query per scenario.
        queries, _ = workloads.mixed_batch(seed=5, copies=3, distinct=6)
        distinct = set(queries)
        assert len(distinct) < len(queries)
        assert len(distinct) > 6

    def test_batch_is_deterministic(self):
        first_queries, first_db = workloads.mixed_batch(seed=9, copies=2, distinct=8)
        second_queries, second_db = workloads.mixed_batch(seed=9, copies=2, distinct=8)
        assert first_queries == second_queries
        assert first_db == second_db

    def test_copies_validated(self):
        with pytest.raises(ValueError, match="copies"):
            workloads.mixed_batch(copies=0)
