"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cq import generators as cq_generators
from repro.hypergraphs import Hypergraph, generators
from repro.hypergraphs.graphs import cycle_graph, grid_graph, path_graph


@pytest.fixture
def triangle() -> Hypergraph:
    """The triangle graph as a hypergraph (smallest non-acyclic example)."""
    return Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"a", "c"}])


@pytest.fixture
def figure1_hypergraph() -> Hypergraph:
    return generators.figure1_hypergraph()


@pytest.fixture
def small_acyclic() -> Hypergraph:
    """A small alpha-acyclic hypergraph with rank 3."""
    return Hypergraph(edges=[{"a", "b", "c"}, {"c", "d"}, {"d", "e", "f"}, {"f", "g"}])


@pytest.fixture
def jigsaw22() -> Hypergraph:
    return generators.jigsaw(2, 2)


@pytest.fixture
def jigsaw33() -> Hypergraph:
    return generators.jigsaw(3, 3)


@pytest.fixture
def thickened32() -> Hypergraph:
    return generators.thickened_jigsaw(3, 2)


@pytest.fixture
def grid33():
    return grid_graph(3, 3)


@pytest.fixture
def cycle5():
    return cycle_graph(5)


@pytest.fixture
def path4():
    return path_graph(4)


@pytest.fixture
def cycle_query4():
    return cq_generators.cycle_query(4)


@pytest.fixture
def cycle_db4(cycle_query4):
    return cq_generators.grid_constraint_database(cycle_query4, colours=3)
