"""The service write path: ``POST /facts`` appends and standing queries.

Drives a real server over HTTP: appends must propagate through the
versioned storage layer into every later read, and subscription polls must
return exactly the answers derived since the previous poll — computed
incrementally, tenant-isolated, and equal to a from-scratch evaluation.
"""

import pytest

from repro.cq.database import Database
from repro.cq.query import Atom, ConjunctiveQuery
from repro.engine import EngineSession
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve_in_thread,
)


def _path_query():
    return ConjunctiveQuery([Atom("E", ("x", "y")), Atom("E", ("y", "z"))])


def _graph(edges):
    database = Database()
    for a, b in edges:
        database.add_fact("E", (a, b))
    return database


@pytest.fixture()
def server():
    service = QueryService(ServiceConfig(max_concurrent=4))
    service.register_dataset("graph", _graph((i, i + 1) for i in range(10)))
    service.register_dataset(
        "acme-graph", _graph([(1, 2), (2, 3)]), tenant="acme"
    )
    with serve_in_thread(service) as handle:
        yield handle


def _client(server):
    return ServiceClient(server.host, server.port)


def _rows(rows):
    return sorted((list(r) for r in rows), key=repr)


class TestFactsEndpoint:
    def test_append_is_visible_to_answer(self, server):
        query = _path_query()
        with _client(server) as client:
            before = client.answer(query, dataset="graph")["rows"]
            receipt = client.add_facts("graph", {"E": [[100, 101], [101, 102]]})
            assert receipt["added"] == 2
            assert receipt["appended"] == {"E": 2}
            after = client.answer(query, dataset="graph")["rows"]
            assert len(after) == len(before) + 1
            assert [100, 101, 102] in after

    def test_duplicate_rows_are_no_ops(self, server):
        with _client(server) as client:
            v = client.add_facts("graph", {"E": [[0, 1]]})
            assert v["added"] == 0
            assert v["appended"] == {"E": 0}

    def test_new_relation_and_arity_errors(self, server):
        with _client(server) as client:
            receipt = client.add_facts("graph", {"Label": [[3]]})
            assert receipt["appended"] == {"Label": 1}
            with pytest.raises(ServiceError) as err:
                client.add_facts("graph", {"Label": [[3, 4]]})
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                client.add_facts("missing", {"E": [[1, 2]]})
            assert err.value.status == 404

    def test_facts_payload_validated(self, server):
        with _client(server) as client:
            for bad in ({}, {"E": []}, {"E": [[1], [1, 2]]}, {"E": "rows"}):
                with pytest.raises(ServiceError) as err:
                    client.request(
                        "POST", "/facts", {"dataset": "graph", "facts": bad}
                    )
                assert err.value.status == 400


class TestSubscriptions:
    def test_initial_poll_then_delta_only(self, server):
        query = _path_query()
        with _client(server) as client:
            sub = client.subscribe(query, dataset="graph")
            assert sub["mode"] == "initial"
            initial = sub["delta"]
            assert sub["total"] == len(initial)
            assert client.poll(sub["subscription"])["mode"] == "noop"
            client.add_facts("graph", {"E": [[200, 201], [201, 202]]})
            poll = client.poll(sub["subscription"])
            assert poll["mode"] == "incremental"
            assert poll["delta"] == [[200, 201, 202]]
            assert poll["total"] == len(initial) + 1
            # Delivered once: the next poll is empty again.
            assert client.poll(sub["subscription"])["delta"] == []

    def test_poll_matches_from_scratch_evaluation(self, server):
        query = _path_query()
        session = EngineSession()
        with _client(server) as client:
            sub = client.subscribe(query, dataset="graph")
            delivered = {tuple(row) for row in sub["delta"]}
            shadow = _graph((i, i + 1) for i in range(10))
            for rows in ([[50, 51]], [[51, 52], [52, 53]], [[9, 50]]):
                client.add_facts("graph", {"E": rows})
                for a, b in rows:
                    shadow.add_fact("E", (a, b))
                poll = client.poll(sub["subscription"])
                delivered |= {tuple(row) for row in poll["delta"]}
                assert delivered == session.answer(query, shadow).rows

    def test_tenant_isolation(self, server):
        query = _path_query()
        with _client(server) as client:
            sub = client.subscribe(query, dataset="acme-graph", tenant="acme")
            assert sub["delta"] == [[1, 2, 3]]
            # The default tenant cannot poll, delete, or even observe it.
            for action in (client.poll, client.unsubscribe):
                with pytest.raises(ServiceError) as err:
                    action(sub["subscription"])
                assert err.value.status == 404
            poll = client.poll(sub["subscription"], tenant="acme")
            assert poll["mode"] == "noop"

    def test_unsubscribe_frees_the_registration(self, server):
        query = _path_query()
        with _client(server) as client:
            sub = client.subscribe(query, dataset="graph")
            removed = client.unsubscribe(sub["subscription"])
            assert removed["removed"] == sub["subscription"]
            with pytest.raises(ServiceError) as err:
                client.poll(sub["subscription"])
            assert err.value.status == 404

    def test_subscription_errors(self, server):
        query = _path_query()
        with _client(server) as client:
            with pytest.raises(ServiceError) as err:
                client.subscribe(query, dataset="missing")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.subscribe(query, dataset="graph", threshold=2.0)
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                client.poll("no-such-id")
            assert err.value.status == 404

    def test_stats_report_subscriptions(self, server):
        query = _path_query()
        with _client(server) as client:
            sub = client.subscribe(query, dataset="graph")
            stats = client.stats()["subscriptions"]
            assert stats["active"] >= 1
            info = stats["by_tenant"]["public"][sub["subscription"]]
            assert info["dataset"] == "graph"
            assert info["refresh_modes"]["initial"] == 1
