"""Unit tests for the service building blocks: HTTP parsing, admission
control, deadlines, tenancy, metrics."""

import asyncio
import json

import pytest

from repro.cq.database import Database
from repro.engine import EngineSession
from repro.service import (
    AdmissionController,
    DatasetRegistry,
    DeadlineExceeded,
    LatencyWindow,
    Overloaded,
    ServiceMetrics,
    TenantSessions,
    UnknownDataset,
    deadline_seconds,
    percentile,
)
from repro.service.deadlines import guard
from repro.service.http import HttpError, Request, Response, Router


def run(coroutine):
    return asyncio.run(coroutine)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class TestHttp:
    def test_response_encode_roundtrip(self):
        raw = Response(200, {"ok": True}).encode(keep_alive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        assert json.loads(body) == {"ok": True}

    def test_error_response_carries_headers(self):
        raw = Response.error(
            503, "busy", headers={"Retry-After": "1"}
        ).encode(False)
        head = raw.split(b"\r\n\r\n", 1)[0].decode()
        assert "Retry-After: 1" in head
        assert "Connection: close" in head
        assert b'"error": "busy"' in raw

    def test_request_json_errors_are_http_400(self):
        request = Request("POST", "/answer", {}, b"{not json")
        with pytest.raises(HttpError) as info:
            request.json()
        assert info.value.status == 400

    def test_router_404_and_405(self):
        router = Router()

        async def handler(request):
            return Response(200, {"hit": request.path})

        router.add("POST", "/answer", handler)
        ok = run(router.dispatch(Request("POST", "/answer", {}, b"")))
        assert ok.payload == {"hit": "/answer"}
        missing = run(router.dispatch(Request("GET", "/nope", {}, b"")))
        assert missing.status == 404
        wrong_method = run(router.dispatch(Request("GET", "/answer", {}, b"")))
        assert wrong_method.status == 405
        assert wrong_method.payload["allowed"] == ["POST"]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_sheds_beyond_queue_bound(self):
        async def scenario():
            controller = AdmissionController(
                max_concurrent=1, max_queue=1, retry_after_seconds=0.5
            )
            await controller.acquire()          # running
            waiter = asyncio.ensure_future(controller.acquire())  # queued
            await asyncio.sleep(0)              # let the waiter enqueue
            assert controller.queued == 1
            with pytest.raises(Overloaded) as info:
                await controller.acquire()      # bound hit: shed
            assert info.value.retry_after_seconds == 0.5
            assert controller.stats()["shed"] == 1
            controller.release()                # running slot frees
            await waiter                        # the queued one gets in
            assert controller.in_flight == 1
            controller.release()
            stats = controller.stats()
            assert stats["admitted"] == 2
            assert stats["completed"] == 2
            assert stats["in_flight"] == 0

        run(scenario())

    def test_zero_queue_sheds_immediately_when_busy(self):
        async def scenario():
            controller = AdmissionController(max_concurrent=1, max_queue=0)
            await controller.acquire()
            with pytest.raises(Overloaded):
                await controller.acquire()
            controller.release()
            await controller.acquire()  # free again

        run(scenario())

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_seconds_parsing(self):
        assert deadline_seconds({}, None) is None
        assert deadline_seconds({}, 2.5) == 2.5
        assert deadline_seconds({"deadline_ms": 250}, None) == 0.25
        for bad in (0, -5, "fast", True):
            with pytest.raises(ValueError):
                deadline_seconds({"deadline_ms": bad}, None)

    def test_guard_passes_results_through(self):
        async def scenario():
            future = asyncio.get_running_loop().create_future()
            future.set_result(41)
            assert await guard(future, None, None) == 41

        run(scenario())

    def test_guard_fires_token_on_expiry(self):
        class Token:
            fired = False

            def cancel(self):
                self.fired = True

        async def scenario():
            token = Token()
            never = asyncio.get_running_loop().create_future()
            with pytest.raises(DeadlineExceeded):
                await guard(never, 0.02, token)
            assert token.fired
            never.cancel()

        run(scenario())


# ----------------------------------------------------------------------
# Tenancy
# ----------------------------------------------------------------------
class TestTenancy:
    def test_sessions_are_tenant_private_and_stable(self):
        pool = TenantSessions(max_tenants=4)
        a = pool.get("a")
        assert pool.get("a") is a
        assert pool.get("b") is not a
        assert pool.created == 2
        assert set(pool.tenants()) == {"a", "b"}
        assert isinstance(a, EngineSession)

    def test_lru_bound_evicts_cold_tenants(self):
        pool = TenantSessions(max_tenants=2)
        a = pool.get("a")
        pool.get("b")
        pool.get("c")  # evicts "a"
        assert "a" not in pool.tenants()
        assert pool.get("a") is not a  # fresh, cold session
        assert pool.created == 4

    def test_stats_keyed_by_tenant(self):
        pool = TenantSessions()
        pool.get("x")
        stats = pool.stats()
        assert set(stats) == {"x"}
        assert "plan_cache" in stats["x"]

    def test_dataset_namespace_is_per_tenant(self):
        registry = DatasetRegistry()
        public_db, acme_db = Database(), Database()
        registry.register("public", "movies", public_db)
        registry.register("acme", "movies", acme_db)
        assert registry.get("public", "movies") is public_db
        assert registry.get("acme", "movies") is acme_db
        with pytest.raises(UnknownDataset):
            registry.get("public", "books")
        with pytest.raises(UnknownDataset):
            registry.get("ghost", "movies")
        assert registry.by_tenant() == {
            "public": ["movies"], "acme": ["movies"],
        }


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.99) == 3.0
        samples = [float(i) for i in range(1, 102)]
        assert percentile(samples, 0.5) == 51.0  # the true median of 1..101
        assert percentile(samples, 0.99) == 100.0

    def test_latency_window_is_bounded(self):
        window = LatencyWindow(maxlen=4)
        for i in range(10):
            window.record(float(i))
        snap = window.snapshot()
        assert snap["count"] == 10
        assert snap["window"] == 4
        assert snap["max_seconds"] == 9.0

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.record("/answer", 200, 0.01)
        metrics.record("/answer", 503, 0.001)
        metrics.record("/stats", 200, 0.002)
        metrics.record_deadline_exceeded()
        snap = metrics.snapshot()
        assert snap["requests_by_endpoint"] == {"/answer": 2, "/stats": 1}
        assert snap["responses_by_status"] == {"200": 2, "503": 1}
        assert snap["shed"] == 1
        assert snap["deadline_exceeded"] == 1
        assert snap["latency"]["count"] == 3
        assert set(snap["latency_by_endpoint"]) == {"/answer", "/stats"}
        json.dumps(snap)  # everything must be JSON-serialisable
