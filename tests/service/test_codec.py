"""The service wire format: JSON ⇄ queries/databases/results."""

import pytest

from repro.cq import generators as cqgen
from repro.cq.database import Database
from repro.cq.query import Atom, ConjunctiveQuery, Constant
from repro.engine import EngineSession
from repro.service import (
    CodecError,
    database_from_json,
    database_to_json,
    query_from_json,
    query_to_json,
    result_to_json,
)


class TestTermsAndQueries:
    def test_query_round_trip(self):
        query = ConjunctiveQuery(
            [
                Atom("R", ("x", "y", Constant(7))),
                Atom("S", ("y", "z")),
            ],
            free_variables=("x", "z"),
        )
        wire = query_to_json(query)
        back = query_from_json(wire)
        assert back.free_variables == query.free_variables
        assert [a.relation for a in back.atoms] == ["R", "S"]
        assert back.atoms[0].terms == ("x", "y", Constant(7))
        # Round-tripping the round trip is a fixed point.
        assert query_to_json(back) == wire

    def test_full_query_when_free_omitted(self):
        query = query_from_json(
            {"atoms": [{"relation": "R", "terms": ["x", "y"]}]}
        )
        assert query.free_variables == ("x", "y")

    def test_boolean_query_with_empty_free(self):
        query = query_from_json(
            {"atoms": [{"relation": "R", "terms": ["x"]}], "free": []}
        )
        assert query.free_variables == ()
        assert query.is_boolean()

    @pytest.mark.parametrize(
        "bad",
        [
            "not a dict",
            {},
            {"atoms": []},
            {"atoms": [{"relation": "R"}]},
            {"atoms": [{"relation": "R", "terms": [1]}]},
            {"atoms": [{"relation": "R", "terms": [{"const": [1]}]}]},
            {"atoms": [{"relation": "R", "terms": ["x"]}], "free": ["zz"]},
            {"atoms": [{"relation": "R", "terms": ["x"]}], "free": "x"},
        ],
    )
    def test_malformed_queries_raise_codec_error(self, bad):
        with pytest.raises(CodecError):
            query_from_json(bad)


class TestDatabases:
    def test_database_round_trip(self):
        database = Database()
        database.add_fact("R", (1, "a"))
        database.add_fact("R", (2, "b"))
        database.add_fact("S", (True,))
        wire = database_to_json(database)
        back = database_from_json(wire)
        assert back == database
        assert database_to_json(back) == wire

    @pytest.mark.parametrize(
        "bad",
        [
            ["not", "a", "dict"],
            {"R": "rows"},
            {"R": [[1], [1, 2]]},
            {"R": [[{"nested": 1}]]},
            {"R": [(1,)]},
        ],
    )
    def test_malformed_databases_raise_codec_error(self, bad):
        with pytest.raises(CodecError):
            database_from_json(bad)


class TestResults:
    def test_answer_result_shape(self):
        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 6, 30, seed=1)
        result = EngineSession().answer(query, database)
        wire = result_to_json(result)
        assert wire["task"] == "answer"
        assert wire["strategy"] == result.strategy
        assert set(wire["timings"]) == {
            "planning_seconds", "execution_seconds", "total_seconds",
        }
        assert sorted(map(tuple, wire["rows"]), key=repr) == sorted(
            map(tuple, result.rows), key=repr
        )
        # rows are JSON lists, sorted deterministically
        assert wire["rows"] == sorted(wire["rows"], key=repr)

    def test_sharded_count_result_records_sharding_and_runtime(self):
        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 6, 40, seed=2)
        result = EngineSession().count(query, database, shards=3)
        wire = result_to_json(result)
        assert wire["value"] == result.count
        assert wire["sharding"]["shards"] == 3
        assert "rows" not in wire
