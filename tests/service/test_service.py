"""End-to-end service tests: a real server on a real socket, driven by
concurrent ``http.client`` connections.

This file is the core of ``make service-smoke``:

* **differential exactness** — 8 concurrent clients replay a mixed
  workload through HTTP and every response must equal the direct
  ``EngineSession`` answer;
* **admission shedding** — a saturated queue answers 503 + ``Retry-After``
  immediately instead of queueing without bound;
* **deadline cancellation** — a 50ms deadline on an in-flight sharded call
  returns 504, fires the engine's cancellation token, and leaves no
  orphaned work (in-flight drains back to 0);
* **tenant isolation** — tenants get private sessions and private dataset
  namespaces.
"""

import threading
import time

import pytest

from repro.cq import generators as cqgen
from repro.cq.database import Database
from repro.cq.query import Atom, ConjunctiveQuery
from repro.engine import EngineSession
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve_in_thread,
)


@pytest.fixture(scope="module")
def workload():
    query = cqgen.hub_cycle_query(4)
    database = cqgen.random_database(query, 10, 120, seed=42)
    queries = [
        query,
        cqgen.chain_query(3),
        cqgen.chain_query(4),
        cqgen.star_query(3),
    ]
    return queries, database


@pytest.fixture(scope="module")
def server(workload):
    _, database = workload
    service = QueryService(
        ServiceConfig(max_concurrent=4, debug_hooks=True)
    )
    service.register_dataset("bench", database)
    service.register_dataset("acme-private", Database(), tenant="acme")
    with serve_in_thread(service) as handle:
        yield handle


def _client(server):
    return ServiceClient(server.host, server.port)


class TestEndpoints:
    def test_healthz(self, server):
        with _client(server) as client:
            assert client.healthz()["status"] == "ok"

    def test_answer_matches_direct_session(self, server, workload):
        queries, database = workload
        reference = EngineSession()
        with _client(server) as client:
            for query in queries:
                served = client.answer(query, dataset="bench")
                direct = reference.answer(query, database)
                assert served["rows"] == sorted(
                    (list(row) for row in direct.rows), key=repr
                )
                assert served["strategy"] == direct.strategy

    def test_count_and_satisfiable_with_sharding(self, server, workload):
        queries, database = workload
        reference = EngineSession()
        with _client(server) as client:
            for query in queries:
                served = client.count(query, dataset="bench", shards=3)
                assert served["value"] == reference.count(query, database).count
                assert served["sharding"]["shards"] == 3
                sat = client.is_satisfiable(query, dataset="bench")
                assert sat["value"] is reference.is_satisfiable(
                    query, database
                ).satisfiable

    def test_inline_database(self, server):
        database = Database()
        database.add_fact("E", (1, 2))
        database.add_fact("E", (2, 1))
        query = ConjunctiveQuery([Atom("E", ("x", "y")), Atom("E", ("y", "x"))])
        with _client(server) as client:
            served = client.answer(query, database=database)
            assert sorted(served["rows"]) == [[1, 2], [2, 1]]

    def test_batch_matches_answer_many(self, server, workload):
        queries, database = workload
        batch = queries + [queries[0]]  # a dedup candidate
        reference = EngineSession().answer_many(batch, database, parallel=2)
        with _client(server) as client:
            served = client.batch(batch, dataset="bench")
        assert len(served["results"]) == len(batch)
        for wire, direct in zip(served["results"], reference):
            assert wire["rows"] == sorted(
                (list(row) for row in direct.rows), key=repr
            )

    def test_error_mapping(self, server, workload):
        queries, _ = workload
        with _client(server) as client:
            with pytest.raises(ServiceError) as info:
                client.answer(queries[0], dataset="ghost")
            assert info.value.status == 404
            with pytest.raises(ServiceError) as info:
                client.request("POST", "/answer", {"dataset": "bench"})
            assert info.value.status == 400  # no query
            with pytest.raises(ServiceError) as info:
                client.request(
                    "POST", "/answer",
                    {"query": {"atoms": []}, "dataset": "bench"},
                )
            assert info.value.status == 400  # codec error
            with pytest.raises(ServiceError) as info:
                client.answer(queries[0], dataset="bench", shards=0)
            assert info.value.status == 400
            with pytest.raises(ServiceError) as info:
                client.answer(queries[0], dataset="bench", runtime="warp-drive")
            assert info.value.status == 400
            with pytest.raises(ServiceError) as info:
                client.request("GET", "/answer")
            assert info.value.status == 405
            with pytest.raises(ServiceError) as info:
                client.request("POST", "/nope", {})
            assert info.value.status == 404

    def test_stats_shape(self, server, workload):
        queries, _ = workload
        with _client(server) as client:
            client.count(queries[0], dataset="bench")
            stats = client.stats()
        assert set(stats) >= {
            "service", "admission", "tenants", "tenant_pool", "datasets",
            "config",
        }
        assert stats["admission"]["max_concurrent"] == 4
        service_stats = stats["service"]
        assert service_stats["requests_by_endpoint"]["/count"] >= 1
        assert service_stats["latency"]["p99_seconds"] is not None
        # The engine's own counters surface per tenant.
        public = stats["tenants"]["public"]
        assert "plan_cache" in public
        assert "bench" in stats["datasets"]["public"]


class TestConcurrentDifferential:
    def test_eight_concurrent_clients_exact_results(self, server, workload):
        queries, database = workload
        reference = EngineSession()
        expected = {}
        for index, query in enumerate(queries):
            direct = reference.answer(query, database)
            expected[index] = sorted(
                (list(row) for row in direct.rows), key=repr
            )
        errors = []
        barrier = threading.Barrier(8)

        def worker(worker_index: int) -> None:
            try:
                client = _client(server)
                barrier.wait(timeout=30)
                for round_index in range(6):
                    index = (worker_index + round_index) % len(queries)
                    shards = 1 + (worker_index + round_index) % 3
                    served = client.answer(
                        queries[index], dataset="bench", shards=shards
                    )
                    if served["rows"] != expected[index]:
                        errors.append(
                            f"worker {worker_index} round {round_index}: "
                            f"mismatch on query {index} (shards={shards})"
                        )
                client.close()
            except Exception as exc:
                errors.append(f"worker {worker_index}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []


class TestAdmissionShedding:
    def test_saturated_queue_sheds_with_retry_after(self, workload):
        _, database = workload
        service = QueryService(
            ServiceConfig(
                max_concurrent=1,
                max_queue=1,
                retry_after_seconds=0.5,
                debug_hooks=True,
            )
        )
        service.register_dataset("bench", database)
        query = cqgen.chain_query(2)
        with serve_in_thread(service) as handle:
            statuses = []
            lock = threading.Lock()

            def slow_client():
                client = ServiceClient(handle.host, handle.port)
                try:
                    client.answer(query, dataset="bench", _sleep_ms=700)
                    with lock:
                        statuses.append(200)
                except ServiceError as exc:
                    with lock:
                        statuses.append(exc.status)
                finally:
                    client.close()

            threads = [threading.Thread(target=slow_client) for _ in range(6)]
            for thread in threads:
                thread.start()
                time.sleep(0.05)  # deterministic arrival order
            for thread in threads:
                thread.join(timeout=60)
            # 1 running + 1 queued succeed; the other 4 shed.
            assert sorted(statuses) == [200, 200, 503, 503, 503, 503]

            with ServiceClient(handle.host, handle.port) as client:
                stats = client.stats()
                assert stats["admission"]["shed"] == 4
                assert stats["service"]["shed"] == 4
                # Shed responses carry the backoff hint.
                try:
                    saturator = threading.Thread(target=slow_client)
                    blocker = threading.Thread(target=slow_client)
                    saturator.start()
                    blocker.start()
                    time.sleep(0.2)
                    with pytest.raises(ServiceError) as info:
                        client.answer(query, dataset="bench")
                    assert info.value.status == 503
                    assert info.value.retry_after_seconds == 0.5
                finally:
                    saturator.join(timeout=60)
                    blocker.join(timeout=60)


class TestDeadlines:
    def test_deadline_cancels_in_flight_sharded_call(self, workload):
        _, database = workload
        service = QueryService(
            ServiceConfig(max_concurrent=2, debug_hooks=True)
        )
        service.register_dataset("bench", database)
        query = cqgen.hub_cycle_query(4)
        with serve_in_thread(service) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                started = time.perf_counter()
                with pytest.raises(ServiceError) as info:
                    client.answer(
                        query,
                        dataset="bench",
                        shards=4,
                        deadline_ms=50,
                        _sleep_ms=5000,
                    )
                elapsed = time.perf_counter() - started
                assert info.value.status == 504
                # Answered at the deadline, not after the sleep.
                assert elapsed < 2.0
                # The admission slot is held until the engine call unwinds,
                # then released: no orphaned futures, no leaked slots.
                for _ in range(200):
                    if client.healthz()["in_flight"] == 0:
                        break
                    time.sleep(0.05)
                assert client.healthz()["in_flight"] == 0
                stats = client.stats()
                assert stats["service"]["deadline_exceeded"] == 1
                assert stats["admission"]["completed"] == (
                    stats["admission"]["admitted"]
                )
                # The service still answers normally afterwards.
                fine = client.count(query, dataset="bench", shards=2)
                assert isinstance(fine["value"], int)

    def test_default_deadline_from_config(self, workload):
        _, database = workload
        service = QueryService(
            ServiceConfig(
                max_concurrent=1,
                default_deadline_seconds=0.05,
                debug_hooks=True,
            )
        )
        service.register_dataset("bench", database)
        with serve_in_thread(service) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as info:
                    client.answer(
                        cqgen.chain_query(2), dataset="bench", _sleep_ms=3000
                    )
                assert info.value.status == 504


class TestTenantIsolation:
    def test_sessions_and_datasets_are_tenant_private(self, server, workload):
        queries, _ = workload
        with _client(server) as client:
            client.count(queries[0], dataset="bench", tenant="public")
            # acme can't see public's dataset...
            with pytest.raises(ServiceError) as info:
                client.count(queries[0], dataset="bench", tenant="acme")
            assert info.value.status == 404
            # ...but has its own namespace (registered in the fixture).
            names = client.stats()["datasets"]
            assert "bench" in names["public"]
            assert names["acme"] == ["acme-private"]

    def test_tenant_sessions_have_private_caches(self, server, workload):
        queries, _ = workload
        query = queries[0]
        database = workload[1]
        with _client(server) as client:
            client.count(query, database=database, tenant="cache-a")
            client.count(query, database=database, tenant="cache-a")
            stats = client.stats()["tenants"]
            # cache-a planned once and hit its plan cache once; a fresh
            # tenant has no cache state at all (nothing leaked across).
            cache_a = stats["cache-a"]["plan_cache"]
            assert cache_a["hits"] >= 1
            assert "cache-b" not in stats

    def test_debug_hook_gated(self, workload):
        _, database = workload
        service = QueryService(ServiceConfig())  # debug_hooks off
        service.register_dataset("bench", database)
        with serve_in_thread(service) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as info:
                    client.answer(
                        cqgen.chain_query(2), dataset="bench", _sleep_ms=10
                    )
                assert info.value.status == 400
