"""Tests for minor map validation."""

from repro.hypergraphs import Hypergraph, dual_hypergraph, generators
from repro.hypergraphs.graphs import cycle_graph, grid_graph, path_graph
from repro.minors import MinorMap


class TestMinorMapValidation:
    def test_identity_map_is_valid(self):
        g = cycle_graph(4)
        mapping = {v: {v} for v in g.vertices}
        assert MinorMap(g, g, mapping).is_valid()

    def test_contraction_branch_sets(self):
        # C4 is a minor of C6 by contracting two opposite edges.
        host = cycle_graph(6)
        pattern = cycle_graph(4)
        mapping = {0: {0, 1}, 1: {2}, 2: {3, 4}, 3: {5}}
        assert MinorMap(pattern, host, mapping).is_valid()

    def test_disconnected_branch_set_invalid(self):
        host = path_graph(5)
        pattern = path_graph(2)
        mapping = {0: {0, 4}, 1: {2}}
        assert not MinorMap(pattern, host, mapping).branch_sets_connected()

    def test_overlapping_branch_sets_invalid(self):
        host = path_graph(4)
        pattern = path_graph(2)
        mapping = {0: {0, 1}, 1: {1, 2}}
        assert not MinorMap(pattern, host, mapping).branch_sets_disjoint()

    def test_missing_adjacency_invalid(self):
        host = path_graph(5)
        pattern = path_graph(2)
        mapping = {0: {0}, 1: {4}}
        minor = MinorMap(pattern, host, mapping)
        assert not minor.adjacency_witnessed()
        assert not minor.is_valid()

    def test_missing_pattern_vertex_invalid(self):
        host = path_graph(3)
        pattern = path_graph(2)
        assert not MinorMap(pattern, host, {0: {0}}).is_valid()

    def test_empty_branch_set_invalid(self):
        host = path_graph(3)
        pattern = path_graph(2)
        assert not MinorMap(pattern, host, {0: set(), 1: {1}}).is_valid()

    def test_branch_outside_host_invalid(self):
        host = path_graph(3)
        pattern = path_graph(2)
        assert not MinorMap(pattern, host, {0: {"zzz"}, 1: {1}}).branch_sets_in_host()

    def test_is_onto(self):
        host = path_graph(3)
        pattern = path_graph(3)
        full = MinorMap(pattern, host, {v: {v} for v in host.vertices})
        assert full.is_onto()
        partial = MinorMap(path_graph(2), host, {0: {0}, 1: {1}})
        assert not partial.is_onto()

    def test_minor_map_into_hypergraph_host(self):
        # Branch sets of edges in a dual hypergraph host (rank 2).
        source = generators.thickened_jigsaw(2, 2)
        dual = dual_hypergraph(source)
        grid = grid_graph(2, 2)
        from repro.jigsaws import planted_thickened_jigsaw_minor

        _, minor = planted_thickened_jigsaw_minor(2, 2)
        assert minor.is_valid()
        assert minor.pattern.edges == grid.edges
