"""Tests for grid-minor search."""

from repro.hypergraphs import dual_hypergraph, generators
from repro.hypergraphs.graphs import grid_graph
from repro.minors.grid_minor import (
    find_grid_minor,
    largest_grid_minor_dimension,
    suppress_low_degree_vertices,
)


class TestSuppression:
    def test_suppression_of_subdivided_path_keeps_minor(self):
        # Dual of a thickened jigsaw: connector vertices have degree 2 and
        # neighbours of degree >= 3 get contracted away.
        dual = dual_hypergraph(generators.thickened_jigsaw(3, 3))
        reduced, branches = suppress_low_degree_vertices(dual)
        assert reduced.num_vertices <= dual.num_vertices
        covered = set()
        for branch in branches.values():
            covered.update(branch)
        assert covered <= set(dual.vertices)

    def test_branches_are_disjoint(self):
        dual = dual_hypergraph(generators.thickened_jigsaw(2, 3))
        _, branches = suppress_low_degree_vertices(dual)
        seen = set()
        for branch in branches.values():
            assert not (branch & seen)
            seen.update(branch)


class TestFindGridMinor:
    def test_grid_is_its_own_minor(self):
        host = grid_graph(3, 3)
        minor = find_grid_minor(host, 3, 3)
        assert minor is not None and minor.is_valid()

    def test_grid_minor_in_dual_of_thickened_jigsaw(self):
        dual = dual_hypergraph(generators.thickened_jigsaw(2, 2))
        minor = find_grid_minor(dual, 2, 2)
        assert minor is not None and minor.is_valid()

    def test_no_large_grid_in_a_path(self):
        host = generators.hyperpath(6)
        assert find_grid_minor(host, 3, 3, max_nodes=20_000) is None

    def test_largest_dimension_on_grid(self):
        assert largest_grid_minor_dimension(grid_graph(3, 3), max_dimension=4) >= 2

    def test_largest_dimension_on_tree_is_one(self):
        assert largest_grid_minor_dimension(generators.hyperpath(5), max_dimension=3) == 1

    def test_rectangular_grid_minor(self):
        host = grid_graph(3, 4)
        minor = find_grid_minor(host, 2, 3)
        assert minor is not None and minor.is_valid()
