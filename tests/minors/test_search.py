"""Tests for the generic minor-containment search."""

import pytest

from repro.hypergraphs.graphs import complete_graph, cycle_graph, grid_graph, path_graph, star_graph
from repro.minors import find_minor_map, has_minor
from repro.minors.search import MinorSearchBudgetExceeded


class TestMinorSearch:
    def test_subgraph_is_minor(self):
        assert has_minor(path_graph(3), cycle_graph(5))

    def test_cycle_minor_of_longer_cycle(self):
        minor = find_minor_map(cycle_graph(3), cycle_graph(6))
        assert minor is not None
        assert minor.is_valid()

    def test_triangle_not_minor_of_tree(self):
        assert not has_minor(cycle_graph(3), star_graph(5))

    def test_k4_minor_of_grid_3x3(self):
        # The 3x3 grid contains K4 as a minor.
        assert has_minor(complete_graph(4), grid_graph(3, 3))

    def test_k5_not_minor_of_small_path(self):
        assert not has_minor(complete_graph(5), path_graph(6))

    def test_grid_2x2_minor_of_grid_3x3(self):
        minor = find_minor_map(grid_graph(2, 2), grid_graph(3, 3))
        assert minor is not None and minor.is_valid()

    def test_pattern_larger_than_host_rejected_immediately(self):
        assert find_minor_map(grid_graph(3, 3), grid_graph(2, 2)) is None

    def test_pattern_must_be_graph(self):
        from repro.hypergraphs import Hypergraph

        with pytest.raises(ValueError):
            find_minor_map(Hypergraph(edges=[{"a", "b", "c"}]), grid_graph(2, 2))

    def test_budget_exception(self):
        with pytest.raises(MinorSearchBudgetExceeded):
            find_minor_map(grid_graph(2, 3), grid_graph(3, 3), max_nodes=2)

    def test_empty_pattern(self):
        from repro.hypergraphs import Hypergraph

        result = find_minor_map(Hypergraph(), grid_graph(2, 2))
        assert result is not None

    def test_returned_map_is_valid_with_nontrivial_branches(self):
        minor = find_minor_map(cycle_graph(4), cycle_graph(7))
        assert minor is not None
        assert minor.is_valid()
        assert sum(len(b) for b in minor.mapping.values()) >= 4
