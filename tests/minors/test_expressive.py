"""Tests for expressive minor maps (Definition D.1)."""

from repro.hypergraphs import Hypergraph
from repro.hypergraphs.graphs import cycle_graph, grid_graph, path_graph
from repro.minors import ExpressiveMinorMap, MinorMap, find_minor_map
from repro.minors.expressive import expressive_from_minor_on_graph


class TestExpressiveMinors:
    def test_graph_minor_extends_to_expressive(self):
        host = grid_graph(3, 3)
        minor = find_minor_map(grid_graph(2, 2), host)
        expressive = expressive_from_minor_on_graph(minor)
        assert expressive is not None
        assert expressive.is_valid()

    def test_rank_above_two_not_automatic(self):
        host = Hypergraph(edges=[{"a", "b", "c"}])
        pattern = path_graph(2)
        minor = MinorMap(pattern, host, {0: {"a"}, 1: {"b"}})
        assert expressive_from_minor_on_graph(minor) is None

    def test_injectivity_required(self):
        host = cycle_graph(3)
        pattern = cycle_graph(3)
        minor = MinorMap(pattern, host, {v: {v} for v in host.vertices})
        same_edge = frozenset({0, 1})
        candidate = ExpressiveMinorMap(minor, {e: same_edge for e in pattern.edges})
        assert not candidate.edge_map_total_and_injective()
        assert not candidate.is_valid()

    def test_edge_must_touch_both_branch_sets(self):
        host = path_graph(4)
        pattern = path_graph(2)
        minor = MinorMap(pattern, host, {0: {0}, 1: {1}})
        candidate = ExpressiveMinorMap(minor, {frozenset({0, 1}): frozenset({2, 3})})
        assert not candidate.edges_touch_branch_sets()

    def test_identity_expressive_map_on_cycle(self):
        host = cycle_graph(4)
        minor = MinorMap(host, host, {v: {v} for v in host.vertices})
        expressive = expressive_from_minor_on_graph(minor)
        assert expressive is not None and expressive.is_valid()

    def test_marked_edges_reported(self):
        host = cycle_graph(4)
        minor = MinorMap(host, host, {v: {v} for v in host.vertices})
        expressive = expressive_from_minor_on_graph(minor)
        assert expressive.marked_edges() == host.edges

    def test_edge_map_into_host_check(self):
        host = path_graph(3)
        pattern = path_graph(2)
        minor = MinorMap(pattern, host, {0: {0}, 1: {1}})
        candidate = ExpressiveMinorMap(minor, {frozenset({0, 1}): frozenset({"x", "y"})})
        assert not candidate.edge_map_into_host()
