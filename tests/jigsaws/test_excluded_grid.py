"""Tests for the Theorem 4.7 pipeline (excluded-grid analogue)."""

import pytest

from repro.hypergraphs import generators
from repro.jigsaws import (
    dilute_to_jigsaw,
    largest_jigsaw_dilution,
    planted_thickened_jigsaw_minor,
)


class TestPipeline:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 2)])
    def test_thickened_jigsaw_dilutes_automatically(self, rows, cols):
        certificate = dilute_to_jigsaw(generators.thickened_jigsaw(rows, cols), rows, cols)
        assert certificate is not None
        assert certificate.result_is_jigsaw()
        assert certificate.sequence_replays()

    def test_planted_minor_route_for_larger_dimensions(self):
        hypergraph, minor = planted_thickened_jigsaw_minor(4, 4)
        certificate = dilute_to_jigsaw(hypergraph, 4, 4, minor=minor)
        assert certificate is not None
        assert certificate.result_is_jigsaw()
        assert certificate.sequence_replays()

    def test_planted_minor_is_valid(self):
        _, minor = planted_thickened_jigsaw_minor(3, 3)
        assert minor.is_valid()

    def test_degree_three_input_rejected(self):
        with pytest.raises(ValueError):
            dilute_to_jigsaw(generators.star_hypergraph(3), 2)

    def test_acyclic_hypergraph_has_no_large_jigsaw(self):
        certificate = dilute_to_jigsaw(generators.hyperpath(6), 2, max_nodes=20_000)
        assert certificate is None

    def test_largest_jigsaw_dilution_on_thickened(self):
        certificate = largest_jigsaw_dilution(
            generators.thickened_jigsaw(2, 2), max_dimension=3, max_nodes=50_000
        )
        assert certificate is not None
        assert (certificate.rows, certificate.cols) == (2, 2)

    def test_certificate_sequence_monotonicity(self):
        certificate = dilute_to_jigsaw(generators.thickened_jigsaw(2, 2), 2, 2)
        checks = certificate.sequence.check_monotonicity(certificate.source)
        assert checks["degree_monotone"] and checks["size_monotone"]

    def test_certificate_records_dual_and_reduced(self):
        certificate = dilute_to_jigsaw(generators.thickened_jigsaw(2, 2), 2, 2)
        assert certificate.reduced.is_reduced()
        assert certificate.dual.num_vertices == certificate.reduced.num_edges
