"""Tests for pre-jigsaws (Definition 5.1)."""

import pytest

from repro.hypergraphs import generators
from repro.hypergraphs.isomorphism import are_isomorphic
from repro.jigsaws import (
    jigsaw_as_prejigsaw,
    planted_prejigsaw,
    prejigsaw_to_jigsaw_dilution,
)


class TestCertificates:
    def test_jigsaw_is_a_prejigsaw_of_itself(self):
        certificate = jigsaw_as_prejigsaw(3, 3)
        assert certificate.is_valid()

    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 3)])
    def test_planted_degree2_prejigsaw_is_valid(self, rows, cols):
        certificate = planted_prejigsaw(rows, cols, degree=2)
        assert certificate.is_valid()
        assert certificate.hypergraph.degree() == 2

    def test_planted_degree3_prejigsaw_is_valid(self):
        certificate = planted_prejigsaw(3, 3, degree=3)
        assert certificate.is_valid()
        assert certificate.hypergraph.degree() == 3

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            planted_prejigsaw(3, 3, degree=4)

    def test_small_dimension_rejected(self):
        with pytest.raises(ValueError):
            planted_prejigsaw(1, 3)

    def test_broken_certificate_detected(self):
        certificate = planted_prejigsaw(2, 2, degree=2)
        # Drop one group: edges are no longer all covered.
        some_edge = next(iter(certificate.o))
        del certificate.o[some_edge]
        assert not certificate.is_valid()

    def test_paths_avoid_pi_images(self):
        certificate = planted_prejigsaw(3, 3, degree=2)
        pi_image = {certificate.pi[v] for v in certificate.jigsaw.vertices}
        for path in certificate.paths.values():
            assert not (set(path[1:-1]) & pi_image)


class TestDilutionToJigsaw:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3)])
    def test_degree2_prejigsaw_dilutes_to_jigsaw(self, rows, cols):
        certificate = planted_prejigsaw(rows, cols, degree=2)
        outcome = prejigsaw_to_jigsaw_dilution(certificate)
        assert outcome is not None
        sequence, result = outcome
        assert are_isomorphic(result, generators.jigsaw(rows, cols))
        assert sequence.is_applicable_to(certificate.hypergraph)

    def test_degree3_prejigsaw_does_not_dilute_by_path_merging(self):
        certificate = planted_prejigsaw(3, 3, degree=3)
        assert prejigsaw_to_jigsaw_dilution(certificate) is None

    def test_trivial_certificate_dilution_is_identity_like(self):
        certificate = jigsaw_as_prejigsaw(2, 3)
        sequence, result = prejigsaw_to_jigsaw_dilution(certificate)
        assert are_isomorphic(result, generators.jigsaw(2, 3))
        assert len(sequence) == 0
