"""Tests for jigsaw construction, recognition, and reductions."""

import pytest

from repro.hypergraphs import generators
from repro.hypergraphs.isomorphism import are_isomorphic
from repro.jigsaws import (
    is_jigsaw,
    jigsaw,
    jigsaw_column_reduction_sequence,
    jigsaw_dimension,
)
from repro.jigsaws.jigsaw import verify_jigsaw_properties


class TestRecognition:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 3), (3, 4)])
    def test_jigsaw_dimension_recovered(self, rows, cols):
        dims = jigsaw_dimension(jigsaw(rows, cols))
        assert dims == tuple(sorted((rows, cols)))

    def test_non_jigsaw_rejected(self, small_acyclic):
        assert not is_jigsaw(small_acyclic)

    def test_thickened_jigsaw_is_not_a_jigsaw(self, thickened32):
        assert not is_jigsaw(thickened32)

    def test_cycle_is_not_a_jigsaw(self):
        assert not is_jigsaw(generators.hypercycle(6))

    def test_degree_three_rejected_quickly(self):
        assert jigsaw_dimension(generators.star_hypergraph(3)) is None


class TestDefinitionProperties:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3), (3, 4)])
    def test_verify_jigsaw_properties(self, rows, cols):
        checks = verify_jigsaw_properties(jigsaw(rows, cols), rows, cols)
        assert all(checks.values()), checks

    def test_property_check_fails_on_wrong_dimension(self):
        checks = verify_jigsaw_properties(jigsaw(3, 3), 2, 4)
        assert not all(checks.values())


class TestColumnReduction:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3), (2, 4), (4, 3)])
    def test_column_reduction_gives_smaller_jigsaw(self, rows, cols):
        sequence = jigsaw_column_reduction_sequence(rows, cols)
        result = sequence.apply(jigsaw(rows, cols))
        assert are_isomorphic(result, jigsaw(rows, cols - 1))

    def test_column_reduction_is_a_dilution_sequence(self):
        sequence = jigsaw_column_reduction_sequence(3, 3)
        assert sequence.is_applicable_to(jigsaw(3, 3))
        checks = sequence.check_monotonicity(jigsaw(3, 3))
        assert checks["degree_monotone"] and checks["size_monotone"]

    def test_column_reduction_requires_two_columns(self):
        with pytest.raises(ValueError):
            jigsaw_column_reduction_sequence(3, 1)

    def test_repeated_reduction_reaches_single_column(self):
        current = jigsaw(3, 4)
        for cols in (4, 3, 2):
            sequence = jigsaw_column_reduction_sequence(3, cols)
            current = sequence.apply(current)
        assert are_isomorphic(current, jigsaw(3, 1))
