"""Skew-aware sharding: hot-key broadcast spilling, the skew-checked shard
variable choice, and the estimates-vs-actuals record on results.

The contract under test is the soundness argument of
:meth:`Database.partition`'s hot-key spilling: every shard stays a subset
of the original database, non-hot rows stay confined to their hash shard,
and hot rows are found everywhere — so answer-union and satisfiability are
exact, while counting must combine by union (the session flips
``count_via``)."""

from repro.cq import generators as cqgen
from repro.cq.database import Database, Relation, shard_of
from repro.cq.homomorphism import naive_count_answers, naive_enumerate_answers
from repro.engine.session import EngineSession
from repro.engine.sharding import (
    _detect_hot_keys,
    choose_shard_variable,
    sharding_spec,
)


def _hub_heavy_database(rows=200, hub_value=7, hub_fraction=0.8, seed=3):
    """H(h, x): ``hub_fraction`` of the rows share one hub value."""
    import random

    rng = random.Random(seed)
    relation = Relation("H", 2)
    for i in range(rows):
        h = hub_value if rng.random() < hub_fraction else rng.randrange(50)
        relation.add((h, i))
    database = Database()
    database.add_relation(relation)
    return database


# ----------------------------------------------------------------------
# Database.partition with hot keys
# ----------------------------------------------------------------------
def test_hot_key_partition_spills_to_broadcast_and_stays_sound():
    database = _hub_heavy_database()
    pieces = database.partition({"H": 0}, 4, hot_keys=(7,))
    all_rows = set(database.relation("H").tuples)
    union = set()
    hot_rows = {row for row in all_rows if row[0] == 7}
    for index, piece in enumerate(pieces):
        piece_rows = set(piece.relation("H").tuples)
        # Soundness: every piece is a subset of the original ...
        assert piece_rows <= all_rows
        # ... hot rows are replicated everywhere ...
        assert hot_rows <= piece_rows
        # ... and non-hot rows live exactly in their hash shard.
        for row in piece_rows - hot_rows:
            assert shard_of(row[0], 4) == index
        union |= piece_rows
    assert union == all_rows


def test_hot_key_partition_rebalances_the_hashed_rows():
    database = _hub_heavy_database()
    spilled = database.partition({"H": 0}, 4, hot_keys=(7,))
    plain = database.partition({"H": 0}, 4)
    # Without spilling, the hub shard dwarfs the others; with it, per-shard
    # load (minus the shared broadcast copies) is near fair share.
    hot = sum(1 for row in database.relation("H").tuples if row[0] == 7)
    residual = [len(piece.relation("H")) - hot for piece in spilled]
    fair = (len(database.relation("H")) - hot) / 4
    assert max(residual) <= fair + max(3, 0.5 * fair), (
        f"hashed remainder unbalanced: {residual}"
    )
    plain_loads = [len(piece.relation("H")) for piece in plain]
    assert max(plain_loads) > max(residual) + hot / 2, (
        "the test database is not skewed enough to exercise spilling"
    )


def test_partition_without_hot_keys_is_exactly_disjoint():
    database = _hub_heavy_database()
    pieces = database.partition({"H": 0}, 4)
    rows = [set(piece.relation("H").tuples) for piece in pieces]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not rows[i] & rows[j]
    assert set.union(*rows) == set(database.relation("H").tuples)


# ----------------------------------------------------------------------
# Hot-key detection and the skew-checked shard variable
# ----------------------------------------------------------------------
def test_detect_hot_keys_finds_the_hub():
    database = _hub_heavy_database()
    hot = _detect_hot_keys(database, {"H": 0}, 4)
    assert 7 in hot
    # The value column is near-unique: nothing there is hot.
    assert _detect_hot_keys(database, {"H": 1}, 4) == ()


def test_detect_hot_keys_ignores_uniform_columns():
    query = cqgen.star_query(3)
    database = cqgen.random_database(query, 8, 60, seed=5)
    columns = {f"R{i}": 0 for i in range(3)}
    assert _detect_hot_keys(database, columns, 4) == ()


def test_choose_shard_variable_avoids_hub_concentrated_candidates():
    from repro.cq.query import Atom, ConjunctiveQuery

    # a and b both occur in every atom; column a is hub-heavy, b uniform.
    query = ConjunctiveQuery([Atom("R", ["a", "b"]), Atom("S", ["a", "b"])])
    database = Database()
    for name in ("R", "S"):
        relation = Relation(name, 2)
        for i in range(100):
            relation.add((0 if i % 2 else i, i))  # half the rows share a=0
        database.add_relation(relation)
    # Structure alone ties a and b; repr-max picks "b" — which is uniform,
    # so data cannot improve on it...
    assert choose_shard_variable(query) == "b"
    assert choose_shard_variable(query, database) == "b"
    # ...but when the repr-max default is the hot column, the data steers
    # the choice to the cool candidate.
    flipped = ConjunctiveQuery([Atom("R", ["c", "b"]), Atom("S", ["c", "b"])])
    database_flipped = Database()
    for name in ("R", "S"):
        relation = Relation(name, 2)
        for i in range(100):
            relation.add((i, 0 if i % 2 else i))  # now repr-max "c" is cool
        database_flipped.add_relation(relation)
    assert choose_shard_variable(flipped) == "c"
    assert choose_shard_variable(flipped, database_flipped) == "c"


def test_sharding_spec_records_hot_keys_in_rationale():
    query = cqgen.star_query(3)
    database = cqgen.hub_database(
        query, 30, 200, seed=1, hub_variables=("c",), hot_values=1
    )
    spec = sharding_spec(query, 4, shard_variable="c", database=database)
    assert spec.hot_keys, "a 90%-concentrated hub must be detected hot"
    assert "hot" in spec.rationale
    cold = sharding_spec(query, 4, shard_variable="c")
    assert cold.hot_keys == ()


# ----------------------------------------------------------------------
# End to end: hot keys through the session, all three tasks exact
# ----------------------------------------------------------------------
def test_sharded_execution_with_hot_keys_stays_exact():
    query = cqgen.star_query(3)
    database = cqgen.hub_database(
        query, 30, 200, seed=2, hub_variables=("c",), hot_values=1
    )
    expected_rows = naive_enumerate_answers(query, database)
    expected_count = naive_count_answers(query, database)
    session = EngineSession()
    for shards in (2, 4):
        answered = session.answer(query, database, shards=shards, shard_variable="c")
        record = answered.sharding
        assert record["hot_keys"], "spilling never engaged on a hub workload"
        assert answered.rows == expected_rows
        counted = session.count(query, database, shards=shards, shard_variable="c")
        assert counted.count == expected_count
        # Hot keys break per-shard count disjointness: the session must have
        # combined by union, not by sum.
        assert counted.sharding["count_via"] == "union"
        boolean = session.is_satisfiable(
            query, database, shards=shards, shard_variable="c"
        )
        assert boolean.satisfiable == bool(expected_rows)


def test_eval_result_stats_record_is_populated():
    # A three-relation join pool exercises the cost path; the executor must
    # surface the ledger movement as timings["stats"] / EvalResult.stats.
    query = cqgen.clique_query(3)
    database = cqgen.zipf_database(query, 40, 300, seed=4)
    session = EngineSession()
    result = session.answer(query, database)
    assert result.stats is not None
    assert result.stats["mode"] == "cost-based"
    assert result.stats["cost_joins"] > 0
    assert result.stats["actual_rows"] >= 0

    sharded = session.answer(query, database, shards=2)
    record = sharded.timings["stats"]
    assert "hot_keys" in record
    assert record["mode"] == "cost-based"
