"""The executor layer: uniform EvalResult, plan reuse, missing relations,
counting semantics, and pluggable backend registration."""

import pytest

import repro
from repro.cq import Atom, ConjunctiveQuery, Database
from repro.cq import generators as cqgen
from repro.cq.homomorphism import (
    count_answers,
    naive_count_answers,
    naive_enumerate_answers,
)
from repro.cq.query import Constant
from repro.engine import (
    Engine,
    EvaluationBackend,
    Plan,
    backend_for,
    register_backend,
    registered_strategies,
    unregister_backend,
)


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def cycle_instance():
    query = cqgen.cycle_query(4)
    return query, cqgen.grid_constraint_database(query, colours=3)


class TestEvalResult:
    def test_answer_result_shape(self, engine, cycle_instance):
        query, database = cycle_instance
        result = engine.answer(query, database)
        assert result.task == "answer"
        assert result.value is result.rows
        assert result.satisfiable is None and result.count is None
        assert result.plan is not None
        assert result.strategy == result.plan.strategy
        for key in ("planning_seconds", "execution_seconds", "total_seconds"):
            assert result.timings[key] >= 0.0

    def test_satisfiable_result_shape(self, engine, cycle_instance):
        query, database = cycle_instance
        result = engine.is_satisfiable(query, database)
        assert result.task == "satisfiable"
        assert result.value is result.satisfiable
        assert isinstance(result.satisfiable, bool)

    def test_count_result_shape(self, engine, cycle_instance):
        query, database = cycle_instance
        result = engine.count(query, database)
        assert result.task == "count"
        assert result.value == result.count == count_answers(query, database)


class TestPlanReuse:
    def test_explicit_plan_is_used_verbatim(self, engine, cycle_instance):
        query, database = cycle_instance
        plan = engine.plan(query)
        result = engine.answer(query, database, plan=plan)
        assert result.plan is plan

    def test_plan_once_execute_many(self, engine, cycle_instance):
        query, database = cycle_instance
        plan = engine.plan(query)
        first = engine.answer(query, database, plan=plan)
        second = engine.count(query, database, plan=plan)
        assert second.count == len(first.rows)

    def test_plan_for_different_query_rejected(self, engine, cycle_instance):
        query, database = cycle_instance
        plan = engine.plan(cqgen.chain_query(3))
        with pytest.raises(ValueError, match="different query"):
            engine.answer(query, database, plan=plan)

    def test_plan_for_reordered_projection_rejected(self, engine):
        # Same atoms, same free-variable *set*, different order: answer
        # tuples would come back in the stale column order.
        query = cqgen.chain_query(3).project(["x0", "x1"])
        reordered = cqgen.chain_query(3).project(["x1", "x0"])
        database = cqgen.planted_database(query, 3, 6, seed=1)
        plan = engine.plan(query)
        with pytest.raises(ValueError, match="different query"):
            engine.answer(reordered, database, plan=plan)

    def test_reused_plan_not_rebilled_for_planning(self, engine, cycle_instance):
        query, database = cycle_instance
        plan = engine.plan(query)
        result = engine.answer(query, database, plan=plan)
        # No planning ran on this call; the one-off cost stays on the plan.
        assert result.timings["planning_seconds"] == 0.0
        assert result.timings["total_seconds"] == result.timings["execution_seconds"]
        assert plan.planning_seconds > 0.0


class TestEdgeCases:
    def test_empty_query(self, engine):
        query = ConjunctiveQuery([])
        database = Database()
        assert engine.is_satisfiable(query, database).satisfiable is True
        assert engine.answer(query, database).rows == {()}
        assert engine.count(query, database).count == 1

    def test_missing_relation_means_no_answers(self, engine):
        query = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("Missing", ["y", "z"])])
        database = cqgen.random_database(
            ConjunctiveQuery([Atom("R", ["x", "y"])]), 3, 5, seed=0
        )
        assert engine.is_satisfiable(query, database).satisfiable is False
        assert engine.answer(query, database).rows == set()
        assert engine.count(query, database).count == 0

    def test_boolean_query_counts_zero_or_one(self, engine, cycle_instance):
        query, database = cycle_instance
        boolean = query.as_boolean()
        assert engine.count(boolean, database).count == 1
        empty = cqgen.unsatisfiable_database(query, 3, 5, seed=0)
        assert engine.count(boolean, empty).count == 0

    def test_projected_count_counts_distinct_projections(self, engine):
        query = cqgen.chain_query(3).project(["x0", "x1"])
        database = cqgen.planted_database(query, 3, 8, seed=3)
        result = engine.count(query, database)
        assert result.count == count_answers(query, database)
        assert result.count == len(engine.answer(query, database).rows)


class TestTrivialEdgeCases:
    """Pin the missing-relation fast path's exemptions: the zero-atom query
    and constants-only atoms.  The fast path (`Engine._run`) must never
    short-circuit the empty conjunction — it mentions no relation, so it is
    trivially satisfiable with the single empty-tuple answer on ANY database
    — and constants-only atoms must take the normal path, where the backend
    checks the facts.  All three task semantics have to agree with each
    other, with the naive reference, and under every forceable strategy."""

    def _assert_tasks_agree(self, engine, query, database, expected_rows):
        assert engine.answer(query, database).rows == expected_rows
        assert engine.count(query, database).count == len(expected_rows)
        assert engine.is_satisfiable(query, database).satisfiable == bool(
            expected_rows
        )
        assert naive_enumerate_answers(query, database) == expected_rows
        assert naive_count_answers(query, database) == len(expected_rows)

    def _forceable_strategies(self, engine, query):
        plans = []
        for strategy in registered_strategies():
            try:
                plans.append(engine.plan(query, force_strategy=strategy))
            except ValueError:
                continue
        return plans

    def test_empty_body_query_on_any_database(self, engine):
        query = ConjunctiveQuery([])
        for database in (Database(), cqgen.random_database(cqgen.chain_query(2), 4, 8)):
            self._assert_tasks_agree(engine, query, database, {()})

    def test_empty_body_query_only_forces_trivial(self, engine):
        query = ConjunctiveQuery([])
        plans = self._forceable_strategies(engine, query)
        assert [plan.strategy for plan in plans] == ["trivial"]
        database = Database()
        for plan in plans:
            assert engine.answer(query, database, plan=plan).rows == {()}
            assert engine.count(query, database, plan=plan).count == 1
            assert engine.is_satisfiable(query, database, plan=plan).satisfiable

    def test_constants_only_query_fact_present(self, engine):
        database = Database()
        database.add_fact("R", (1, 2))
        query = ConjunctiveQuery([Atom("R", [Constant(1), Constant(2)])])
        self._assert_tasks_agree(engine, query, database, {()})
        for plan in self._forceable_strategies(engine, query):
            assert engine.answer(query, database, plan=plan).rows == {()}
            assert engine.count(query, database, plan=plan).count == 1

    def test_constants_only_query_fact_absent(self, engine):
        database = Database()
        database.add_fact("R", (1, 2))
        query = ConjunctiveQuery([Atom("R", [Constant(2), Constant(1)])])
        self._assert_tasks_agree(engine, query, database, set())
        for plan in self._forceable_strategies(engine, query):
            assert engine.answer(query, database, plan=plan).rows == set()
            assert engine.count(query, database, plan=plan).count == 0
            assert not engine.is_satisfiable(query, database, plan=plan).satisfiable

    def test_constants_only_query_missing_relation(self, engine):
        database = Database()
        database.add_fact("R", (1, 2))
        query = ConjunctiveQuery([Atom("S", [Constant(1)])])
        self._assert_tasks_agree(engine, query, database, set())

    def test_mixed_constants_and_variables_with_missing_relation(self, engine):
        database = Database()
        database.add_fact("R", (1, 2))
        query = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("S", [Constant(1)])]
        )
        self._assert_tasks_agree(engine, query, database, set())

    def test_zero_atom_query_through_the_batch_and_sharded_paths(self):
        from repro.engine import EngineSession

        session = EngineSession()
        query = ConjunctiveQuery([])
        database = Database()
        batch = session.answer_many([query, query], database)
        assert [result.rows for result in batch] == [{()}, {()}]
        sharded = session.answer(query, database, shards=4)
        assert sharded.rows == {()}
        assert session.count(query, database, shards=4).count == 1
        assert session.is_satisfiable(query, database, shards=4).satisfiable


class TestPublicSurface:
    def test_top_level_reexports(self, cycle_instance):
        query, database = cycle_instance
        assert repro.answer(query, database).rows == repro.engine.answer(query, database).rows
        assert repro.is_satisfiable(query, database).satisfiable is True
        assert repro.count(query, database).count > 0
        assert repro.plan_query(query).strategy == "ghd-guided"

    def test_cq_reexports(self, cycle_instance):
        from repro import cq

        query, database = cycle_instance
        assert cq.answer(query, database).rows == repro.answer(query, database).rows


class TestBackendRegistry:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="no backend registered"):
            backend_for("nonexistent-strategy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("trivial", EvaluationBackend())

    def test_custom_backend_dispatch(self, engine, cycle_instance):
        query, database = cycle_instance

        class EchoBackend(EvaluationBackend):
            name = "echo-test"

            def boolean(self, query, database, plan):
                return True

            def answers(self, query, database, plan):
                return {("echo",)}

            def count(self, query, database, plan):
                return 42

        register_backend("echo-test", EchoBackend(), replace=True)
        try:
            plan = Plan(
                strategy="echo-test",
                query=query,
                analysis=None,
                decomposition=None,
                width=None,
                rationale="test backend",
            )
            assert engine.answer(query, database, plan=plan).rows == {("echo",)}
            assert engine.count(query, database, plan=plan).count == 42
        finally:
            unregister_backend("echo-test")
