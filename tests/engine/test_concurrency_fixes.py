"""Concurrency/lifetime regressions exposed by the query service front door.

Four bugfixes, each with a test that fails on the pre-fix code:

* ``ProcessRuntime._token_for`` retained every database it ever tokenised
  (strong refs in the token map) — now weakrefs plus an id-reuse guard;
* ``LRUCache`` raced under concurrent access — now every operation locks;
* ``runtime_for`` handed out **closed** shared runtimes after
  ``shutdown_runtimes`` (or any ``close()``) — now lazily revived;
* ``isolated_session`` unconditionally restored the previous default on
  exit, clobbering a default swapped mid-block — now a CAS restore.

Plus the cancellation layer the service's deadlines hang off:
``CancellationToken`` / ``RunCancelled`` through every runtime and the
session fan-out paths.
"""

import gc
import threading
import time
import weakref

import pytest

from repro.cq import generators as cqgen
from repro.cq.database import Database
from repro.engine import (
    CancellationToken,
    EngineSession,
    InlineRuntime,
    ProcessRuntime,
    RunCancelled,
    RuntimeTask,
    ThreadRuntime,
    restore_default_session,
    runtime_for,
)
from repro.engine.analysis import LRUCache
from repro.engine.runtime import shutdown_runtimes
from repro.engine.session import (
    default_session,
    isolated_session,
    set_default_session,
)
import repro.engine.runtime as runtime_module


def _database(seed: int = 0, tuples: int = 40) -> Database:
    query = cqgen.chain_query(3)
    return cqgen.random_database(query, 8, tuples, seed=seed)


# ----------------------------------------------------------------------
# Satellite 1: the token map must not retain databases
# ----------------------------------------------------------------------
class TestTokenRetention:
    def test_token_map_does_not_retain_databases(self):
        runtime = ProcessRuntime(max_workers=1)
        database = _database(seed=1)
        token = runtime._token_for(database)
        assert runtime._token_for(database) == token  # stable while alive
        ref = weakref.ref(database)
        del database
        gc.collect()
        # Pre-fix: the strong ref in _datasets kept every served database
        # alive for the runtime's lifetime (unbounded in a long-lived
        # service process).
        assert ref() is None

    def test_dead_entry_with_recycled_key_mints_fresh_token(self):
        """A new database whose ``id`` collides with a dead entry must not
        inherit the dead entry's token (a worker could still hold that
        token's *old* rows resident)."""
        runtime = ProcessRuntime(max_workers=1)
        database = _database(seed=2)
        key = id(database)
        stale = "ds-stale"
        # Install a dead entry under this database's exact key, with
        # routing state the retirement must clean up.
        runtime._datasets[key] = (stale, weakref.ref(Database()))
        gc.collect()
        runtime._owner[stale] = 0
        token = runtime._token_for(database)
        assert token != stale
        assert stale not in runtime._owner
        # The live entry now answers for the key.
        assert runtime._token_for(database) == token

    def test_eviction_still_bounded(self):
        runtime = ProcessRuntime(max_workers=1, max_datasets=4)
        keep = [_database(seed=10 + i, tuples=5) for i in range(8)]
        for database in keep:
            runtime._token_for(database)
        assert len(runtime._datasets) <= 4


# ----------------------------------------------------------------------
# Satellite 2: LRUCache must survive concurrent use
# ----------------------------------------------------------------------
class TestLRUCacheThreadSafety:
    def test_concurrent_hammer(self):
        cache = LRUCache(8)
        errors = []
        barrier = threading.Barrier(6)

        def hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=10)
                for i in range(2500):
                    key = (worker + i) % 24
                    op = i % 7
                    if op in (0, 1, 2):
                        cache.put(key, i)
                    elif op in (3, 4):
                        cache.get(key)
                    elif op == 5:
                        key in cache
                        len(cache)
                        cache.info()
                        cache.snapshot()
                    else:
                        if i % 500 == 0:
                            cache.clear()
            except Exception as exc:  # pre-fix: KeyError/RuntimeError races
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert len(cache) <= 8
        info = cache.info()
        assert info["size"] == len(cache)

    def test_snapshot_is_point_in_time_copy(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        snap = cache.snapshot()
        cache.put("c", 3)
        assert snap == [("a", 1), ("b", 2)]


# ----------------------------------------------------------------------
# Satellite 3: the registry must never hand out a closed runtime
# ----------------------------------------------------------------------
class TestRuntimeRegistryRevival:
    def test_close_marks_instance(self):
        runtime = ThreadRuntime(max_workers=1)
        assert not runtime.closed
        runtime.close()
        assert runtime.closed

    def test_runtime_for_revives_closed_shared_instance(self):
        first = runtime_for("thread")
        first.close()
        second = runtime_for("thread")
        # Pre-fix: `second is first` — a dead runtime handed to every
        # subsequent caller.
        assert second is not first
        assert not second.closed
        assert runtime_for("thread") is second

    def test_usable_after_shutdown_runtimes(self):
        runtime_for("inline")
        shutdown_runtimes()
        with runtime_module._registry_lock:
            assert runtime_module._SHARED.get("inline") is None
        revived = runtime_for("inline")
        assert not revived.closed
        tasks = [RuntimeTask("answer", cqgen.chain_query(2), None, label="t")]
        outcomes = revived.run(tasks, lambda task: task.label)
        assert [o.value for o in outcomes] == ["t"]

    def test_session_call_after_shared_close(self):
        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 6, 30, seed=3)
        session = EngineSession()
        expected = session.answer(query, database).rows
        runtime_for("thread").close()
        result = session.answer(query, database, shards=2, runtime="thread")
        assert result.rows == expected


# ----------------------------------------------------------------------
# Satellite 4: isolated_session must restore with compare-and-swap
# ----------------------------------------------------------------------
class TestIsolatedSessionRestore:
    def setup_method(self):
        self._saved = set_default_session(None)

    def teardown_method(self):
        set_default_session(self._saved)

    def test_plain_block_restores_previous_default(self):
        outer = default_session()
        with isolated_session() as session:
            assert default_session() is session
            assert session is not outer
        assert default_session() is outer

    def test_default_swapped_mid_block_is_not_clobbered(self):
        default_session()
        replacement = EngineSession()
        with isolated_session() as session:
            assert default_session() is session
            set_default_session(replacement)
        # Pre-fix: exit blindly reinstated the pre-block default, silently
        # reviving a session the process had moved away from.
        assert default_session() is replacement

    def test_restore_reports_whether_it_swapped(self):
        original = default_session()
        mine = EngineSession()
        previous = set_default_session(mine)
        assert previous is original
        assert restore_default_session(mine, previous)
        assert default_session() is original
        # Now the default is `original`, not `mine`: CAS must refuse.
        assert not restore_default_session(mine, previous)
        assert default_session() is original


# ----------------------------------------------------------------------
# Cancellation: the seam the service's deadlines hang off
# ----------------------------------------------------------------------
class TestCancellation:
    def _tasks(self, count: int):
        query = cqgen.chain_query(2)
        return [
            RuntimeTask("answer", query, None, label=f"t{i}") for i in range(count)
        ]

    def test_token_raises_once_fired(self):
        token = CancellationToken()
        token.raise_if_cancelled()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        with pytest.raises(RunCancelled):
            token.raise_if_cancelled()

    def test_inline_stops_between_tasks(self):
        token = CancellationToken()
        executed = []

        def run_local(task):
            executed.append(task.label)
            token.cancel()
            return task.label

        with pytest.raises(RunCancelled):
            InlineRuntime().run(self._tasks(5), run_local, cancel=token)
        assert executed == ["t0"]

    def test_thread_runtime_cancels_queued_work_and_stays_usable(self):
        runtime = ThreadRuntime(max_workers=2)
        token = CancellationToken()
        executed = []
        lock = threading.Lock()

        def run_local(task):
            with lock:
                executed.append(task.label)
            if task.label == "t0":
                token.cancel()
            time.sleep(0.01)
            return task.label

        with pytest.raises(RunCancelled):
            runtime.run(self._tasks(12), run_local, parallel=2, cancel=token)
        # Queued tasks were cancelled: nowhere near all 12 ran.
        assert 0 < len(executed) < 12
        # The per-call pool was shut down cleanly; the runtime still works.
        outcomes = runtime.run(self._tasks(3), lambda task: task.label)
        assert [o.value for o in outcomes] == ["t0", "t1", "t2"]

    def test_pre_fired_token_skips_all_work(self):
        token = CancellationToken()
        token.cancel()
        for runtime in (
            InlineRuntime(),
            ThreadRuntime(max_workers=2),
            ProcessRuntime(max_workers=1),
        ):
            with pytest.raises(RunCancelled):
                runtime.run(
                    self._tasks(3),
                    lambda task: pytest.fail("must not execute"),
                    cancel=token,
                )
        # The process runtime never even spawned its pool.

    def test_process_runtime_mid_run_cancel(self):
        query = cqgen.hub_cycle_query(5)
        database = cqgen.random_database(query, 14, 700, seed=7)
        tasks = [
            RuntimeTask("count", query, database, label=f"c{i}") for i in range(24)
        ]
        runtime = ProcessRuntime(max_workers=1)
        try:
            token = CancellationToken()
            # Fire while the single worker is still grinding through the
            # queue (each count takes far longer than 20ms here).
            timer = threading.Timer(0.05, token.cancel)
            timer.start()
            try:
                with pytest.raises(RunCancelled):
                    runtime.run(tasks, None, cancel=token)
            finally:
                timer.cancel()
            assert runtime.tasks_cancelled > 0
            # Drained, not orphaned: the runtime still answers.
            outcomes = runtime.run(tasks[:2], None)
            assert len(outcomes) == 2
        finally:
            runtime.close()

    def test_session_sharded_call_cancels(self):
        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 6, 30, seed=5)
        session = EngineSession()
        token = CancellationToken()
        token.cancel()
        with pytest.raises(RunCancelled):
            session.answer(query, database, shards=2, cancel=token)
        with pytest.raises(RunCancelled):
            session.answer_many([query], database, cancel=token)
        # A fresh call without a token is unaffected.
        assert session.answer(query, database, shards=2).rows == session.answer(
            query, database
        ).rows

    def test_old_style_runtime_without_cancel_still_works(self):
        """Third-party runtimes with the pre-cancellation ``run`` signature
        must keep working for calls that pass no token."""

        class OldStyle(InlineRuntime):
            name = "old-style"

            def run(self, tasks, run_local, parallel=None):  # no cancel
                return super().run(tasks, run_local, parallel=parallel)

        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 6, 30, seed=6)
        session = EngineSession()
        expected = session.answer(query, database).rows
        result = session.answer(query, database, shards=2, runtime=OldStyle())
        assert result.rows == expected
