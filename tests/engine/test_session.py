"""EngineSession: session-scoped plan caching, isomorphism dedup, batch
execution (sequential and parallel), and the default-session machinery
behind the module-level API."""

import threading

import pytest

import repro.engine as engine_module
from repro.cq import Atom, ConjunctiveQuery, Database
from repro.cq.query import Constant
from repro.cq import generators as cqgen
from repro.cq import workloads
from repro.cq.homomorphism import naive_count_answers, naive_enumerate_answers
from repro.engine import (
    EngineSession,
    answer_many,
    canonical_query_key,
    default_session,
    isolated_session,
    set_default_session,
)


@pytest.fixture
def session():
    return EngineSession()


@pytest.fixture
def cycle_instance():
    query = cqgen.cycle_query(4)
    return query, cqgen.grid_constraint_database(query, colours=3)


def renamed(query, suffix="_r"):
    """A structurally isomorphic copy: every variable renamed."""
    atoms = [
        Atom(atom.relation, [f"{t}{suffix}" for t in atom.terms])
        for atom in query.atoms
    ]
    return ConjunctiveQuery(
        atoms, free_variables=[f"{v}{suffix}" for v in query.free_variables]
    )


class TestCanonicalQueryKey:
    def test_identical_queries_collide(self):
        assert canonical_query_key(cqgen.chain_query(3)) == canonical_query_key(
            cqgen.chain_query(3)
        )

    def test_variable_renaming_collides(self):
        query = cqgen.cycle_query(5)
        assert canonical_query_key(query) == canonical_query_key(renamed(query))

    def test_atom_order_is_irrelevant(self):
        # Same head order (the default head of `forward` is atom-order
        # dependent, so `backward` pins it explicitly): only the atom
        # *listing* differs, and the key ignores it.
        forward = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        backward = ConjunctiveQuery(
            [Atom("S", ["b", "c"]), Atom("R", ["a", "b"])],
            free_variables=["a", "b", "c"],
        )
        assert canonical_query_key(forward) == canonical_query_key(backward)

    def test_default_heads_of_reordered_atoms_separate(self):
        # Full queries inherit their head order from the atom listing, so
        # reordering atoms changes the answer-column order: no collision.
        forward = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        backward = ConjunctiveQuery([Atom("S", ["b", "c"]), Atom("R", ["a", "b"])])
        assert canonical_query_key(forward) != canonical_query_key(backward)

    def test_free_variable_order_separates(self):
        # Answer tuples follow the head order: these are different queries.
        query = cqgen.chain_query(2)
        swapped = query.project(["x1", "x0"])
        assert canonical_query_key(query.project(["x0", "x1"])) != canonical_query_key(
            swapped
        )

    def test_relation_names_separate(self):
        first = ConjunctiveQuery([Atom("R", ["x", "y"])])
        second = ConjunctiveQuery([Atom("S", ["x", "y"])])
        assert canonical_query_key(first) != canonical_query_key(second)

    def test_constants_separate(self):
        first = ConjunctiveQuery([Atom("R", ["x", Constant(1)])])
        second = ConjunctiveQuery([Atom("R", ["x", Constant(2)])])
        third = ConjunctiveQuery([Atom("R", ["x", Constant(1)])])
        assert canonical_query_key(first) != canonical_query_key(second)
        assert canonical_query_key(first) == canonical_query_key(third)

    def test_self_join_falls_back_to_exact(self):
        # Renaming a self-join query is NOT recognised (graph canonisation),
        # but exact repeats still collide.
        query = cqgen.zigzag_cycle_query(4)
        assert canonical_query_key(query) == canonical_query_key(
            cqgen.zigzag_cycle_query(4)
        )
        assert canonical_query_key(query)[0] == "exact"
        assert canonical_query_key(query) != canonical_query_key(renamed(query))


class TestPlanCache:
    def test_repeat_plan_is_served_from_cache(self, session):
        query = cqgen.cycle_query(4)
        first = session.plan(query)
        second = session.plan(query)
        assert second is first
        assert session.plan_cache.hits == 1
        assert session.plan_cache.misses == 1

    def test_rebuilt_query_hits_too(self, session):
        first = session.plan(cqgen.cycle_query(4))
        second = session.plan(cqgen.cycle_query(4))
        assert second is first

    def test_options_are_part_of_the_key(self, session):
        query = cqgen.zigzag_cycle_query(4)
        plain = session.plan(query)
        semantic = session.plan(query, use_core=True)
        forced = session.plan(query, force_strategy="indexed-backtracking")
        assert plain is not semantic
        assert plain is not forced
        assert semantic.strategy == "direct-yannakakis"
        assert plain.strategy == "ghd-guided"

    def test_projection_order_is_part_of_the_key(self, session):
        query = cqgen.chain_query(2)
        assert session.plan(query.project(["x0", "x1"])) is not session.plan(
            query.project(["x1", "x0"])
        )

    def test_warm_call_does_not_rebill_cold_planning(self, session, cycle_instance):
        query, database = cycle_instance
        cold = session.answer(query, database)
        warm = session.answer(query, database)
        assert warm.plan is cold.plan
        # The cold call paid (and reported) the real analysis+planning cost;
        # the warm call only did a cache lookup and must not re-report the
        # plan's one-off cost as its own.
        assert cold.timings["planning_seconds"] > 0.0
        assert warm.timings["planning_seconds"] < cold.plan.planning_seconds

    def test_clear_cache_drops_all_session_caches(self, session):
        session.plan(cqgen.zigzag_cycle_query(4), use_core=True)
        assert len(session.plan_cache) > 0
        session.clear_cache()
        assert len(session.plan_cache) == 0
        assert len(session.core_cache) == 0
        assert session.cache_info()["size"] == 0


class TestAnswerMany:
    def test_results_align_with_input_order(self, session):
        chain = cqgen.chain_query(2)
        cycle = cqgen.cycle_query(4)
        database = cqgen.grid_constraint_database(
            ConjunctiveQuery(chain.atoms + cycle.atoms), colours=3
        )
        results = session.answer_many([cycle, chain, cycle], database)
        assert len(results) == 3
        assert results[0].rows == session.answer(cycle, database).rows
        assert results[1].rows == session.answer(chain, database).rows
        # The duplicate is deduplicated (same payload, same plan) but NOT
        # aliased: it is its own result object, marked with the batch index
        # of the representative that actually executed.
        assert results[2] is not results[0]
        assert results[2].rows == results[0].rows
        assert results[2].plan is results[0].plan
        assert results[2].timings["dedup_of"] == 0

    def test_isomorphic_queries_deduplicate_without_aliasing(
        self, session, cycle_instance
    ):
        query, database = cycle_instance
        results = session.answer_many([query, renamed(query)], database)
        assert results[0] is not results[1]
        assert results[0].rows == results[1].rows
        assert session.dedup_hits == 1
        assert results[0].rows == naive_enumerate_answers(query, database)

    def test_mutating_one_result_leaves_siblings_intact(self, session, cycle_instance):
        # Regression: results of one dedup class used to be the SAME object,
        # so a caller post-processing one query's rows corrupted the others.
        query, database = cycle_instance
        expected = naive_enumerate_answers(query, database)
        results = session.answer_many(
            [query, renamed(query), renamed(query, "_s")], database
        )
        results[0].rows.clear()
        assert results[1].rows == expected
        assert results[2].rows == expected
        results[1].rows.add(("sentinel",) * len(query.free_variables))
        assert results[2].rows == expected

    def test_duplicates_do_not_rebill_execution_time(self, session, cycle_instance):
        # Regression: every duplicate used to report the representative's
        # execution_seconds as its own, double-counting any latency
        # accounting summed over a batch.
        query, database = cycle_instance
        results = session.answer_many([query, renamed(query)], database)
        representative, duplicate = results
        assert "dedup_of" not in representative.timings
        assert duplicate.timings["dedup_of"] == 0
        assert duplicate.timings["execution_seconds"] == 0.0
        assert duplicate.timings["total_seconds"] == 0.0

    def test_self_join_duplicates_still_evaluate_correctly(self, session):
        query = cqgen.zigzag_cycle_query(4, free_variables=["x0", "x1"])
        database = cqgen.random_database(query, 5, 14, seed=3)
        results = session.answer_many([query, renamed(query)], database)
        # Not recognised as isomorphic (self-joins) — but both must be right.
        assert results[0] is not results[1]
        assert results[0].rows == results[1].rows == naive_enumerate_answers(
            query, database
        )

    def test_parallel_matches_sequential(self, session):
        queries, database = workloads.mixed_batch(seed=11, copies=3, distinct=8)
        sequential = session.answer_many(queries, database, parallel=1)
        parallel = EngineSession().answer_many(queries, database, parallel=4)
        assert [r.rows for r in sequential] == [r.rows for r in parallel]

    def test_count_and_satisfiable_batches(self, session, cycle_instance):
        query, database = cycle_instance
        counts = session.count_many([query, renamed(query)], database)
        sats = session.is_satisfiable_many([query], database)
        rows = session.answer_many([query], database)[0].rows
        assert counts[0].count == len(rows)
        assert counts[0] is not counts[1]
        assert counts[0].count == counts[1].count
        assert counts[1].timings["dedup_of"] == 0
        assert sats[0].satisfiable == bool(rows)

    def test_use_core_batch_matches_plain(self, session):
        query = cqgen.zigzag_cycle_query(6)
        database = cqgen.random_database(query, 5, 14, seed=5)
        plain = session.answer_many([query], database)[0]
        semantic = session.answer_many([query], database, use_core=True)[0]
        assert plain.rows == semantic.rows
        assert semantic.strategy == "direct-yannakakis"
        assert plain.strategy != semantic.strategy

    def test_missing_relation_means_empty(self, session):
        query = cqgen.chain_query(2)
        database = cqgen.random_database(cqgen.chain_query(1), 4, 8, seed=0)
        result = session.answer_many([query], database)[0]
        assert result.rows == set()

    def test_empty_batch(self, session, cycle_instance):
        assert session.answer_many([], cycle_instance[1]) == []

    def test_parallel_validated(self, session, cycle_instance):
        query, database = cycle_instance
        with pytest.raises(ValueError, match="parallel"):
            session.answer_many([query], database, parallel=0)

    def test_non_query_rejected(self, session, cycle_instance):
        with pytest.raises(TypeError, match="ConjunctiveQuery"):
            session.answer_many(["not a query"], cycle_instance[1])

    def test_stats_shape(self, session, cycle_instance):
        query, database = cycle_instance
        session.answer_many([query, query], database)
        stats = session.stats()
        assert stats["batches"] == 1
        assert stats["dedup_hits"] == 1
        assert stats["plan_cache"]["misses"] == 1
        for key in ("analysis_cache", "core_cache", "plan_cache"):
            assert set(stats[key]) == {"size", "maxsize", "hits", "misses"}

    def test_shared_session_is_thread_safe(self, session):
        queries, database = workloads.mixed_batch(seed=2, copies=2, distinct=6)
        expected = [r.rows for r in EngineSession().answer_many(queries, database)]
        outcomes = {}

        def worker(tag):
            outcomes[tag] = session.answer_many(queries, database, parallel=2)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for results in outcomes.values():
            assert [r.rows for r in results] == expected


class TestAnalyzeThreadSafety:
    def test_analyze_serializes_on_the_session_lock(self, session):
        # Regression: the inherited Engine.analyze mutated the analysis
        # cache outside the session lock.  The override must hold it.
        query = cqgen.cycle_query(4)

        class TrackingLock:
            def __init__(self, inner):
                self.inner = inner
                self.entries = 0

            def __enter__(self):
                self.entries += 1
                return self.inner.__enter__()

            def __exit__(self, *exc):
                return self.inner.__exit__(*exc)

        tracking = TrackingLock(session._lock)
        session._lock = tracking
        try:
            session.analyze(query)
        finally:
            session._lock = tracking.inner
        assert tracking.entries, "analyze() never took the session lock"

    def test_concurrent_analyze_and_answer_many_stress(self, session):
        # Hammer one session from analysis threads and batch threads at
        # once: the tiny cache forces constant LRU eviction, so an
        # unsynchronized analyze would race the planner's cache mutations.
        stress = EngineSession(cache_size=4)
        queries, database = workloads.mixed_batch(seed=5, copies=2, distinct=8)
        analysis_targets = [
            cqgen.cycle_query(n) for n in (4, 5, 6)
        ] + [cqgen.chain_query(n) for n in (2, 3, 4)] + [cqgen.star_query(3)]
        expected = [r.rows for r in EngineSession().answer_many(queries, database)]
        errors = []
        batch_outcomes = {}

        def analyzer(tag):
            try:
                for _ in range(10):
                    for target in analysis_targets:
                        analysis = stress.analyze(target)
                        assert analysis is not None
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append((tag, exc))

        def batcher(tag):
            try:
                batch_outcomes[tag] = stress.answer_many(
                    queries, database, parallel=2
                )
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append((tag, exc))

        threads = [
            threading.Thread(target=analyzer, args=(f"a{i}",)) for i in range(3)
        ] + [threading.Thread(target=batcher, args=(f"b{i}",)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for results in batch_outcomes.values():
            assert [r.rows for r in results] == expected


class TestShardedExecution:
    def test_sharded_answer_count_satisfiable_agree(self, session):
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, 8, 60, seed=9)
        expected = naive_enumerate_answers(query, database)
        for shards in (1, 2, 4, 8):
            result = session.answer(query, database, shards=shards)
            assert result.rows == expected
            assert session.count(query, database, shards=shards).count == len(expected)
            assert session.is_satisfiable(
                query, database, shards=shards
            ).satisfiable == bool(expected)

    def test_sharded_timings_and_rationale_record_the_mode(self, session):
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, 8, 60, seed=9)
        result = session.answer(query, database, shards=4)
        record = result.sharding
        assert record["mode"] == "co-partitioned"
        assert record["shard_variable"] == "h"
        assert record["shards"] == 4
        assert len(record["per_shard_seconds"]) == 4
        assert record["broadcast_relations"] == []
        assert "sharding:" in result.plan.rationale
        # The session's cached plan must NOT accumulate sharding notes.
        assert "sharding:" not in session.plan(query).rationale

    def test_broadcast_fallback_records_replicated_relations(self, session):
        query = cqgen.cycle_query(5)
        database = cqgen.random_database(query, 8, 40, seed=4)
        result = session.answer(query, database, shards=4, shard_variable="x0")
        assert result.rows == naive_enumerate_answers(query, database)
        record = result.sharding
        assert record["mode"] == "broadcast"
        assert set(record["broadcast_relations"]) == {"R1", "R2", "R3"}

    def test_existential_shard_variable_counts_via_union(self, session):
        query = cqgen.hub_cycle_query(4).as_boolean()
        database = cqgen.random_database(query, 8, 60, seed=9)
        result = session.count(query, database, shards=4)
        assert result.count == naive_count_answers(query, database)
        assert result.sharding["count_via"] == "union"
        free = cqgen.hub_cycle_query(4)
        full = session.count(free, database, shards=4)
        assert full.sharding["count_via"] == "sum"
        assert full.count == naive_count_answers(free, database)

    def test_unshardable_queries_fall_back_to_single_shard(self, session):
        no_atoms = ConjunctiveQuery([])
        database = Database()
        result = session.answer(no_atoms, database, shards=4)
        assert result.rows == {()}
        assert result.sharding["mode"] == "single-shard"
        assert result.sharding["shards"] == 1

    def test_unknown_shard_variable_rejected(self, session):
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, 5, 10, seed=0)
        with pytest.raises(ValueError, match="does not occur"):
            session.answer(query, database, shards=2, shard_variable="nope")
        with pytest.raises(ValueError, match="shards"):
            session.answer(query, database, shards=0)
        # parallel is validated up front, on every path — including the
        # single-shard fallback and the unsharded fast path.
        with pytest.raises(ValueError, match="parallel"):
            session.answer(query, database, shards=4, parallel=0)
        with pytest.raises(ValueError, match="parallel"):
            session.answer(ConjunctiveQuery([]), database, shards=4, parallel=0)
        with pytest.raises(ValueError, match="parallel"):
            session.answer(query, database, parallel=0)
        with pytest.raises(ValueError, match="parallel"):
            session.count(query, database, parallel=-1)

    def test_sharded_missing_relation_is_empty(self, session):
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(cqgen.hub_cycle_query(3), 5, 10, seed=0)
        result = session.answer(query, database, shards=4)
        assert result.rows == set()
        assert session.is_satisfiable(query, database, shards=4).satisfiable is False

    def test_sharded_use_core_matches_plain(self, session):
        query = cqgen.zigzag_cycle_query(6, free_variables=["x0", "x1"])
        database = cqgen.random_database(query, 5, 14, seed=5)
        expected = naive_enumerate_answers(query, database)
        result = session.answer(query, database, shards=4, use_core=True)
        assert result.rows == expected
        # An explicitly requested variable the core folds away degrades to
        # single-shard instead of raising.
        folded = session.answer(
            query, database, shards=4, use_core=True, shard_variable="x3"
        )
        assert folded.rows == expected
        assert folded.sharding["mode"] == "single-shard"

    def test_sharded_with_prebuilt_plan(self, session):
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, 8, 40, seed=2)
        plan = session.plan(query)
        result = session.answer(query, database, plan=plan, shards=4)
        assert result.rows == naive_enumerate_answers(query, database)
        with pytest.raises(ValueError, match="use_core"):
            session.answer(query, database, plan=plan, use_core=True, shards=4)


class TestDefaultSession:
    def test_module_api_delegates_to_default_session(self, cycle_instance):
        query, database = cycle_instance
        with isolated_session() as session:
            engine_module.answer(query, database)
            assert session.cache_info()["misses"] == 1
            assert default_session() is session

    def test_answer_many_module_level(self, cycle_instance):
        query, database = cycle_instance
        with isolated_session() as session:
            results = answer_many([query, query], database)
            assert results[0].rows == results[1].rows
            assert results[1].timings["dedup_of"] == 0
            assert session.batches == 1

    def test_isolated_session_restores_previous(self):
        before = default_session()
        with isolated_session():
            assert default_session() is not before
        assert default_session() is before

    def test_set_default_session_roundtrip(self):
        replacement = EngineSession()
        previous = set_default_session(replacement)
        try:
            assert default_session() is replacement
        finally:
            set_default_session(previous)

    def test_default_engine_alias_is_the_default_session(self):
        assert engine_module.DEFAULT_ENGINE is default_session()
