"""Tests for the engine's analysis cache: memoization keyed on the
hypergraph's structural identity/hash, copy-on-write invalidation (a derived
hypergraph never reuses a stale decomposition), LRU bounds, and the lazy ghw
search.

Mirrors :mod:`tests.cq.test_relational_indexes` one layer up: there the
memoized key indexes must be dropped on mutation; here the memoized
decompositions must never be served for a structurally different hypergraph.
"""

import pytest

from repro.cq import generators as cqgen
from repro.engine import (
    AnalysisCache,
    Engine,
    EngineSession,
    backend_for,
    register_backend,
)
from repro.hypergraphs import Hypergraph


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def triangle():
    return Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"a", "c"}])


@pytest.fixture
def path():
    return Hypergraph(edges=[{"a", "b"}, {"b", "c"}, {"c", "d"}])


class TestMemoization:
    def test_analysis_is_memoized(self, engine, triangle):
        first = engine.analyze(triangle)
        second = engine.analyze(triangle)
        assert first is second
        info = engine.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_structurally_equal_hypergraphs_share_one_analysis(self, engine):
        # A repeated query rebuilt per request hits the cache: the key is the
        # hypergraph's structural hash, not object identity.
        first = engine.analyze(Hypergraph(edges=[{"x", "y"}, {"y", "z"}]))
        second = engine.analyze(Hypergraph(edges=[{"y", "z"}, {"x", "y"}]))
        assert first is second

    def test_decomposition_is_computed_once(self, engine, triangle):
        first = engine.analyze(triangle).ghw_bounds
        second = engine.analyze(triangle).ghw_bounds
        assert first is second
        assert first.decomposition.is_valid_for(triangle)


class TestCopyOnWriteInvalidation:
    """Derived hypergraphs are new structural keys: no stale decompositions."""

    def test_add_edge_gets_fresh_analysis(self, engine, path):
        stale = engine.analyze(path)
        derived = path.add_edge({"d", "a"})  # close the path into a cycle
        fresh = engine.analyze(derived)
        assert fresh is not stale
        assert stale.is_acyclic and not fresh.is_acyclic
        assert fresh.ghw_bounds.decomposition.is_valid_for(derived)

    def test_delete_vertex_gets_fresh_analysis(self, engine, triangle):
        stale = engine.analyze(triangle)
        stale_ghd = stale.ghw_bounds.decomposition
        derived = triangle.delete_vertex("a")
        fresh = engine.analyze(derived)
        assert fresh is not stale
        # The stale decomposition mentions the deleted vertex: reusing it for
        # the derived hypergraph would be wrong, and the cache never does.
        assert not stale_ghd.is_valid_for(derived)
        assert fresh.join_tree is not None  # the remains are acyclic

    def test_merge_on_vertex_gets_fresh_analysis(self, engine, path):
        stale = engine.analyze(path)
        derived = path.merge_on_vertex("b")
        fresh = engine.analyze(derived)
        assert fresh is not stale
        assert fresh.hypergraph == derived

    def test_original_analysis_survives_derivation(self, engine, path):
        original = engine.analyze(path)
        engine.analyze(path.add_edge({"d", "a"}))
        assert engine.analyze(path) is original


class TestLazyGhw:
    def test_acyclic_analysis_never_searches(self, engine, path):
        analysis = engine.analyze(path)
        assert analysis.join_tree is not None
        assert analysis.ghw_bounds.value == 1
        # Accessing the bounds answered from the join tree: no search ran.
        assert analysis.searched_decomposition is False

    def test_cyclic_analysis_searches_on_first_access(self, engine, triangle):
        analysis = engine.analyze(triangle)
        assert analysis.searched_decomposition is False
        bounds = analysis.ghw_bounds
        assert analysis.searched_decomposition is True
        assert bounds.upper >= 2

    def test_edgeless_hypergraph_has_trivial_bounds(self, engine):
        analysis = engine.analyze(Hypergraph(vertices=["a", "b"]))
        assert analysis.ghw_bounds.upper == 0
        assert analysis.searched_decomposition is False


class TestCacheBounds:
    def test_lru_eviction(self):
        cache = AnalysisCache(maxsize=2)
        first = Hypergraph(edges=[{"a", "b"}])
        second = Hypergraph(edges=[{"b", "c"}])
        third = Hypergraph(edges=[{"c", "d"}])
        cache.get_or_create(first)
        cache.get_or_create(second)
        cache.get_or_create(third)
        assert len(cache) == 2
        assert first not in cache
        assert second in cache and third in cache

    def test_recently_used_survives_eviction(self):
        cache = AnalysisCache(maxsize=2)
        first = Hypergraph(edges=[{"a", "b"}])
        second = Hypergraph(edges=[{"b", "c"}])
        cache.get_or_create(first)
        cache.get_or_create(second)
        cache.get_or_create(first)  # refresh
        cache.get_or_create(Hypergraph(edges=[{"c", "d"}]))
        assert first in cache
        assert second not in cache

    def test_clear(self, engine, triangle):
        engine.analyze(triangle)
        engine.clear_cache()
        assert engine.cache_info()["size"] == 0

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            AnalysisCache(maxsize=0)


class TestSessionPlanCache:
    """One layer above the analysis cache: a session's plan-cache hit must
    skip re-planning entirely, while copy-on-write derived structures must
    still miss both caches (no stale plan can ever be replayed)."""

    def test_plan_cache_hit_skips_replanning(self):
        session = EngineSession()
        query = cqgen.cycle_query(5)
        cold = session.plan(query)
        assert session.plan_cache.misses == 1
        # The cold plan paid for analysis + planning; the repeat must not.
        warm = session.plan(cqgen.cycle_query(5))
        assert warm is cold
        assert session.plan_cache.hits == 1
        # No second analysis happened either: one structural key, one miss.
        assert session.cache_info()["misses"] == 1
        # Re-planning would have re-clocked itself; the cached object still
        # carries the one-off cold timing.
        assert warm.planning_seconds == cold.planning_seconds

    def test_derived_hypergraph_query_misses_plan_cache(self):
        session = EngineSession()
        base = cqgen.chain_query(3)
        stale = session.plan(base)
        assert stale.strategy == "direct-yannakakis"
        # Close the chain into a cycle: a structurally different query.  Both
        # the plan cache and the analysis cache must treat it as fresh.
        from repro.cq import Atom, ConjunctiveQuery

        closed = ConjunctiveQuery(base.atoms + (Atom("R3", ["x3", "x0"]),))
        fresh = session.plan(closed)
        assert fresh is not stale
        assert fresh.strategy != stale.strategy
        assert session.plan_cache.hits == 0
        assert session.plan_cache.misses == 2
        assert session.cache_info()["misses"] == 2
        assert fresh.decomposition.is_valid_for(closed.hypergraph())

    def test_sessions_do_not_share_cache_state(self):
        first = EngineSession()
        second = EngineSession()
        first.plan(cqgen.cycle_query(4))
        assert len(first.plan_cache) == 1
        assert len(second.plan_cache) == 0
        assert second.cache_info()["misses"] == 0


class TestBackendReplacement:
    """register_backend(..., replace=True) against a live session: backends
    resolve at *execution* time by strategy name, so a replacement takes
    effect for every subsequent evaluation — including evaluations replaying
    an already-cached plan — while the cached :class:`Plan` objects
    themselves are immutable records that the swap never mutates."""

    def test_replacement_takes_effect_without_mutating_cached_plans(self):
        session = EngineSession()
        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 5, 30, seed=41)
        cached = session.plan(query)
        strategy = cached.strategy
        before = session.answer(query, database, plan=cached).rows
        original = backend_for(strategy)
        snapshot = (
            cached.strategy,
            cached.query,
            cached.decomposition,
            cached.rationale,
            cached.width,
        )

        class Recording:
            name = strategy
            calls = 0

            def boolean(self, q, d, p):
                return original.boolean(q, d, p)

            def answers(self, q, d, p):
                type(self).calls += 1
                return original.answers(q, d, p)

            def count(self, q, d, p):
                return original.count(q, d, p)

        register_backend(strategy, Recording(), replace=True)
        try:
            # The cached plan object is served unchanged...
            replayed = session.plan(query)
            assert replayed is cached
            # ...but execution — even against the cached plan — dispatches
            # to the replacement.
            assert session.answer(query, database, plan=cached).rows == before
            assert Recording.calls == 1
            assert session.answer(query, database).rows == before
            assert Recording.calls == 2
        finally:
            register_backend(strategy, original, replace=True)
        # The swap (and the swap back) never touched the plan's fields.
        assert (
            cached.strategy,
            cached.query,
            cached.decomposition,
            cached.rationale,
            cached.width,
        ) == snapshot

    def test_replace_false_still_refuses(self):
        strategy = "direct-yannakakis"
        original = backend_for(strategy)
        with pytest.raises(ValueError, match="already registered"):
            register_backend(strategy, original)
