"""Differential conformance harness: every registered engine strategy must
agree with the naive reference solver on the generated scenario workloads.

The workload (:mod:`repro.cq.workloads`) spans the four structural regimes
of the paper — acyclic, bounded-ghw, core-reducible, hard — each over
satisfiable, planted, unsatisfiable, and proper-colouring databases.  For
every scenario this harness runs:

* the planner's *default dispatch* (answer / count / is_satisfiable),
* every strategy in the backend registry that is *forceable* on the
  scenario's structure (forcing Yannakakis on a cyclic query correctly
  raises — that is applicability, not disagreement),
* the semantic ``use_core=True`` route,
* the session *batch* path,
* the *sharded* path at shard counts {1, 2, 4, 8} — the scenario's
  designated shard variable when the workload provides one (the ``sharded``
  regime covers the co-partitioned and broadcast rungs by construction),
  the engine's automatic choice otherwise, with a hypothesis property that
  fresh-seed results are invariant in the shard count,
* and **every registered execution runtime** (inline / thread / process) at
  shard counts {1, 2, 4} over a per-regime representative slice of the
  scenarios — all three answer tasks, every regime, every database
  flavour, with the process pass running on real worker processes,

and asserts bit-for-bit agreement with the naive linear-scan solver.

Seeds are parametrized: set ``WORKLOAD_SEEDS=3,4,5`` to point CI at fresh
scenarios — any failure reproduces locally from the seed in the test id.
``make workload-smoke`` runs the single-seed variant.
"""

import functools
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cq import workloads
from repro.cq.homomorphism import naive_count_answers, naive_enumerate_answers
from repro.engine import (
    ColumnarBackend,
    EngineSession,
    ProcessRuntime,
    RUNTIME_PROCESS,
    SHARD_MODE_BROADCAST,
    SHARD_MODE_COPARTITIONED,
    STRATEGY_GHD,
    STRATEGY_TRIVIAL,
    STRATEGY_YANNAKAKIS,
    backend_for,
    registered_runtimes,
    registered_strategies,
    runtime_for,
    sharding_spec,
)


def _seeds() -> list[int]:
    raw = os.environ.get("WORKLOAD_SEEDS", "0,1")
    return [int(part) for part in raw.split(",") if part.strip() != ""]


SEEDS = _seeds()
SCENARIOS = [
    (seed, scenario)
    for seed in SEEDS
    for scenario in workloads.generate_workload(seed=seed, size="small")
]


@pytest.fixture(scope="module")
def session():
    # One session for the whole harness: the differential pass doubles as a
    # soak test of the shared analysis/plan caches across many queries.
    return EngineSession()


def _forceable_strategies(session, query):
    """Every registered strategy the planner accepts for this query."""
    strategies = []
    for strategy in registered_strategies():
        if strategy == STRATEGY_TRIVIAL and query.atoms:
            continue
        try:
            session.plan(query, force_strategy=strategy)
        except ValueError:
            continue
        strategies.append(strategy)
    return strategies


@pytest.mark.parametrize(
    "seed,scenario", SCENARIOS, ids=[s.name for _, s in SCENARIOS]
)
def test_all_strategies_agree_with_naive(session, seed, scenario):
    query, database = scenario.query, scenario.database
    expected_rows = naive_enumerate_answers(query, database)
    expected_count = naive_count_answers(query, database)
    assert expected_count == len(expected_rows)

    # Default dispatch.
    assert session.answer(query, database).rows == expected_rows, scenario.name
    assert session.count(query, database).count == expected_count
    assert session.is_satisfiable(query, database).satisfiable == bool(expected_rows)

    # Every forceable registered strategy.
    forced = _forceable_strategies(session, query)
    assert forced, f"no strategy applies to {scenario.name}"
    for strategy in forced:
        plan = session.plan(query, force_strategy=strategy)
        rows = session.answer(query, database, plan=plan).rows
        assert rows == expected_rows, f"{scenario.name}: {strategy} disagrees on rows"
        count = session.count(query, database, plan=plan).count
        assert count == expected_count, f"{scenario.name}: {strategy} disagrees on count"
        sat = session.is_satisfiable(query, database, plan=plan).satisfiable
        assert sat == bool(expected_rows), f"{scenario.name}: {strategy} disagrees on BCQ"

    # The semantic route (plans for the core; must be answer-invariant).
    assert session.answer(query, database, use_core=True).rows == expected_rows


@pytest.mark.parametrize("seed", SEEDS)
def test_regime_coverage(seed):
    regimes = {s.regime for s in workloads.generate_workload(seed=seed)}
    assert regimes == set(workloads.ALL_REGIMES)


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_path_agrees_with_naive(seed):
    queries, database = workloads.mixed_batch(seed=seed, copies=3, distinct=12)
    results = EngineSession().answer_many(queries, database, parallel=4)
    for query, result in zip(queries, results):
        assert result.rows == naive_enumerate_answers(query, database)


# ----------------------------------------------------------------------
# The sharded path: exact at every shard count, every regime, every rung
# of the fallback ladder.
# ----------------------------------------------------------------------
SHARD_COUNTS = (1, 2, 4, 8)


@pytest.mark.parametrize(
    "seed,scenario", SCENARIOS, ids=[f"shards/{s.name}" for _, s in SCENARIOS]
)
def test_sharded_execution_agrees_with_naive(session, seed, scenario):
    query, database = scenario.query, scenario.database
    expected_rows = naive_enumerate_answers(query, database)
    expected_count = naive_count_answers(query, database)
    for shards in SHARD_COUNTS:
        answered = session.answer(
            query, database, shards=shards, shard_variable=scenario.shard_variable
        )
        assert answered.rows == expected_rows, (
            f"{scenario.name}: sharded answer disagrees at shards={shards} "
            f"(mode {answered.sharding['mode'] if answered.sharding else None})"
        )
        counted = session.count(
            query, database, shards=shards, shard_variable=scenario.shard_variable
        )
        assert counted.count == expected_count, (
            f"{scenario.name}: sharded count disagrees at shards={shards}"
        )
        boolean = session.is_satisfiable(
            query, database, shards=shards, shard_variable=scenario.shard_variable
        )
        assert boolean.satisfiable == bool(expected_rows), (
            f"{scenario.name}: sharded BCQ disagrees at shards={shards}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_regime_covers_both_ladder_rungs(seed):
    # The workload must keep exercising both sharded modes: losing either
    # would silently shrink what the differential pass above checks.
    modes = set()
    for scenario in workloads.generate_workload(
        seed=seed, regimes=[workloads.REGIME_SHARDED]
    ):
        spec = sharding_spec(
            scenario.query, 4, shard_variable=scenario.shard_variable
        )
        modes.add(spec.mode)
    assert {SHARD_MODE_COPARTITIONED, SHARD_MODE_BROADCAST} <= modes


# ----------------------------------------------------------------------
# The runtime pass: every registered execution runtime must agree with the
# naive solver across every regime at shard counts 1/2/4.  One query shape
# per (regime, database flavour) keeps the process pass's IPC volume sane
# while still covering every dispatch route, every sharding-ladder rung,
# and every database flavour per runtime.
# ----------------------------------------------------------------------
RUNTIME_SHARD_COUNTS = (1, 2, 4)


def _runtime_slice(seed):
    covered = set()
    chosen = []
    for scenario in workloads.generate_workload(seed=seed, size="small"):
        query_name, database_flavour = scenario.name.split("/")[1:3]
        if (scenario.regime, database_flavour) in covered:
            continue
        covered.add((scenario.regime, database_flavour))
        chosen.append(scenario)
    return chosen


RUNTIME_CASES = [
    (runtime_name, seed, scenario)
    for runtime_name in registered_runtimes()
    for seed in SEEDS
    for scenario in _runtime_slice(seed)
]


@pytest.fixture(scope="module")
def runtimes():
    # The process runtime is shared across the whole pass (worker pools are
    # expensive); a tiny pool keeps the single-core CI box honest while
    # still exercising multi-worker routing and the need-data protocol.
    process = ProcessRuntime(max_workers=2)
    instances = {
        name: (process if name == RUNTIME_PROCESS else runtime_for(name))
        for name in registered_runtimes()
    }
    yield instances
    process.close()


@pytest.mark.parametrize(
    "runtime_name,seed,scenario",
    RUNTIME_CASES,
    ids=[f"{r}/{s.name}" for r, _, s in RUNTIME_CASES],
)
def test_every_runtime_agrees_with_naive(session, runtimes, runtime_name, seed, scenario):
    query, database = scenario.query, scenario.database
    runtime = runtimes[runtime_name]
    expected_rows = naive_enumerate_answers(query, database)
    expected_count = naive_count_answers(query, database)
    for shards in RUNTIME_SHARD_COUNTS:
        answered = session.answer(
            query, database, shards=shards,
            shard_variable=scenario.shard_variable, runtime=runtime,
        )
        assert answered.rows == expected_rows, (
            f"{scenario.name}: {runtime_name} answer disagrees at shards={shards}"
        )
        assert answered.runtime["name"] == runtime_name
        counted = session.count(
            query, database, shards=shards,
            shard_variable=scenario.shard_variable, runtime=runtime,
        )
        assert counted.count == expected_count, (
            f"{scenario.name}: {runtime_name} count disagrees at shards={shards}"
        )
        boolean = session.is_satisfiable(
            query, database, shards=shards,
            shard_variable=scenario.shard_variable, runtime=runtime,
        )
        assert boolean.satisfiable == bool(expected_rows), (
            f"{scenario.name}: {runtime_name} BCQ disagrees at shards={shards}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_runtime_slice_covers_every_regime_and_flavour(seed):
    # The guard that keeps the runtime pass honest: if the slice ever loses
    # a regime or a database flavour, the runtime coverage silently shrinks.
    chosen = _runtime_slice(seed)
    assert {s.regime for s in chosen} == set(workloads.ALL_REGIMES)
    flavours = {s.name.split("/")[2] for s in chosen}
    assert flavours == {"random", "planted", "unsat", "colour", "zipf", "hub"}


# ----------------------------------------------------------------------
# The columnar pass: the decomposition strategies dispatch to the columnar
# kernel — force them on every scenario (and across shards and the process
# runtime on the representative slice) and hold the per-kernel run counters
# up as proof that the columnar path, not a fallback, produced the answers.
# ----------------------------------------------------------------------
DECOMPOSITION_STRATEGIES = (STRATEGY_YANNAKAKIS, STRATEGY_GHD)


def _columnar_strategies(session, query):
    """The decomposition strategies the planner accepts for this query —
    each dispatches to the registered :class:`ColumnarBackend`."""
    strategies = []
    for strategy in DECOMPOSITION_STRATEGIES:
        try:
            session.plan(query, force_strategy=strategy)
        except ValueError:
            continue
        strategies.append(strategy)
    return strategies


def test_columnar_backend_is_the_registered_default():
    for strategy in DECOMPOSITION_STRATEGIES:
        backend = backend_for(strategy)
        assert isinstance(backend, ColumnarBackend), strategy
        assert backend.use_columnar, strategy


@pytest.mark.parametrize(
    "seed,scenario", SCENARIOS, ids=[f"columnar/{s.name}" for _, s in SCENARIOS]
)
def test_columnar_forced_agrees_with_naive(session, seed, scenario):
    query, database = scenario.query, scenario.database
    expected_rows = naive_enumerate_answers(query, database)
    strategies = _columnar_strategies(session, query)
    assert strategies, f"no decomposition strategy applies to {scenario.name}"
    for strategy in strategies:
        backend = backend_for(strategy)
        before = backend.columnar_runs
        plan = session.plan(query, force_strategy=strategy)
        rows = session.answer(query, database, plan=plan).rows
        assert rows == expected_rows, f"{scenario.name}: columnar {strategy} rows"
        count = session.count(query, database, plan=plan).count
        assert count == len(expected_rows), f"{scenario.name}: columnar {strategy} count"
        sat = session.is_satisfiable(query, database, plan=plan).satisfiable
        assert sat == bool(expected_rows), f"{scenario.name}: columnar {strategy} BCQ"
        # Coverage guard: the columnar kernel itself ran all three tasks —
        # a silent fallback would leave the counter behind.
        assert backend.columnar_runs == before + 3, (
            f"{scenario.name}: {strategy} did not execute columnar-side"
        )


COLUMNAR_SLICE = [
    (seed, scenario) for seed in SEEDS for scenario in _runtime_slice(seed)
]


@pytest.mark.parametrize(
    "seed,scenario",
    COLUMNAR_SLICE,
    ids=[f"columnar-shards/{s.name}" for _, s in COLUMNAR_SLICE],
)
def test_columnar_forced_sharded_agrees_with_naive(session, seed, scenario):
    query, database = scenario.query, scenario.database
    expected_rows = naive_enumerate_answers(query, database)
    for strategy in _columnar_strategies(session, query):
        backend = backend_for(strategy)
        before = backend.columnar_runs
        plan = session.plan(query, force_strategy=strategy)
        for shards in (1, 2, 4):
            answered = session.answer(
                query, database, plan=plan, shards=shards,
                shard_variable=scenario.shard_variable,
            )
            assert answered.rows == expected_rows, (
                f"{scenario.name}: columnar {strategy} sharded answer "
                f"disagrees at shards={shards}"
            )
            counted = session.count(
                query, database, plan=plan, shards=shards,
                shard_variable=scenario.shard_variable,
            )
            assert counted.count == len(expected_rows), (
                f"{scenario.name}: columnar {strategy} sharded count "
                f"disagrees at shards={shards}"
            )
        # The default fan-out runtime is in-process (threads), so every
        # shard piece of every call ticked this process's counters: at
        # least one piece per call, six calls.
        assert backend.columnar_runs >= before + 6, (
            f"{scenario.name}: {strategy} shards did not execute columnar-side"
        )


@pytest.mark.parametrize(
    "seed,scenario",
    COLUMNAR_SLICE,
    ids=[f"columnar-process/{s.name}" for _, s in COLUMNAR_SLICE],
)
def test_columnar_forced_on_process_runtime(session, runtimes, seed, scenario):
    # Workers resolve plan.strategy through their own registry, which
    # defaults to the same ColumnarBackend — shards evaluate columnar-side
    # in the worker process and only decoded values cross the IPC fence.
    # (tests/engine/test_columnar_backend.py pins the worker-side counter
    # through _worker_execute; here we pin cross-process agreement.)
    query, database = scenario.query, scenario.database
    runtime = runtimes[RUNTIME_PROCESS]
    expected_rows = naive_enumerate_answers(query, database)
    strategies = _columnar_strategies(session, query)
    assert strategies, f"no decomposition strategy applies to {scenario.name}"
    for strategy in strategies[:1]:  # one strategy per scenario bounds IPC
        plan = session.plan(query, force_strategy=strategy)
        for shards in (1, 2, 4):
            answered = session.answer(
                query, database, plan=plan, shards=shards,
                shard_variable=scenario.shard_variable, runtime=runtime,
            )
            assert answered.rows == expected_rows, (
                f"{scenario.name}: columnar {strategy} process answer "
                f"disagrees at shards={shards}"
            )
            assert answered.runtime["name"] == RUNTIME_PROCESS


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_pass_covers_every_regime_and_flavour(session, seed):
    # The guard that keeps the columnar pass honest: every regime and every
    # database flavour of the representative slice must admit at least one
    # decomposition strategy, or the forced-columnar coverage above would
    # silently shrink.
    regimes = set()
    flavours = set()
    for scenario in _runtime_slice(seed):
        if _columnar_strategies(session, scenario.query):
            regimes.add(scenario.regime)
            flavours.add(scenario.name.split("/")[2])
    assert regimes == set(workloads.ALL_REGIMES)
    assert flavours == {"random", "planted", "unsat", "colour", "zipf", "hub"}


# ----------------------------------------------------------------------
# The affinity pass: owner-routed process execution must stay exact across
# every regime and shard count, AND honour the routing invariant — every
# shard task executes on the worker that owns its piece, with zero recovery
# traffic in a healthy run.  Wired as `make affinity-smoke` in CI.
# ----------------------------------------------------------------------
AFFINITY_CASES = [
    (seed, scenario) for seed in SEEDS for scenario in _runtime_slice(seed)
]


@pytest.fixture(scope="module")
def affinity_runtime():
    # A dedicated runtime so the coverage guard below reads counters that
    # only this pass produced.  max_datasets is raised above the pass's
    # total token count — eviction re-mints tokens and re-ships, which
    # would trip the guard for bookkeeping rather than routing reasons.
    runtime = ProcessRuntime(max_workers=2, max_datasets=4096)
    yield runtime
    runtime.close()


@pytest.mark.parametrize(
    "seed,scenario",
    AFFINITY_CASES,
    ids=[f"affinity/{s.name}" for _, s in AFFINITY_CASES],
)
def test_affinity_routed_execution_agrees_with_naive(
    session, affinity_runtime, seed, scenario
):
    query, database = scenario.query, scenario.database
    expected_rows = naive_enumerate_answers(query, database)
    expected_count = naive_count_answers(query, database)
    for shards in RUNTIME_SHARD_COUNTS:
        answered = session.answer(
            query, database, shards=shards,
            shard_variable=scenario.shard_variable, runtime=affinity_runtime,
        )
        assert answered.rows == expected_rows, (
            f"{scenario.name}: affinity answer disagrees at shards={shards}"
        )
        counted = session.count(
            query, database, shards=shards,
            shard_variable=scenario.shard_variable, runtime=affinity_runtime,
        )
        assert counted.count == expected_count, (
            f"{scenario.name}: affinity count disagrees at shards={shards}"
        )
        boolean = session.is_satisfiable(
            query, database, shards=shards,
            shard_variable=scenario.shard_variable, runtime=affinity_runtime,
        )
        assert boolean.satisfiable == bool(expected_rows), (
            f"{scenario.name}: affinity BCQ disagrees at shards={shards}"
        )


def test_affinity_coverage_guard(affinity_runtime):
    # Runs after the parametrized pass above (file order): every shard task
    # it dispatched executed on its owning worker — no replica routing on
    # sharded calls, no need-data recovery, no worker deaths — and the
    # coordinator's residency agrees with its routing table: each piece
    # resident on exactly the one worker that owns it.
    stats = affinity_runtime.stats()
    assert stats["tasks_dispatched"] > 0, "affinity pass dispatched nothing"
    assert stats["tasks_owner_routed"] == stats["tasks_dispatched"]
    assert stats["tasks_replica_routed"] == 0
    assert stats["recovery_reships"] == 0
    assert stats["worker_restarts"] == 0
    routing = affinity_runtime.routing()
    residency = affinity_runtime.residency()
    tokens = [token for held in residency.values() for token in held]
    assert len(tokens) == len(set(tokens)), "a piece is resident twice"
    for token, owner in routing.items():
        assert token in residency[owner], (
            f"{token} owned by worker {owner} but not resident there"
        )
    # Shipments reconcile against distinct pieces: each live piece shipped
    # exactly once, plus one shipment per token the coordinator retired
    # (a garbage-collected piece whose recycled id was reached again —
    # GC-timing dependent, usually zero).  No appends ran, so the delta
    # side of the ledger is untouched.
    assert stats["shipments"] == len(tokens) + stats["tokens_retired"]
    assert stats["shipment_bytes"] > 0
    assert stats["delta_shipments"] == 0


# ----------------------------------------------------------------------
# The incremental pass: append-heavy replay.  A standing IncrementalView
# refreshes after every append batch and must equal a from-scratch
# evaluation each time — per regime x database flavour, plus a sharded
# variant (shards 1/2/4) whose process-runtime leg proves the appends
# travelled as delta shipments, not full re-ships.  Wired as
# `make delta-smoke` in CI.
# ----------------------------------------------------------------------
APPEND_BATCHES = 3
INCREMENTAL_CASES = [
    (seed, scenario) for seed in SEEDS for scenario in _runtime_slice(seed)
]


@pytest.mark.parametrize(
    "seed,scenario",
    INCREMENTAL_CASES,
    ids=[f"incremental/{s.name}" for _, s in INCREMENTAL_CASES],
)
def test_incremental_refresh_agrees_with_from_scratch(session, seed, scenario):
    query, database = scenario.query, scenario.database
    view = session.incremental_view(query, database)
    initial = view.refresh()
    assert initial.rows == naive_enumerate_answers(query, database)
    for batch in workloads.append_schedule(
        database, batches=APPEND_BATCHES, fraction=0.05, seed=seed
    ):
        workloads.apply_appends(database, batch)
        refreshed = view.refresh()
        assert refreshed.rows == naive_enumerate_answers(query, database), (
            f"{scenario.name}: incremental refresh "
            f"({refreshed.incremental['mode']}) diverged from scratch"
        )
        assert view.count == session.count(query, database).count
        assert view.satisfiable == bool(refreshed.rows)


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_pass_covers_every_regime_and_flavour(seed):
    chosen = [s for _, s in INCREMENTAL_CASES if s.seed == seed]
    assert {s.regime for s in chosen} == set(workloads.ALL_REGIMES)
    assert {s.name.split("/")[2] for s in chosen} == {
        "random", "planted", "unsat", "colour", "zipf", "hub"
    }
    # Every scenario admits a non-trivial schedule (the replay would
    # silently become a noop pass otherwise).
    for scenario in chosen:
        schedule = workloads.append_schedule(scenario.database, seed=seed)
        assert len(schedule) == APPEND_BATCHES
        assert any(rows for batch in schedule for rows in batch.values())


DELTA_SHIP_CASES = [
    (seed, scenario) for seed in SEEDS for scenario in _runtime_slice(seed)
]


@pytest.mark.parametrize(
    "seed,scenario",
    DELTA_SHIP_CASES,
    ids=[f"delta-ship/{s.name}" for _, s in DELTA_SHIP_CASES],
)
def test_append_replay_stays_exact_across_shards_and_delta_shipping(
    session, runtimes, seed, scenario
):
    # The sharded legs reuse the session's resident partition pieces (the
    # delta rows are routed into the cached shards, not re-partitioned) and
    # the process leg re-syncs each worker's resident piece with a delta
    # shipment; both must keep agreeing with the naive solver after every
    # append batch.
    query, database = scenario.query, scenario.database
    process = runtimes[RUNTIME_PROCESS]
    for shards in RUNTIME_SHARD_COUNTS:
        session.answer(
            query, database, shards=shards,
            shard_variable=scenario.shard_variable,
        )
    session.answer(
        query, database, shards=2,
        shard_variable=scenario.shard_variable, runtime=process,
    )
    for batch in workloads.append_schedule(database, batches=2, seed=seed):
        workloads.apply_appends(database, batch)
        expected = naive_enumerate_answers(query, database)
        for shards in RUNTIME_SHARD_COUNTS:
            answered = session.answer(
                query, database, shards=shards,
                shard_variable=scenario.shard_variable,
            )
            assert answered.rows == expected, (
                f"{scenario.name}: post-append sharded answer disagrees "
                f"at shards={shards}"
            )
        shipped = session.answer(
            query, database, shards=2,
            shard_variable=scenario.shard_variable, runtime=process,
        )
        assert shipped.rows == expected, (
            f"{scenario.name}: post-append process answer disagrees"
        )


def test_delta_shipping_coverage_guard(runtimes):
    # Runs after the parametrized pass above (file order): the appends in
    # this module's replay travelled to resident workers as deltas — the
    # wire path the replay claims to cover actually ran.
    stats = runtimes[RUNTIME_PROCESS].stats()
    assert stats["delta_shipments"] > 0, "no delta shipment ever happened"
    assert stats["delta_bytes"] > 0


# ----------------------------------------------------------------------
# The skewed pass: the scenarios exist to exercise the cost-based ordering
# machinery — hold the statistics ledger up as proof that it actually ran.
# Wired as `make skew-smoke` in CI.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_skewed_pass_exercises_cost_based_ordering(session, seed):
    from repro.cq.statistics import ledger_delta, ledger_snapshot

    before = ledger_snapshot()
    for scenario in workloads.generate_workload(
        seed=seed, regimes=[workloads.REGIME_SKEWED]
    ):
        result = session.answer(scenario.query, scenario.database)
        assert result.rows == naive_enumerate_answers(
            scenario.query, scenario.database
        ), scenario.name
    moved = ledger_delta(before, ledger_snapshot())
    # Coverage guard: the skewed scenarios must drive the cost-based join
    # ordering (triangle bags put >= 3 relations in the join pool), or this
    # regime silently stops testing what it was added for.
    assert moved["cost_joins"] > 0, "cost-based ordering never ran on the skewed pass"


@functools.lru_cache(maxsize=128)
def _first_scenario(seed, regime):
    # The property below needs one scenario per (seed, regime); caching
    # avoids regenerating the regime's full query x database grid every
    # time hypothesis revisits a seed (e.g. while shrinking).
    return workloads.generate_workload(seed=seed, regimes=[regime])[0]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.integers(min_value=1, max_value=8),
)
def test_sharded_results_invariant_in_shard_count(seed, shards):
    # Property: for ANY scenario and shard count, the sharded session
    # returns exactly what the unsharded session returns.  One scenario per
    # regime keeps each example fast while touching every dispatch route
    # and every rung of the sharding ladder.
    session = EngineSession()
    for regime in workloads.ALL_REGIMES:
        scenario = _first_scenario(seed, regime)
        query, database = scenario.query, scenario.database
        baseline_rows = session.answer(query, database).rows
        baseline_count = session.count(query, database).count
        sharded = session.answer(
            query, database, shards=shards, shard_variable=scenario.shard_variable
        )
        assert sharded.rows == baseline_rows
        counted = session.count(
            query, database, shards=shards, shard_variable=scenario.shard_variable
        )
        assert counted.count == baseline_count
