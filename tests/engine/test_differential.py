"""Differential conformance harness: every registered engine strategy must
agree with the naive reference solver on the generated scenario workloads.

The workload (:mod:`repro.cq.workloads`) spans the four structural regimes
of the paper — acyclic, bounded-ghw, core-reducible, hard — each over
satisfiable, planted, unsatisfiable, and proper-colouring databases.  For
every scenario this harness runs:

* the planner's *default dispatch* (answer / count / is_satisfiable),
* every strategy in the backend registry that is *forceable* on the
  scenario's structure (forcing Yannakakis on a cyclic query correctly
  raises — that is applicability, not disagreement),
* the semantic ``use_core=True`` route,
* and the session *batch* path,

and asserts bit-for-bit agreement with the naive linear-scan solver.

Seeds are parametrized: set ``WORKLOAD_SEEDS=3,4,5`` to point CI at fresh
scenarios — any failure reproduces locally from the seed in the test id.
``make workload-smoke`` runs the single-seed variant.
"""

import os

import pytest

from repro.cq import workloads
from repro.cq.homomorphism import naive_count_answers, naive_enumerate_answers
from repro.engine import (
    EngineSession,
    STRATEGY_TRIVIAL,
    registered_strategies,
)


def _seeds() -> list[int]:
    raw = os.environ.get("WORKLOAD_SEEDS", "0,1")
    return [int(part) for part in raw.split(",") if part.strip() != ""]


SEEDS = _seeds()
SCENARIOS = [
    (seed, scenario)
    for seed in SEEDS
    for scenario in workloads.generate_workload(seed=seed, size="small")
]


@pytest.fixture(scope="module")
def session():
    # One session for the whole harness: the differential pass doubles as a
    # soak test of the shared analysis/plan caches across many queries.
    return EngineSession()


def _forceable_strategies(session, query):
    """Every registered strategy the planner accepts for this query."""
    strategies = []
    for strategy in registered_strategies():
        if strategy == STRATEGY_TRIVIAL and query.atoms:
            continue
        try:
            session.plan(query, force_strategy=strategy)
        except ValueError:
            continue
        strategies.append(strategy)
    return strategies


@pytest.mark.parametrize(
    "seed,scenario", SCENARIOS, ids=[s.name for _, s in SCENARIOS]
)
def test_all_strategies_agree_with_naive(session, seed, scenario):
    query, database = scenario.query, scenario.database
    expected_rows = naive_enumerate_answers(query, database)
    expected_count = naive_count_answers(query, database)
    assert expected_count == len(expected_rows)

    # Default dispatch.
    assert session.answer(query, database).rows == expected_rows, scenario.name
    assert session.count(query, database).count == expected_count
    assert session.is_satisfiable(query, database).satisfiable == bool(expected_rows)

    # Every forceable registered strategy.
    forced = _forceable_strategies(session, query)
    assert forced, f"no strategy applies to {scenario.name}"
    for strategy in forced:
        plan = session.plan(query, force_strategy=strategy)
        rows = session.answer(query, database, plan=plan).rows
        assert rows == expected_rows, f"{scenario.name}: {strategy} disagrees on rows"
        count = session.count(query, database, plan=plan).count
        assert count == expected_count, f"{scenario.name}: {strategy} disagrees on count"
        sat = session.is_satisfiable(query, database, plan=plan).satisfiable
        assert sat == bool(expected_rows), f"{scenario.name}: {strategy} disagrees on BCQ"

    # The semantic route (plans for the core; must be answer-invariant).
    assert session.answer(query, database, use_core=True).rows == expected_rows


@pytest.mark.parametrize("seed", SEEDS)
def test_regime_coverage(seed):
    regimes = {s.regime for s in workloads.generate_workload(seed=seed)}
    assert regimes == set(workloads.ALL_REGIMES)


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_path_agrees_with_naive(seed):
    queries, database = workloads.mixed_batch(seed=seed, copies=3, distinct=12)
    results = EngineSession().answer_many(queries, database, parallel=4)
    for query, result in zip(queries, results):
        assert result.rows == naive_enumerate_answers(query, database)
