"""Semi-naive incremental evaluation and the four-layer extension seam.

Two concerns, one file:

* :class:`~repro.engine.incremental.IncrementalView` — mode selection
  (initial / noop / incremental / full), exactness against a from-scratch
  evaluation after every refresh, and the threshold fallback;
* the cache-extension satellites — after ``add_fact``, each resident cache
  layer (atom views, columnar store, session partition cache, process-
  runtime resident shards) must *extend* its cached state in place and keep
  returning exact results, never serve stale data and never rebuild from
  scratch.
"""

import random

import pytest

from repro.cq.database import Database
from repro.cq.query import Atom, Constant, ConjunctiveQuery
from repro.cq.relational import from_atom
from repro.engine import (
    DEFAULT_REFRESH_THRESHOLD,
    EngineSession,
    IncrementalView,
    MODE_FULL,
    MODE_INCREMENTAL,
    MODE_INITIAL,
    MODE_NOOP,
)
from repro.engine.runtime import ProcessRuntime


def _chain_instance(seed=11, edges=400, domain=40):
    rng = random.Random(seed)
    database = Database()
    for _ in range(edges):
        database.add_fact("E", (rng.randrange(domain), rng.randrange(domain)))
    for _ in range(edges // 4):
        database.add_fact("L", (rng.randrange(domain),))
    query = ConjunctiveQuery(
        [Atom("E", ("x", "y")), Atom("E", ("y", "z")), Atom("L", ("z",))],
        free_variables=("x", "z"),
    )
    return query, database, rng


def _fresh_answer(query, database):
    return EngineSession().answer(query, database).rows


class TestIncrementalView:
    def test_initial_then_noop(self):
        query, database, _ = _chain_instance()
        session = EngineSession()
        view = session.incremental_view(query, database)
        first = view.refresh()
        assert first.incremental["mode"] == MODE_INITIAL
        assert first.rows == _fresh_answer(query, database)
        again = view.refresh()
        assert again.incremental["mode"] == MODE_NOOP
        assert again.rows == first.rows
        assert again.incremental["delta_rows"] == 0

    def test_small_append_refreshes_incrementally_and_exactly(self):
        query, database, rng = _chain_instance()
        view = EngineSession().incremental_view(query, database)
        view.refresh()
        for _ in range(5):
            database.add_fact("E", (rng.randrange(40), rng.randrange(40)))
        database.add_fact("L", (rng.randrange(40),))
        result = view.refresh()
        assert result.incremental["mode"] == MODE_INCREMENTAL
        assert result.rows == _fresh_answer(query, database)
        assert "incremental" in result.plan.rationale

    def test_large_append_falls_back_to_full_recompute(self):
        query, database, rng = _chain_instance(edges=100)
        view = EngineSession().incremental_view(query, database)
        view.refresh()
        for _ in range(300):
            database.add_fact("E", (rng.randrange(60), rng.randrange(60)))
        result = view.refresh()
        assert result.incremental["mode"] == MODE_FULL
        assert result.incremental["delta_fraction"] > DEFAULT_REFRESH_THRESHOLD
        assert result.rows == _fresh_answer(query, database)

    def test_answers_are_monotone_across_refreshes(self):
        query, database, rng = _chain_instance()
        view = EngineSession().incremental_view(query, database)
        previous = set(view.refresh().rows)
        for _ in range(6):
            database.add_fact("E", (rng.randrange(40), rng.randrange(40)))
            current = view.refresh().rows
            assert current >= previous
            previous = set(current)

    def test_self_join_and_constant_atoms(self):
        database = Database()
        for a, b in [(1, 2), (2, 3), (3, 3)]:
            database.add_fact("E", (a, b))
        query = ConjunctiveQuery(
            [Atom("E", ("x", "x")), Atom("E", ("x", "y")), Atom("E", (Constant(1), "q"))],
            free_variables=("x", "y"),
        )
        view = EngineSession().incremental_view(query, database)
        assert view.refresh().rows == {(3, 3)}
        database.add_fact("E", (3, 7))  # one new delta row -> one new answer
        result = view.refresh()
        assert result.incremental["mode"] == MODE_INCREMENTAL
        assert result.rows == {(3, 3), (3, 7)}

    def test_boolean_view_tracks_satisfiability(self):
        database = Database()
        database.add_fact("R", (1,))
        query = ConjunctiveQuery(
            [Atom("R", ("x",)), Atom("S", ("x",))], free_variables=()
        )
        view = EngineSession().incremental_view(query, database)
        view.refresh()
        assert not view.satisfiable and view.count == 0
        database.add_fact("S", (1,))
        view.refresh()
        assert view.satisfiable and view.count == 1

    def test_relation_appearing_after_registration(self):
        database = Database()
        for i in range(50):
            database.add_fact("A", (i, i + 1))
        query = ConjunctiveQuery([Atom("A", ("x", "y")), Atom("B", ("y", "z"))])
        view = EngineSession().incremental_view(query, database)
        assert view.refresh().rows == set()
        database.add_fact("B", (3, 9))
        result = view.refresh()
        assert result.incremental["mode"] == MODE_INCREMENTAL
        assert result.rows == {(2, 3, 9)}

    def test_threshold_validated_and_counted_in_session_stats(self):
        query, database, _ = _chain_instance(edges=20)
        session = EngineSession()
        with pytest.raises(ValueError):
            IncrementalView(session, query, database, threshold=1.5)
        session.incremental_view(query, database)
        assert session.stats()["incremental_views"] == 1


class TestFourLayerExtension:
    """After ``add_fact``, every resident layer extends in place."""

    def test_atom_view_layer_extends_not_rebuilds(self):
        database = Database().enable_atom_cache()
        database.add_fact("E", (1, 2))
        atom = Atom("E", ("x", "y"))
        view = from_atom(atom, database)
        view.key_index(("x",))  # memoize an index so extension must patch it
        database.add_fact("E", (2, 3))
        extended = from_atom(atom, database)
        assert extended is view
        assert (2, 3) in extended.rows
        assert extended.key_index(("x",))[(2,)] == [(2, 3)]

    def test_columnar_layer_extends_not_rebuilds(self):
        database = Database()
        database.add_fact("E", (1, 2))
        atom = Atom("E", ("x", "y"))
        before = database.columnar_view(atom)
        database.add_fact("E", (2, 3))
        after = database.columnar_view(atom)
        assert after is before
        assert len(after) == 2
        assert database.columnar_store().extensions == 1

    def test_session_partition_cache_extends_not_rebuilds(self):
        query, database, rng = _chain_instance()
        session = EngineSession()
        first = session.answer(query, database, shards=2)
        snapshot = session._partition_cache.snapshot()
        assert len(snapshot) == 1
        pieces_before = snapshot[0][1][1]
        database.add_fact("E", (0, 1))
        database.add_fact("L", (1,))
        second = session.answer(query, database, shards=2)
        snapshot = session._partition_cache.snapshot()
        pieces_after = snapshot[0][1][1]
        # Same piece objects — the delta rows were routed into the resident
        # shards, not a re-partition of the whole database.
        assert all(a is b for a, b in zip(pieces_before, pieces_after))
        assert second.rows == _fresh_answer(query, database)
        assert second.rows >= first.rows

    def test_process_runtime_ships_only_the_delta(self):
        query, database, rng = _chain_instance(edges=120)
        runtime = ProcessRuntime(max_workers=2)
        try:
            session = EngineSession()
            session.answer(query, database, shards=2, runtime=runtime)
            cold = runtime.stats()
            assert cold["shipments"] == 2
            assert cold["delta_shipments"] == 0
            database.add_fact("E", (0, 1))
            database.add_fact("L", (1,))
            result = session.answer(query, database, shards=2, runtime=runtime)
            warm = runtime.stats()
            # No full re-ship: the appended rows travelled as deltas.
            assert warm["shipments"] == 2
            assert warm["delta_shipments"] >= 1
            assert 0 < warm["delta_bytes"] < warm["shipment_bytes"]
            assert result.rows == _fresh_answer(query, database)
        finally:
            runtime.close()

    def test_incremental_view_rides_the_extended_atom_views(self):
        query, database, rng = _chain_instance()
        session = EngineSession()
        view = session.incremental_view(query, database)
        view.refresh()
        cached = {
            key: entry[1] for key, entry in database.atom_cache.items()
        }
        database.add_fact("E", (0, 1))
        view.refresh()
        for key, entry in database.atom_cache.items():
            if key in cached:
                assert entry[1] is cached[key]
