"""The sharding layer: stable hash partitioning, the spec fallback ladder,
``Database.partition``, and ``ShardedDatabase``."""

import enum

import pytest

from repro.cq import Atom, ConjunctiveQuery, Database
from repro.cq import generators as cqgen
from repro.cq.database import Relation, shard_of
from repro.engine import (
    SHARD_MODE_BROADCAST,
    SHARD_MODE_COPARTITIONED,
    SHARD_MODE_SINGLE,
    ShardedDatabase,
    choose_shard_variable,
    sharding_spec,
)


class _StrColour(str, enum.Enum):
    RED = "red"


class _IntColour(enum.IntEnum):
    BLUE = 3


class TestShardOf:
    def test_in_range_and_deterministic(self):
        for shards in (1, 2, 4, 8):
            for value in [0, 1, 17, "a", "xyz", (1, 2), None]:
                shard = shard_of(value, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(value, shards)

    def test_single_shard_is_always_zero(self):
        assert shard_of("anything", 1) == 0

    def test_spreads_small_integer_domains(self):
        # The generators draw values from range(domain); a hash that lumped
        # them into one shard would make sharding a no-op silently.
        buckets = {shard_of(value, 4) for value in range(32)}
        assert len(buckets) == 4

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="shards"):
            shard_of(1, 0)

    def test_equal_values_share_a_shard_across_types(self):
        # Python equality crosses the numeric tower (True == 1 == 1.0) and
        # sets/dicts unify such values, so sharding MUST route them
        # identically — the disjointness argument is an equality argument.
        from decimal import Decimal
        from fractions import Fraction

        for shards in (2, 3, 4, 8):
            for group in (
                [True, 1, 1.0, Decimal(1), Fraction(1)],
                [False, 0, 0.0],
                [0.5, Fraction(1, 2), Decimal("0.5")],
                [(1, True), (1, 1), (1.0, 1)],
                # Exact large integers must not round-trip through float.
                [10**30, Fraction(10**30), Decimal(10**30)],
                # Subclass values that compare equal to their base value.
                [_StrColour.RED, "red"],
                [_IntColour.BLUE, 3, 3.0],
                [range(0), range(5, 5)],
                [range(2, 8, 2), range(2, 7, 2)],
            ):
                routes = {shard_of(value, shards) for value in group}
                assert len(routes) == 1, (group, shards)

    def test_identity_repr_values_rejected_loudly(self):
        # An object with __eq__ but the default (address-based) repr cannot
        # be routed consistently: equal instances would land in different
        # shards and silently lose answers.  Refusal beats wrong results.
        class Opaque:
            def __eq__(self, other):
                return isinstance(other, Opaque)

            def __hash__(self):
                return 7

        with pytest.raises(TypeError, match="identity-based"):
            shard_of(Opaque(), 4)

    def test_mixed_type_equal_hub_values_answer_exactly(self):
        # End-to-end regression: a satisfying assignment whose facts spell
        # the same hub value as True, 1, and 1.0 must survive sharding.
        from repro.cq.homomorphism import naive_enumerate_answers
        from repro.engine import EngineSession

        query = cqgen.hub_cycle_query(3)
        database = Database()
        database.add_fact("H0", (True, "a", "b"))
        database.add_fact("H1", (1, "b", "c"))
        database.add_fact("H2", (1.0, "c", "a"))
        expected = naive_enumerate_answers(query, database)
        assert expected, "the planted assignment must satisfy the query"
        session = EngineSession()
        for shards in (2, 3, 4, 8):
            assert session.answer(query, database, shards=shards).rows == expected
            assert session.is_satisfiable(query, database, shards=shards).satisfiable


class TestChooseShardVariable:
    def test_prefers_the_highest_frequency_variable(self):
        assert choose_shard_variable(cqgen.hub_cycle_query(5)) == "h"
        assert choose_shard_variable(cqgen.star_query(4)) == "c"

    def test_no_variables_means_none(self):
        assert choose_shard_variable(ConjunctiveQuery([])) is None
        from repro.cq.query import Constant

        constants_only = ConjunctiveQuery([Atom("R", [Constant(1)])])
        assert choose_shard_variable(constants_only) is None

    def test_deterministic_tie_break(self):
        query = ConjunctiveQuery([Atom("R", ["a", "b"])])
        assert choose_shard_variable(query) == choose_shard_variable(query)


class TestShardingSpec:
    def test_copartitioned_when_every_atom_has_the_variable(self):
        spec = sharding_spec(cqgen.hub_cycle_query(4), 4)
        assert spec.mode == SHARD_MODE_COPARTITIONED
        assert spec.shard_variable == "h"
        assert set(spec.partition_columns) == {"H0", "H1", "H2", "H3"}
        assert all(column == 0 for column in spec.partition_columns.values())
        assert spec.broadcast_relations == ()
        assert spec.is_sharded

    def test_broadcast_when_some_atoms_lack_it(self):
        spec = sharding_spec(cqgen.cycle_query(5), 4, shard_variable="x0")
        assert spec.mode == SHARD_MODE_BROADCAST
        # x0 occurs in R4(x4, x0) and R0(x0, x1) only.
        assert set(spec.partition_columns) == {"R0", "R4"}
        assert set(spec.broadcast_relations) == {"R1", "R2", "R3"}
        assert "broadcast" in spec.rationale

    def test_single_shard_when_one_shard_requested(self):
        spec = sharding_spec(cqgen.hub_cycle_query(4), 1)
        assert spec.mode == SHARD_MODE_SINGLE
        assert not spec.is_sharded

    def test_single_shard_when_no_variables(self):
        spec = sharding_spec(ConjunctiveQuery([]), 4)
        assert spec.mode == SHARD_MODE_SINGLE
        assert spec.shard_variable is None

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="does not occur"):
            sharding_spec(cqgen.hub_cycle_query(4), 4, shard_variable="zz")
        # The typo must raise on every query shape — the zero-atom and
        # shards=1 fallbacks must not mask it.
        with pytest.raises(ValueError, match="does not occur"):
            sharding_spec(ConjunctiveQuery([]), 4, shard_variable="zz")
        with pytest.raises(ValueError, match="does not occur"):
            sharding_spec(cqgen.hub_cycle_query(4), 1, shard_variable="zz")

    def test_inconsistent_self_join_positions_fall_back(self):
        # E(x, y) AND E(y, x): x sits at column 0 in one atom and column 1
        # in the other, so no single partition column serves both — the
        # relation cannot be partitioned and the ladder bottoms out.
        query = ConjunctiveQuery([Atom("E", ["x", "y"]), Atom("E", ["y", "x"])])
        spec = sharding_spec(query, 4, shard_variable="x")
        assert spec.mode == SHARD_MODE_SINGLE
        assert "single-shard" in spec.rationale

    def test_consistent_self_join_positions_copartition(self):
        # E(h, x) AND E(h, y): both atoms carry h at column 0.
        query = ConjunctiveQuery([Atom("E", ["h", "x"]), Atom("E", ["h", "y"])])
        spec = sharding_spec(query, 4, shard_variable="h")
        assert spec.mode == SHARD_MODE_COPARTITIONED
        assert spec.partition_columns == {"E": 0}


class TestDatabasePartition:
    @pytest.fixture
    def database(self):
        query = cqgen.hub_cycle_query(3)
        return cqgen.random_database(query, 10, 50, seed=13)

    def test_partition_is_exact_and_disjoint(self, database):
        pieces = database.partition(
            {"H0": 0, "H1": 0, "H2": 0}, 4
        )
        assert len(pieces) == 4
        for name in ("H0", "H1", "H2"):
            rebuilt = set()
            total = 0
            for piece in pieces:
                rows = piece.relation(name).tuples
                assert not rebuilt & rows, "tuple present in two shards"
                rebuilt |= rows
                total += len(rows)
            assert rebuilt == database.relation(name).tuples
            assert total == len(database.relation(name))

    def test_tuples_routed_by_key_column(self, database):
        pieces = database.partition({"H0": 1}, 3)
        for index, piece in enumerate(pieces):
            for row in piece.relation("H0").tuples:
                assert shard_of(row[1], 3) == index

    def test_broadcast_relations_replicated(self, database):
        pieces = database.partition({"H0": 0}, 3, broadcast=("H1", "H2"))
        for piece in pieces:
            assert piece.relation("H1").tuples == database.relation("H1").tuples
            assert piece.relation("H2").tuples == database.relation("H2").tuples
            assert not piece.has_relation("unrelated")

    def test_unlisted_relations_omitted(self, database):
        pieces = database.partition({"H0": 0}, 2)
        assert all(not piece.has_relation("H1") for piece in pieces)

    def test_validation(self, database):
        with pytest.raises(ValueError, match="shards"):
            database.partition({"H0": 0}, 0)
        with pytest.raises(KeyError, match="missing"):
            database.partition({"missing": 0}, 2)
        with pytest.raises(ValueError, match="out of range"):
            database.partition({"H0": 9}, 2)
        with pytest.raises(ValueError, match="both partitioned and broadcast"):
            database.partition({"H0": 0}, 2, broadcast=("H0",))

    def test_partition_is_deterministic(self, database):
        first = database.partition({"H0": 0, "H1": 0, "H2": 0}, 4)
        second = database.partition({"H0": 0, "H1": 0, "H2": 0}, 4)
        for a, b in zip(first, second):
            assert a == b


class TestShardedDatabase:
    def test_partition_for_query(self):
        query = cqgen.hub_cycle_query(3)
        database = cqgen.random_database(query, 10, 50, seed=13)
        sharded = ShardedDatabase.partition(database, query, 4)
        assert len(sharded) == 4
        assert sharded.spec.mode == SHARD_MODE_COPARTITIONED
        assert sharded.total_tuples() == database.total_tuples()

    def test_single_shard_shares_the_database(self):
        query = cqgen.hub_cycle_query(3)
        database = cqgen.random_database(query, 10, 20, seed=13)
        sharded = ShardedDatabase.partition(database, query, 1)
        assert len(sharded) == 1
        assert sharded.shards[0] is database

    def test_missing_query_relation_stays_missing(self):
        query = cqgen.hub_cycle_query(3)
        database = Database()
        database.add_fact("H0", ("a", "b", "c"))
        sharded = ShardedDatabase.partition(database, query, 2)
        for piece in sharded:
            assert not piece.has_relation("H1")

    def test_shard_for_routes_by_value(self):
        query = cqgen.hub_cycle_query(3)
        database = cqgen.random_database(query, 10, 50, seed=13)
        sharded = ShardedDatabase.partition(database, query, 4)
        for value in range(10):
            piece = sharded.shard_for(value)
            assert piece is sharded.shards[shard_of(value, 4)]
            # Every H0 fact carrying `value` in the hub column lives there.
            for other in sharded.shards:
                if other is piece:
                    continue
                assert all(row[0] != value for row in other.relation("H0").tuples)
