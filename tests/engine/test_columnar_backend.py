"""The columnar backend through the engine: default dispatch for the
decomposition strategies, the tuple-set fallback toggle, per-kernel run
counters (the coverage guard's instrument), session stats / clear_cache
integration, and the sharded + worker execution paths evaluating
columnar-side.
"""

import pytest

from repro.cq import generators as cqgen
from repro.cq.homomorphism import naive_count_answers, naive_enumerate_answers
from repro.engine import (
    ColumnarBackend,
    DecompositionBackend,
    EngineSession,
    LRUCache,
    STRATEGY_GHD,
    STRATEGY_YANNAKAKIS,
    TASK_ANSWER,
    backend_for,
)
from repro.engine.runtime import _REPLY_OK, _worker_execute


@pytest.fixture
def session():
    return EngineSession()


@pytest.fixture
def acyclic():
    query = cqgen.chain_query(4)
    return query, cqgen.random_database(query, 6, 50, seed=31)


@pytest.fixture
def cyclic():
    query = cqgen.cycle_query(5)
    return query, cqgen.random_database(query, 7, 60, seed=32)


def test_decomposition_strategies_default_to_columnar():
    for strategy in (STRATEGY_YANNAKAKIS, STRATEGY_GHD):
        backend = backend_for(strategy)
        assert isinstance(backend, ColumnarBackend)
        assert backend.use_columnar
        assert isinstance(backend.fallback, DecompositionBackend)
        assert backend.fallback.name == strategy


def test_default_dispatch_executes_columnar(session, acyclic, cyclic):
    # The coverage-guard mechanism itself: every evaluation through a
    # decomposition strategy must tick the columnar run counter.
    for (query, database), strategy in ((acyclic, STRATEGY_YANNAKAKIS), (cyclic, STRATEGY_GHD)):
        backend = backend_for(strategy)
        before = backend.columnar_runs
        result = session.answer(query, database)
        assert result.plan.strategy == strategy
        assert result.rows == naive_enumerate_answers(query, database)
        session.count(query, database)
        session.is_satisfiable(query, database)
        assert backend.columnar_runs == before + 3
        assert database.columnar_cache is not None


def test_fallback_toggle_routes_to_tuple_set_kernel(session, acyclic):
    query, database = acyclic
    backend = backend_for(STRATEGY_YANNAKAKIS)
    expected = naive_enumerate_answers(query, database)
    assert session.answer(query, database).rows == expected
    columnar_before, fallback_before = backend.columnar_runs, backend.fallback_runs
    backend.use_columnar = False
    try:
        assert session.answer(query, database).rows == expected
        assert session.count(query, database).count == len(expected)
        assert session.is_satisfiable(query, database).satisfiable == bool(expected)
        assert backend.columnar_runs == columnar_before
        assert backend.fallback_runs == fallback_before + 3
    finally:
        backend.use_columnar = True


def test_counts_match_tuple_set_kernel_on_projections(session):
    # Non-full counting stays in id space (length of the projected columnar
    # result, no decode); it must agree with the fallback's enumerate+len.
    query = cqgen.cycle_query(4).project(["x0", "x1"])
    database = cqgen.random_database(query, 6, 60, seed=33)
    counted = session.count(query, database).count
    assert counted == naive_count_answers(query, database)
    backend = backend_for(session.plan(query).strategy)
    assert counted == backend.fallback.count(
        session.plan(query).query, database, session.plan(query)
    )


def test_session_stats_report_columnar_view_cache(session, acyclic):
    query, database = acyclic
    empty = session.stats()["columnar_view_cache"]
    assert empty == {
        "databases": 0, "interned": 0, "views": 0,
        "hits": 0, "misses": 0, "dictionary_size": 0,
    }
    session.answer(query, database)
    session.answer(query, database)  # repeat: view-cache hits
    report = session.stats()["columnar_view_cache"]
    assert report["databases"] == 1
    assert report["interned"] == 1
    assert report["views"] > 0
    assert report["misses"] > 0
    assert report["hits"] > 0
    assert report["dictionary_size"] == len(database.columnar_cache.interner)


def test_clear_cache_drops_columnar_views(session, acyclic):
    query, database = acyclic
    session.answer(query, database)
    assert database.columnar_cache is not None
    session.clear_cache()
    assert database.columnar_cache is None
    assert session.stats()["columnar_view_cache"]["databases"] == 0


def test_stats_survive_garbage_collected_databases(session):
    query = cqgen.chain_query(3)
    database = cqgen.random_database(query, 5, 30, seed=34)
    session.answer(query, database)
    del database
    import gc

    gc.collect()
    report = session.stats()["columnar_view_cache"]
    assert report["databases"] == 0  # weakly tracked: nothing kept alive


def test_lru_cache_stats_alias():
    cache = LRUCache(4)
    cache.get("missing")
    cache.put("k", 1)
    cache.get("k")
    assert cache.stats() == cache.info()
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1


def test_sharded_execution_is_columnar_per_shard(session, acyclic):
    query, database = acyclic
    backend = backend_for(STRATEGY_YANNAKAKIS)
    before = backend.columnar_runs
    expected = naive_enumerate_answers(query, database)
    for shards in (1, 2, 4):
        result = session.answer(query, database, shards=shards, shard_variable="x0")
        assert result.rows == expected
    # Inline/thread shard tasks tick the same in-process counters; every
    # shard of every call evaluated columnar-side (1 + 2 + 4 pieces).
    assert backend.columnar_runs == before + 7
    # The resident pieces interned themselves and are tracked by stats.
    assert session.stats()["columnar_view_cache"]["interned"] >= 2


def test_worker_execution_path_is_columnar(acyclic):
    # _worker_execute is the exact function a process-pool worker runs;
    # calling it in-process shows shards evaluate columnar-side on workers
    # too.  The payload is what the coordinator ships on first routing: a
    # full-ship tag over pickled DatabaseWire bytes, decoded straight into
    # a warm columnar store.
    import pickle

    from repro.engine.runtime import _SHIP_FULL

    query, database = acyclic
    backend = backend_for(STRATEGY_YANNAKAKIS)
    before = backend.columnar_runs
    payload = (
        _SHIP_FULL,
        pickle.dumps(database.to_wire(), protocol=pickle.HIGHEST_PROTOCOL),
    )
    reply = _worker_execute(
        ("token-columnar-test", payload, TASK_ANSWER, query, False,
         STRATEGY_YANNAKAKIS)
    )
    assert reply[0] == _REPLY_OK
    assert reply[1] == naive_enumerate_answers(query, database)
    assert backend.columnar_runs == before + 1
