"""The execution-runtime layer: the Inline/Thread/Process runtimes, the
registry, session integration (``runtime=`` per call and per session), the
resident-shard protocol of the process runtime, and the operator counters.
"""

import os
import signal
import time

import pytest

from repro.cq import generators as cqgen
from repro.cq.homomorphism import naive_count_answers, naive_enumerate_answers
from repro.engine import (
    EngineSession,
    ExecutionRuntime,
    InlineRuntime,
    ProcessRuntime,
    RUNTIME_INLINE,
    RUNTIME_PROCESS,
    RUNTIME_THREAD,
    RuntimeTask,
    ThreadRuntime,
    register_runtime,
    registered_runtimes,
    runtime_for,
)
import repro.engine.runtime as runtime_module


@pytest.fixture(scope="module")
def process_runtime():
    runtime = ProcessRuntime(max_workers=2)
    yield runtime
    runtime.close()


@pytest.fixture
def wheel_instance():
    query = cqgen.hub_cycle_query(4)
    return query, cqgen.random_database(query, 8, 60, seed=9)


def _echo_tasks(runtime, count=4, parallel=None):
    query = cqgen.chain_query(2)
    tasks = [
        RuntimeTask("answer", query, None, label=f"t{i}") for i in range(count)
    ]
    outcomes = runtime.run(tasks, lambda task: task.label, parallel=parallel)
    return tasks, outcomes


class TestRegistry:
    def test_builtins_registered(self):
        assert {RUNTIME_INLINE, RUNTIME_THREAD, RUNTIME_PROCESS} <= set(
            registered_runtimes()
        )

    def test_runtime_for_resolves_names_and_instances(self):
        inline = runtime_for(RUNTIME_INLINE)
        assert isinstance(inline, InlineRuntime)
        # Named resolution returns one shared instance per process.
        assert runtime_for(RUNTIME_INLINE) is inline
        mine = ThreadRuntime(max_workers=2)
        assert runtime_for(mine) is mine
        assert isinstance(runtime_for(None), ThreadRuntime)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime"):
            runtime_for("hamster-wheel")

    def test_register_custom_runtime(self):
        class Recorder(InlineRuntime):
            name = "recorder"

        try:
            register_runtime("recorder", Recorder)
            with pytest.raises(ValueError, match="already registered"):
                register_runtime("recorder", Recorder)
            register_runtime("recorder", Recorder, replace=True)
            assert "recorder" in registered_runtimes()
            assert isinstance(runtime_for("recorder"), Recorder)
        finally:
            with runtime_module._registry_lock:
                runtime_module._FACTORIES.pop("recorder", None)
                runtime_module._SHARED.pop("recorder", None)


class TestInlineAndThread:
    def test_outcomes_align_with_tasks(self):
        for runtime in (InlineRuntime(), ThreadRuntime(max_workers=4)):
            tasks, outcomes = _echo_tasks(runtime)
            assert [o.value for o in outcomes] == [t.label for t in tasks]
            assert all(o.seconds >= 0.0 for o in outcomes)

    def test_inline_runs_on_the_calling_thread(self):
        _, outcomes = _echo_tasks(InlineRuntime())
        assert {o.worker for o in outcomes} == {"inline"}

    def test_thread_parallel_one_is_sequential(self):
        _, outcomes = _echo_tasks(ThreadRuntime(), parallel=1)
        assert {o.worker for o in outcomes} == {"thread:main"}

    def test_thread_fan_out_uses_bounded_workers(self):
        _, outcomes = _echo_tasks(ThreadRuntime(max_workers=2), count=6)
        workers = {o.worker for o in outcomes}
        assert len(workers) <= 2
        assert all(worker.startswith("thread:") for worker in workers)

    def test_thread_worker_cap_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadRuntime(max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            ProcessRuntime(max_workers=0)


class TestSessionIntegration:
    @pytest.mark.parametrize("spec", ["inline", "thread"])
    def test_sharded_results_match_naive_per_runtime(self, spec, wheel_instance):
        query, database = wheel_instance
        expected = naive_enumerate_answers(query, database)
        session = EngineSession()
        for shards in (1, 2, 4):
            result = session.answer(query, database, shards=shards, runtime=spec)
            assert result.rows == expected
            assert result.runtime["name"] == spec
            count = session.count(query, database, shards=shards, runtime=spec)
            assert count.count == naive_count_answers(query, database)

    def test_runtime_recorded_in_rationale_and_timings(self, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        result = session.answer(query, database, shards=4, runtime="inline")
        assert "runtime: inline" in result.plan.rationale
        record = result.runtime
        assert record["tasks"] == 4
        assert len(record["per_task_seconds"]) == 4
        assert record["workers"] == ["inline"]
        # The sharded record still carries the per-shard timings.
        assert result.sharding["per_shard_seconds"] == record["per_task_seconds"]

    def test_session_default_runtime_applies_to_fan_out(self, wheel_instance):
        query, database = wheel_instance
        session = EngineSession(runtime="inline")
        result = session.answer(query, database, shards=2)
        assert result.runtime["name"] == "inline"
        # ... and an explicit per-call runtime overrides the default.
        override = session.answer(query, database, shards=2, runtime="thread")
        assert override.runtime["name"] == "thread"
        # The plain single-query fast path bypasses dispatch entirely.
        plain = session.answer(query, database)
        assert plain.runtime is None

    def test_batch_routes_through_runtime(self, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        results = session.answer_many([query, query], database, runtime="inline")
        assert results[0].rows == naive_enumerate_answers(query, database)
        assert results[0].runtime == {"name": "inline", "worker": "inline"}
        assert results[1].timings["dedup_of"] == 0

    def test_stats_count_tasks_runtimes_and_modes(self, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        session.answer(query, database, shards=4, runtime="inline")
        session.answer(query, database, shards=1, runtime="inline")
        session.answer_many([query], database)
        stats = session.stats()
        assert stats["runtime"]["tasks_dispatched"] == 4 + 1 + 1
        assert stats["runtime"]["calls_by_runtime"] == {"inline": 2, "thread": 1}
        assert "inline" in stats["runtime"]["workers_used"]
        assert stats["sharding"]["calls"] == 2
        assert stats["sharding"]["by_mode"] == {
            "co-partitioned": 1,
            "single-shard": 1,
        }

    def test_clear_cache_resets_entries_and_counters(self, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        session.answer(query, database, shards=2)
        session.answer(query, database, shards=2)
        assert session.plan_cache.hits > 0
        assert session._partition_cache.hits > 0
        session.clear_cache()
        for cache in (
            session.cache,
            session.core_cache,
            session.plan_cache,
            session._partition_cache,
        ):
            assert len(cache) == 0
            assert cache.info()["hits"] == 0
            assert cache.info()["misses"] == 0

    def test_partition_cache_serves_repeated_sharded_calls(self, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        session.answer(query, database, shards=4)
        misses = session._partition_cache.misses
        session.answer(query, database, shards=4)
        session.count(query, database, shards=4)
        assert session._partition_cache.misses == misses
        assert session._partition_cache.hits >= 2

    def test_partition_cache_invalidated_by_database_growth(self, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        before = session.answer(query, database, shards=4).rows
        # Plant a fresh satisfying assignment: the wheel (hub h, cycle
        # x0..x3) needs H_i(h, x_i, x_{i+1}) for every i.
        for index in range(4):
            database.add_fact(
                f"H{index}", ("fresh-hub", f"v{index}", f"v{(index + 1) % 4}")
            )
        after = session.answer(query, database, shards=4)
        planted = ("fresh-hub", "v0", "v1", "v2", "v3")
        assert planted not in before
        assert planted in after.rows
        assert after.rows == naive_enumerate_answers(query, database)


class TestProcessRuntime:
    def test_sharded_results_match_naive(self, process_runtime, wheel_instance):
        query, database = wheel_instance
        expected = naive_enumerate_answers(query, database)
        session = EngineSession()
        for shards in (1, 2, 4):
            result = session.answer(
                query, database, shards=shards, runtime=process_runtime
            )
            assert result.rows == expected
            assert result.runtime["name"] == "process"
            assert all(w.startswith("pid:") for w in result.runtime["workers"])
            count = session.count(
                query, database, shards=shards, runtime=process_runtime
            )
            assert count.count == len(expected)
            boolean = session.is_satisfiable(
                query, database, shards=shards, runtime=process_runtime
            )
            assert boolean.satisfiable == bool(expected)

    def test_workers_run_out_of_process(self, process_runtime, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        result = session.answer(query, database, shards=4, runtime=process_runtime)
        pids = {int(w.split(":", 1)[1]) for w in result.runtime["workers"]}
        assert pids, "no worker pids recorded"
        assert os.getpid() not in pids

    def test_shards_ship_once_then_stay_resident(self, wheel_instance):
        query, database = wheel_instance
        # Owner routing makes residency deterministic at ANY pool size: an
        # N-shard cold start ships exactly N pieces (one per owner — it used
        # to converge to N x workers), each piece is resident on exactly one
        # worker, and warm calls ship tokens only.
        runtime = ProcessRuntime(max_workers=3)
        try:
            session = EngineSession()
            session.answer(query, database, shards=4, runtime=runtime)
            stats = runtime.stats()
            assert stats["shipments"] == 4
            assert stats["shipment_bytes"] > 0
            for _ in range(3):
                session.answer(query, database, shards=4, runtime=runtime)
                session.count(query, database, shards=4, runtime=runtime)
            warm = runtime.stats()
            assert warm["shipments"] == stats["shipments"]
            assert warm["shipment_bytes"] == stats["shipment_bytes"]
            assert warm["recovery_reships"] == 0
            # Each piece is resident on exactly one worker...
            residency = runtime.residency()
            tokens = [t for held in residency.values() for t in held]
            assert len(tokens) == len(set(tokens)) == 4
            # ... the one its routing table says owns it, ±1 balanced.
            routing = runtime.routing()
            for token, owner in routing.items():
                assert token in residency[owner]
            loads = sorted(len(held) for held in residency.values())
            assert loads == [1, 1, 2]
            # Every task ran on its owner: no replica routing on shards.
            assert warm["tasks_replica_routed"] == 0
            assert warm["tasks_owner_routed"] == warm["tasks_dispatched"]
        finally:
            runtime.close()

    def test_database_growth_reships_and_stays_exact(self, process_runtime):
        query = cqgen.hub_cycle_query(3)
        database = cqgen.random_database(query, 6, 20, seed=3)
        session = EngineSession()
        before = session.answer(query, database, shards=2, runtime=process_runtime)
        for index in range(3):
            database.add_fact(
                f"H{index}", ("grown-hub", f"v{index}", f"v{(index + 1) % 3}")
            )
        after = session.answer(query, database, shards=2, runtime=process_runtime)
        planted = ("grown-hub", "v0", "v1", "v2")
        assert planted not in before.rows
        assert planted in after.rows
        assert after.rows == naive_enumerate_answers(query, database)

    def test_batch_path_matches_inline(self, process_runtime):
        queries = [cqgen.chain_query(3), cqgen.cycle_query(4), cqgen.chain_query(3)]
        from repro.cq import ConjunctiveQuery

        database = cqgen.grid_constraint_database(
            ConjunctiveQuery(queries[0].atoms + queries[1].atoms), colours=3
        )
        session = EngineSession()
        inline = session.answer_many(queries, database, runtime="inline")
        remote = session.answer_many(queries, database, runtime=process_runtime)
        assert [r.rows for r in inline] == [r.rows for r in remote]
        assert remote[0].runtime["name"] == "process"
        assert remote[2].timings["dedup_of"] == 0

    def test_use_core_and_forced_strategies_reproduce_on_workers(
        self, process_runtime
    ):
        query = cqgen.zigzag_cycle_query(6, free_variables=["x0", "x1"])
        database = cqgen.random_database(query, 5, 14, seed=5)
        expected = naive_enumerate_answers(query, database)
        session = EngineSession()
        result = session.answer(
            query, database, shards=4, use_core=True, runtime=process_runtime
        )
        assert result.rows == expected
        forced = session.plan(query, force_strategy="indexed-backtracking")
        via_plan = session.answer(
            query, database, plan=forced, shards=2, runtime=process_runtime
        )
        assert via_plan.rows == expected

    def test_prebuilt_core_plan_reproduces_on_workers(self, process_runtime):
        # Regression: a pre-built use_core plan arrives with use_core=False
        # at the sharded path; the shipped task must carry the PLAN's
        # provenance, or the worker re-plans the full cyclic query under
        # the core's forced strategy and fails.
        query = cqgen.zigzag_cycle_query(6, free_variables=["x0", "x1"])
        database = cqgen.random_database(query, 5, 14, seed=5)
        session = EngineSession()
        plan = session.plan(query, use_core=True)
        assert plan.query != query, "scenario needs a core-substituted plan"
        result = session.answer(
            query, database, plan=plan, shards=2, runtime=process_runtime
        )
        assert result.rows == naive_enumerate_answers(query, database)

    def test_single_call_offload(self, process_runtime, wheel_instance):
        query, database = wheel_instance
        session = EngineSession()
        result = session.answer(query, database, runtime=process_runtime)
        assert result.rows == naive_enumerate_answers(query, database)
        assert result.sharding["mode"] == "single-shard"
        assert result.runtime["name"] == "process"

    def test_pool_recovers_from_a_killed_worker(self, wheel_instance):
        query, database = wheel_instance
        expected = naive_enumerate_answers(query, database)
        runtime = ProcessRuntime(max_workers=1)
        try:
            session = EngineSession()
            first = session.answer(query, database, shards=2, runtime=runtime)
            assert first.rows == expected
            pid = int(first.runtime["workers"][0].split(":", 1)[1])
            os.kill(pid, signal.SIGKILL)
            deadline = time.time() + 5
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                except OSError:
                    break
                time.sleep(0.05)
            second = session.answer(query, database, shards=2, runtime=runtime)
            assert second.rows == expected
            assert runtime.stats()["worker_restarts"] >= 1
        finally:
            runtime.close()

    def test_killing_one_worker_reships_only_its_shards(self, wheel_instance):
        query, database = wheel_instance
        expected = naive_enumerate_answers(query, database)
        runtime = ProcessRuntime(max_workers=3)
        try:
            session = EngineSession()
            first = session.answer(query, database, shards=4, runtime=runtime)
            assert first.rows == expected
            routing = runtime.routing()
            stats = runtime.stats()
            victim, pid = next(
                (index, pid)
                for index, pid in sorted(stats["worker_pids"].items())
                if pid is not None and stats["resident_by_worker"][index] > 0
            )
            victim_tokens = runtime.residency()[victim]
            survivor_residency = {
                index: held
                for index, held in runtime.residency().items()
                if index != victim
            }
            os.kill(pid, signal.SIGKILL)
            deadline = time.time() + 5
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                except OSError:
                    break
                time.sleep(0.05)
            second = session.answer(query, database, shards=4, runtime=runtime)
            assert second.rows == expected
            after = runtime.stats()
            assert after["worker_restarts"] >= 1
            # Exactly the dead worker's pieces re-shipped; every survivor's
            # residency is untouched.
            assert after["shipments"] - stats["shipments"] == len(victim_tokens)
            residency = runtime.residency()
            for index, held in survivor_residency.items():
                assert held <= residency[index]
            # ... and only the dead worker's tokens were reassigned.
            for token, owner in runtime.routing().items():
                if token in routing and token not in victim_tokens:
                    assert owner == routing[token]
        finally:
            runtime.close()

    def test_stats_shape(self, process_runtime):
        stats = process_runtime.stats()
        assert stats["name"] == "process"
        assert set(stats) == {
            "name",
            "max_workers",
            "pool_live",
            "resident_datasets",
            "tasks_dispatched",
            "tasks_owner_routed",
            "tasks_replica_routed",
            "tasks_cancelled",
            "shipments",
            "shipment_bytes",
            "delta_shipments",
            "delta_bytes",
            "tokens_retired",
            "recovery_reships",
            "worker_restarts",
            "resident_by_worker",
            "worker_pids",
        }

    def test_runtime_counters_surface_in_session_stats(self, wheel_instance):
        query, database = wheel_instance
        runtime = ProcessRuntime(max_workers=2)
        try:
            session = EngineSession()
            session.answer(query, database, shards=2, runtime=runtime)
            report = session.stats()["runtime"]["by_runtime"]
            assert report["process"]["shipments"] == 2
            assert report["process"]["shipment_bytes"] > 0
            assert report["process"]["resident_by_worker"] == {0: 1, 1: 1}
        finally:
            runtime.close()
