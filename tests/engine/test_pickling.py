"""Serialization contract: queries, plans, and databases round-trip pickle.

A hard prerequisite of the process runtime: every task the coordinator
ships (:class:`ConjunctiveQuery`, sometimes a :class:`Database` piece) and
everything a worker could send back must survive ``pickle.dumps``/``loads``
with unchanged semantics.  Memoized derived state — key indexes on
relations, incidence/adjacency maps and hashes on hypergraphs, the
atom-view memo on databases — must be *dropped* in transit: it is rebuilt
on the receiving side, and shipping it would both bloat the payload and
risk resurrecting stale caches.
"""

import pickle

import pytest

from repro.cq import Atom, ConjunctiveQuery, Database
from repro.cq import generators as cqgen
from repro.cq.query import Constant
from repro.cq.relational import NamedRelation, from_atom
from repro.engine import Engine, EngineSession
from repro.hypergraphs.hypergraph import Hypergraph


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


QUERIES = [
    ("chain", cqgen.chain_query(3)),
    ("chain-projected", cqgen.chain_query(3).project(["x0", "x3"])),
    ("cycle-boolean", cqgen.cycle_query(4).as_boolean()),
    ("hub-cycle", cqgen.hub_cycle_query(4)),
    ("zigzag-self-join", cqgen.zigzag_cycle_query(4, free_variables=["x0", "x1"])),
    (
        "constants-and-repeats",
        ConjunctiveQuery(
            [Atom("R", ["x", Constant(1), "x"]), Atom("S", ["x", "y"])],
            free_variables=["y", "x"],
        ),
    ),
]


class TestQueryRoundTrip:
    @pytest.mark.parametrize("name,query", QUERIES, ids=[n for n, _ in QUERIES])
    def test_query_equal_and_head_order_preserved(self, name, query):
        copy = roundtrip(query)
        assert copy == query
        # __eq__ compares the head as a set; the answer-tuple column order
        # must survive too.
        assert copy.free_variables == query.free_variables
        assert copy.atoms == query.atoms

    @pytest.mark.parametrize("name,query", QUERIES, ids=[n for n, _ in QUERIES])
    def test_answers_identical_pre_and_post_roundtrip(self, name, query):
        database = cqgen.random_database(query, 5, 14, seed=7)
        session = EngineSession()
        expected = session.answer(query, database).rows
        copy_query = roundtrip(query)
        copy_database = roundtrip(database)
        assert copy_database == database
        assert EngineSession().answer(copy_query, copy_database).rows == expected


class TestPlanRoundTrip:
    @pytest.mark.parametrize("name,query", QUERIES, ids=[n for n, _ in QUERIES])
    def test_plan_roundtrips_and_still_executes(self, name, query):
        session = EngineSession()
        plan = session.plan(query)
        copy = roundtrip(plan)
        assert copy.strategy == plan.strategy
        assert copy.width == plan.width
        assert copy.rationale == plan.rationale
        assert copy.query == plan.query
        assert copy.source_query == plan.source_query
        # The shipped plan embeds its witness: a fresh engine executes it
        # without re-planning and agrees with the original.
        database = cqgen.random_database(query, 5, 14, seed=3)
        assert (
            Engine().answer(query, database, plan=copy).rows
            == session.answer(query, database, plan=plan).rows
        )

    def test_hypergraph_roundtrip_drops_lazy_caches(self):
        hypergraph = cqgen.cycle_query(5).hypergraph()
        hypergraph.degree()  # force the incidence map
        hash(hypergraph)
        copy = roundtrip(hypergraph)
        assert copy == hypergraph
        assert hash(copy) == hash(hypergraph)
        assert copy._incidence is None
        assert copy._adjacency is None


class TestDerivedStateDropped:
    def test_named_relation_roundtrip_drops_key_indexes(self):
        relation = NamedRelation(("a", "b"), {(1, 2), (3, 4)})
        relation.key_index(("b",))
        assert relation.cached_index_keys
        copy = roundtrip(relation)
        assert copy == relation
        assert copy.cached_index_keys == ()
        # ... and the rebuilt positions still serve every operation.
        assert copy.column_index("b") == 1
        assert copy.project(("b",)).rows == {(2,), (4,)}

    def test_database_roundtrip_drops_atom_view_cache(self):
        query = cqgen.chain_query(2)
        database = cqgen.random_database(query, 5, 10, seed=1).enable_atom_cache()
        view = from_atom(query.atoms[0], database)
        assert from_atom(query.atoms[0], database) is view  # memo live
        copy = roundtrip(database)
        assert copy == database
        assert copy.atom_cache is None


class TestWireRoundTrip:
    """The compact shipping form the process runtime actually uses: a
    database crosses the boundary as pickled DatabaseWire bytes and decodes
    into an equal database with a *warm* columnar store."""

    @pytest.mark.parametrize("name,query", QUERIES, ids=[n for n, _ in QUERIES])
    def test_wire_roundtrip_preserves_answers(self, name, query):
        database = cqgen.random_database(query, 5, 14, seed=7)
        expected = EngineSession().answer(query, database).rows
        decoded = Database.from_wire(
            pickle.loads(pickle.dumps(database.to_wire()))
        )
        assert decoded == database
        assert EngineSession().answer(query, decoded).rows == expected

    def test_decoded_database_arrives_with_a_warm_store(self):
        query = cqgen.chain_query(3)
        database = cqgen.random_database(query, 5, 14, seed=7)
        decoded = Database.from_wire(
            pickle.loads(pickle.dumps(database.to_wire()))
        )
        # Unlike a plain pickle (which DROPS the derived store), the wire
        # decode installs one: the first query never re-interns the tuples.
        assert pickle.loads(pickle.dumps(database)).columnar_cache is None
        store = decoded.columnar_cache
        assert store is not None
        assert len(store.interner) > 0
        assert decoded.atom_cache is None  # the memo stays opt-in

    def test_wire_is_smaller_than_pickled_database(self):
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, 30, 1500, seed=5)
        wire = len(pickle.dumps(database.to_wire(), pickle.HIGHEST_PROTOCOL))
        plain = len(pickle.dumps(database, pickle.HIGHEST_PROTOCOL))
        assert wire < plain


class TestAtomViewCache:
    def test_disabled_by_default(self):
        query = cqgen.chain_query(2)
        database = cqgen.random_database(query, 5, 10, seed=1)
        assert database.atom_cache is None
        assert from_atom(query.atoms[0], database) is not from_atom(
            query.atoms[0], database
        )

    def test_memoizes_per_atom_pattern(self):
        query = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("R", ["y", "x"])]
        )
        database = Database()
        database.add_fact("R", (1, 2))
        database.add_fact("R", (2, 1))
        database.enable_atom_cache()
        first = from_atom(query.atoms[0], database)
        assert from_atom(query.atoms[0], database) is first
        # A different term pattern over the same relation is its own view.
        swapped = from_atom(query.atoms[1], database)
        assert swapped is not first
        assert swapped.columns == ("y", "x")

    def test_growth_extends_the_cached_view_in_place(self):
        query = cqgen.chain_query(1)
        database = Database()
        database.add_fact("R0", (1, 2))
        database.enable_atom_cache()
        view = from_atom(query.atoms[0], database)
        view.key_index(("x0",))  # memoize an index to be patched
        database.add_fact("R0", (3, 4))
        fresh = from_atom(query.atoms[0], database)
        # The version seam extends the resident view instead of rebuilding.
        assert fresh is view
        assert len(fresh) == 2
        # The memoized key index was patched in place, not dropped.
        assert fresh.cached_index_keys
        assert fresh.key_index(("x0",))[(3,)] == [(3, 4)]

    def test_copy_and_partition_do_not_inherit_the_cache(self):
        query = cqgen.hub_cycle_query(3)
        database = cqgen.random_database(query, 6, 20, seed=2).enable_atom_cache()
        from_atom(query.atoms[0], database)
        assert database.copy().atom_cache is None
        pieces = database.partition({"H0": 0}, 2)
        assert all(piece.atom_cache is None for piece in pieces)
