"""Regression guard: the cost-based join ordering never does worse than the
historical overlap-greedy order on the existing workloads.

For every scenario of the workload seeds, the full multi-way join pool of
the query (one :func:`from_atom` relation per atom) is evaluated under both
ordering modes with a step trace.  Two contracts:

* **per scenario** — the cost-based order's intermediates never *blow up*
  relative to static: greedy-by-estimate optimises one step at a time, so
  tiny sequence-level losses to the static order are possible on uniform
  data (both greedies are heuristics over the whole sequence), but anything
  beyond noise means the estimates are steering the join order wrong;
* **in aggregate per seed** — summed over the whole workload, the
  cost-based order materialises **no more** rows than the static one: the
  statistics must pay for themselves on the very workloads that existed
  before they did.

The skewed scenarios (where the orders genuinely diverge and cost-based
must win big) are covered by ``benchmarks/bench_engine_scaling.py``'s
``skewed_answer`` family and its ratio gate.
"""

import os

import pytest

from repro.cq import workloads
from repro.cq.relational import from_atom, natural_join_all
from repro.cq.statistics import (
    ORDERING_STATIC,
    forced_join_ordering,
)


def _seeds():
    raw = os.environ.get("WORKLOAD_SEEDS", "0,1")
    return [int(part) for part in raw.split(",") if part.strip() != ""]


CASES = [
    (seed, scenario)
    for seed in _seeds()
    for scenario in workloads.generate_workload(seed=seed, size="small")
    # Pools of < 3 have no ordering decision; skip the trivial cases.
    if len({atom.relation for atom in scenario.query.atoms}) >= 3
]


def _pool(scenario):
    seen = set()
    pool = []
    for atom in scenario.query.atoms:
        if atom.relation in seen:
            continue
        seen.add(atom.relation)
        if not scenario.database.has_relation(atom.relation):
            return None
        pool.append(from_atom(atom, scenario.database))
    return pool


def _traces(scenario):
    pool = _pool(scenario)
    if pool is None:
        return None
    static_trace: list = []
    with forced_join_ordering(ORDERING_STATIC):
        static_result = natural_join_all(list(pool), trace=static_trace)
    cost_trace: list = []
    cost_result = natural_join_all(list(pool), trace=cost_trace)
    # Same answer either way: the ordering is pure cost policy.
    assert cost_result.rows == static_result.project(cost_result.columns).rows
    return cost_trace, static_trace


@pytest.mark.parametrize(
    "seed,scenario", CASES, ids=[f"ordering/{s.name}" for _, s in CASES]
)
def test_cost_based_intermediates_never_blow_up(seed, scenario):
    traces = _traces(scenario)
    if traces is None:
        pytest.skip("query mentions a relation absent from the database")
    cost_trace, static_trace = traces
    # Greedy-by-estimate can lose a few rows to greedy-by-overlap over a
    # whole join sequence; it must never lose a *factor* — that would mean
    # the estimates steered the order into the blow-up they exist to avoid.
    assert sum(cost_trace) <= 1.5 * sum(static_trace) + 32, (
        f"{scenario.name}: cost-based materialised {sum(cost_trace)} rows "
        f"vs static {sum(static_trace)} ({cost_trace} vs {static_trace})"
    )


@pytest.mark.parametrize("seed", _seeds())
def test_cost_based_wins_in_aggregate(seed):
    cost_total = 0
    static_total = 0
    for case_seed, scenario in CASES:
        if case_seed != seed:
            continue
        traces = _traces(scenario)
        if traces is None:
            continue
        cost_trace, static_trace = traces
        cost_total += sum(cost_trace)
        static_total += sum(static_trace)
    assert static_total > 0, "the workload produced no multi-way joins"
    assert cost_total <= static_total, (
        f"seed {seed}: cost-based materialised {cost_total} intermediate "
        f"rows vs static {static_total} across the workload"
    )
