"""Planner dispatch: the right strategy for the certified structure, and
observational equivalence of ``answer()`` with the naive reference solver on
randomized acyclic and cyclic instances."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cq import Atom, ConjunctiveQuery
from repro.cq import generators as cqgen
from repro.cq.homomorphism import _solve_naive
from repro.engine import (
    Engine,
    STRATEGY_BACKTRACKING,
    STRATEGY_GHD,
    STRATEGY_TRIVIAL,
    STRATEGY_YANNAKAKIS,
)


def naive_answers(query, database):
    """Ground truth through the naive linear-scan solver."""
    if not query.atoms:
        return {()}
    free = query.free_variables
    return {tuple(solution[v] for v in free) for solution in _solve_naive(query, database)}


@pytest.fixture
def engine():
    return Engine()


class TestDispatch:
    def test_empty_query_is_trivial(self, engine):
        plan = engine.plan(ConjunctiveQuery([]))
        assert plan.strategy == STRATEGY_TRIVIAL

    @pytest.mark.parametrize(
        "query",
        [cqgen.chain_query(4), cqgen.star_query(3), cqgen.chain_query(2, arity=3)],
        ids=["chain4", "star3", "chain2-arity3"],
    )
    def test_acyclic_gets_direct_yannakakis(self, engine, query):
        plan = engine.plan(query)
        assert plan.strategy == STRATEGY_YANNAKAKIS
        assert plan.width == 1
        assert plan.decomposition is not None
        assert plan.decomposition.is_valid_for(query.hypergraph())
        # The load-bearing property: planning an acyclic query never invoked
        # the decomposition search.
        assert plan.analysis.searched_decomposition is False

    @pytest.mark.parametrize("length", [3, 5, 6])
    def test_bounded_ghw_cycle_gets_ghd(self, engine, length):
        query = cqgen.cycle_query(length)
        plan = engine.plan(query)
        assert plan.strategy == STRATEGY_GHD
        assert plan.width == 2
        assert plan.decomposition.is_valid_for(query.hypergraph())

    def test_high_width_falls_back_to_backtracking(self, engine):
        # The 4x4 jigsaw has ghw >= 4, beyond the default width limit of 3.
        plan = engine.plan(cqgen.jigsaw_query(4, 4))
        assert plan.strategy == STRATEGY_BACKTRACKING
        assert plan.decomposition is None
        assert "fallback" in plan.rationale

    def test_width_limit_is_configurable(self):
        narrow = Engine(max_ghd_width=1)
        plan = narrow.plan(cqgen.cycle_query(4))
        assert plan.strategy == STRATEGY_BACKTRACKING
        # Cyclic implies ghw >= 2, so a width-1 limit never pays for a search.
        assert plan.analysis.searched_decomposition is False

    def test_constant_only_query_gets_honest_rationale(self, engine):
        from repro.cq.query import Constant

        plan = engine.plan(ConjunctiveQuery([Atom("C", [Constant(1)])]))
        assert plan.strategy == STRATEGY_BACKTRACKING
        assert plan.analysis.is_acyclic is True
        assert "constant-only" in plan.rationale
        assert plan.analysis.searched_decomposition is False

    def test_explain_mentions_strategy_and_rationale(self, engine):
        plan = engine.plan(cqgen.cycle_query(4))
        text = plan.explain()
        assert STRATEGY_GHD in text
        assert "Prop. 2.2" in text


class TestSemanticPlanning:
    def zigzag_cycle(self):
        """Cyclic syntax, trivial core: the Theorem 4.12 showpiece."""
        return ConjunctiveQuery(
            [
                Atom("E", ["x0", "x1"]),
                Atom("E", ["x2", "x1"]),
                Atom("E", ["x2", "x3"]),
                Atom("E", ["x0", "x3"]),
            ],
            free_variables=[],
        )

    def test_core_turns_cyclic_into_acyclic(self, engine):
        query = self.zigzag_cycle()
        raw = engine.plan(query)
        semantic = engine.plan(query, use_core=True)
        assert raw.strategy == STRATEGY_GHD
        assert semantic.strategy == STRATEGY_YANNAKAKIS
        assert len(semantic.query.atoms) == 1
        assert "core" in semantic.rationale

    def test_core_preserves_answers(self, engine):
        query = self.zigzag_cycle()
        database = cqgen.planted_database(query, 3, 6, seed=5)
        direct = engine.is_satisfiable(query, database)
        semantic = engine.is_satisfiable(query, database, use_core=True)
        assert direct.satisfiable == semantic.satisfiable

    def test_core_cache_respects_free_variable_order(self, engine):
        # Same atoms, reordered head: a cache hit across the two would hand
        # back answer tuples in the wrong column order.
        atoms = [
            Atom("E", ["x0", "x1"]),
            Atom("E", ["x2", "x1"]),
            Atom("E", ["x2", "x3"]),
            Atom("E", ["x0", "x3"]),
        ]
        first = ConjunctiveQuery(atoms, free_variables=["x0", "x1"])
        second = ConjunctiveQuery(atoms, free_variables=["x1", "x0"])
        database = cqgen.planted_database(first, 3, 6, seed=5)
        rows_first = engine.answer(first, database, use_core=True).rows
        rows_second = engine.answer(second, database, use_core=True).rows
        assert rows_second == {(b, a) for (a, b) in rows_first}
        assert rows_second == engine.answer(second, database).rows


class TestForcedStrategy:
    def test_force_backtracking(self, engine):
        plan = engine.plan(cqgen.chain_query(3), force_strategy=STRATEGY_BACKTRACKING)
        assert plan.strategy == STRATEGY_BACKTRACKING
        assert "forced" in plan.rationale

    def test_force_yannakakis_on_cyclic_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.plan(cqgen.cycle_query(4), force_strategy=STRATEGY_YANNAKAKIS)

    def test_force_ghd_on_acyclic_uses_join_tree(self, engine):
        plan = engine.plan(cqgen.chain_query(3), force_strategy=STRATEGY_GHD)
        assert plan.strategy == STRATEGY_GHD
        assert plan.width == 1

    def test_unknown_strategy_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.plan(cqgen.chain_query(3), force_strategy="quantum")

    def test_force_trivial_on_nonempty_query_rejected(self, engine):
        with pytest.raises(ValueError, match="atom-less"):
            engine.plan(cqgen.chain_query(3), force_strategy=STRATEGY_TRIVIAL)


# ----------------------------------------------------------------------
# Property: engine results == naive solver, with the expected dispatch.
# ----------------------------------------------------------------------
@st.composite
def planner_instance(draw):
    """A random acyclic or cyclic instance, tagged with its expected strategy."""
    kind = draw(st.sampled_from(["chain", "star", "cycle", "jigsaw"]))
    if kind == "chain":
        query, expected = cqgen.chain_query(draw(st.integers(2, 4))), STRATEGY_YANNAKAKIS
    elif kind == "star":
        query, expected = cqgen.star_query(draw(st.integers(2, 4))), STRATEGY_YANNAKAKIS
    elif kind == "cycle":
        query, expected = cqgen.cycle_query(draw(st.integers(3, 5))), STRATEGY_GHD
    else:
        query, expected = cqgen.jigsaw_query(2, 2), None  # width-dependent
    seed = draw(st.integers(0, 10_000))
    if draw(st.booleans()):
        database = cqgen.planted_database(query, 3, draw(st.integers(2, 6)), seed=seed)
    else:
        database = cqgen.random_database(query, 3, draw(st.integers(2, 6)), seed=seed)
    boolean = draw(st.booleans())
    if boolean:
        query = query.as_boolean()
    return query, database, expected


@given(planner_instance())
@settings(max_examples=40, deadline=None)
def test_engine_matches_naive_solver(instance):
    query, database, expected = instance
    engine = Engine()
    expected_rows = naive_answers(query, database)

    result = engine.answer(query, database)
    assert result.rows == expected_rows
    if expected is not None:
        assert result.strategy == expected
    if expected == STRATEGY_YANNAKAKIS:
        assert result.plan.analysis.searched_decomposition is False

    assert engine.is_satisfiable(query, database).satisfiable == bool(expected_rows)
    assert engine.count(query, database).count == len(expected_rows)
