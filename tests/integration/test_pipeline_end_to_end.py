"""Integration tests chaining several subsystems, mirroring the paper's proofs.

These tests execute the actual proof pipelines end to end:

* Theorem 4.7: degree-2 hypergraph -> reduce -> dual -> grid minor ->
  Lemma 4.4 -> jigsaw dilution, with every certificate validated.
* Theorem 4.8 machinery: jigsaw dilution + Theorem 3.4 reduction transports a
  CQ instance from the jigsaw to the original hypergraph, preserving answers
  and counts.
* Lemma 4.6 + Proposition 2.2: the dual-treewidth GHD actually answers
  queries over the hypergraph it decomposes.
"""

from repro.cq import (
    boolean_answer,
    count_answers,
    decomposition_boolean_answer,
    decomposition_count_answers,
)
from repro.cq import generators as cqgen
from repro.hypergraphs import generators
from repro.hypergraphs.isomorphism import are_isomorphic
from repro.jigsaws import dilute_to_jigsaw, planted_thickened_jigsaw_minor
from repro.reductions import reduce_along_dilution
from repro.reductions.parsimonious import verify_answer_preservation, verify_parsimony
from repro.structure import lemma46_bound
from repro.widths.ghw import ghw, ghw_upper_bound


class TestTheorem47Pipeline:
    def test_full_pipeline_with_certificates(self):
        source = generators.thickened_jigsaw(3, 2)
        certificate = dilute_to_jigsaw(source, 3, 2)
        assert certificate is not None
        # Every claim of the certificate is re-checked independently.
        assert certificate.result_is_jigsaw()
        assert certificate.sequence_replays()
        assert certificate.grid_minor.is_valid()
        assert certificate.reduced.is_reduced()
        checks = certificate.sequence.check_monotonicity(source)
        assert checks["degree_monotone"] and checks["size_monotone"]

    def test_pipeline_preserves_ghw_lower_bound_direction(self):
        # The source dilutes to a 3x3 jigsaw, so by Lemma 3.2(3) its ghw is at
        # least the jigsaw's, which the separator argument puts at >= 3.
        hypergraph, minor = planted_thickened_jigsaw_minor(3, 3)
        certificate = dilute_to_jigsaw(hypergraph, 3, 3, minor=minor)
        assert certificate.result_is_jigsaw()
        jigsaw_bounds = ghw(certificate.result, separator_budget=3)
        source_bounds = ghw_upper_bound(hypergraph)
        assert jigsaw_bounds.lower >= 3
        assert source_bounds.upper >= jigsaw_bounds.lower


class TestTheorem34Transport:
    def test_jigsaw_instance_transported_to_thickened_source(self):
        # This is the reduction used in Theorem 4.8: hardness of the jigsaw
        # class transports to any class whose members dilute to jigsaws.
        source = generators.thickened_jigsaw(2, 2)
        certificate = dilute_to_jigsaw(source, 2, 2)
        diluted = certificate.sequence.apply(source)
        query = cqgen.query_from_hypergraph(diluted, relation_prefix="J")
        for seed, satisfiable in [(0, True), (1, False)]:
            if satisfiable:
                database = cqgen.planted_database(query, 3, 5, seed=seed)
            else:
                database = cqgen.unsatisfiable_database(query, 3, 5, seed=seed)
            result = reduce_along_dilution(query, database, source, certificate.sequence)
            assert verify_answer_preservation(result)
            assert verify_parsimony(result)
            assert boolean_answer(result.query, result.database) == boolean_answer(query, database)

    def test_transported_instance_answerable_by_decomposition(self):
        source = generators.thickened_jigsaw(2, 2)
        certificate = dilute_to_jigsaw(source, 2, 2)
        diluted = certificate.sequence.apply(source)
        query = cqgen.query_from_hypergraph(diluted)
        database = cqgen.planted_database(query, 3, 5, seed=3)
        result = reduce_along_dilution(query, database, source, certificate.sequence)
        assert decomposition_boolean_answer(result.query, result.database) == boolean_answer(
            query, database
        )
        assert decomposition_count_answers(result.query, result.database) == count_answers(
            query, database
        )


class TestLemma46WithEvaluation:
    def test_dual_ghd_answers_queries(self):
        hypergraph = generators.jigsaw(2, 3)
        outcome = lemma46_bound(hypergraph)
        assert outcome["ghd_valid"] and outcome["inequality_holds"]
        query = cqgen.query_from_hypergraph(hypergraph)
        database = cqgen.planted_database(query, 3, 6, seed=2)
        from repro.widths.ghw import ghd_via_dual_treewidth

        ghd = ghd_via_dual_treewidth(hypergraph)
        assert decomposition_boolean_answer(query, database, ghd=ghd) == boolean_answer(
            query, database
        )

    def test_counting_matches_on_degree2_corpus_sample(self):
        from repro.benchdata import generate_corpus

        corpus = [e for e in generate_corpus(seed=5, scale=0.02) if e.is_degree_two]
        small = [e for e in corpus if e.hypergraph.num_edges <= 6][:4]
        assert small
        for entry in small:
            query = cqgen.query_from_hypergraph(entry.hypergraph)
            database = cqgen.planted_database(query, 3, 4, seed=1)
            assert decomposition_count_answers(query, database) == count_answers(query, database)
