"""The Theorem 3.4 reduction on a concrete CQ instance.

We take a query whose hypergraph is the 2x2 jigsaw (the "hard" structure),
pretend it arose as a dilution of a larger degree-2 hypergraph (the thickened
jigsaw), and transport query + database backwards along the dilution sequence.
The transported instance has the thickened hypergraph, the same answers
modulo projection, and exactly the same number of answers (Theorem 4.15).

Run with ``python examples/reduction_walkthrough.py``.
"""

from repro import engine
from repro.cq import generators as cq_generators
from repro.hypergraphs import generators
from repro.jigsaws import dilute_to_jigsaw
from repro.reductions import reduce_along_dilution
from repro.reductions.parsimonious import verify_answer_preservation, verify_parsimony


def main() -> None:
    source = generators.thickened_jigsaw(2, 2)
    certificate = dilute_to_jigsaw(source, 2, 2)
    diluted = certificate.sequence.apply(source)
    print(f"source hypergraph:  {source}")
    print(f"diluted hypergraph: {diluted} (the 2x2 jigsaw, up to labels)")
    print(f"dilution sequence:  {len(certificate.sequence)} operations")

    query = cq_generators.query_from_hypergraph(diluted, relation_prefix="J")
    database = cq_generators.planted_database(query, domain_size=3, tuples_per_relation=6, seed=42)
    plan = engine.plan_query(query)
    print(f"\noriginal instance: {len(query.atoms)} atoms, database size {database.size()}")
    print(f"  engine strategy: {plan.strategy}")
    print(f"  BCQ answer: {engine.is_satisfiable(query, database, plan=plan).value}")
    print(f"  #CQ answer: {engine.count(query, database, plan=plan).value}")

    result = reduce_along_dilution(query, database, source, certificate.sequence)
    print(f"\nreduced instance: {len(result.query.atoms)} atoms, database size {result.database.size()}")
    print(f"  blow-up factor ||D_p|| / ||D_q||: {result.blow_up:.2f}")
    print(f"  BCQ answer on the reduced instance: {engine.is_satisfiable(result.query, result.database).value}")
    print(f"  #CQ answer on the reduced instance: {engine.count(result.query, result.database).value}")
    print(f"\nanswers preserved under projection: {verify_answer_preservation(result)}")
    print(f"reduction is parsimonious:          {verify_parsimony(result)}")
    print("\nper-step database sizes along the reversed dilution sequence:")
    for index, step in enumerate(result.steps, start=1):
        print(f"  step {index}: {type(step.operation).__name__:<14} -> ||D|| = {step.database_size}")


if __name__ == "__main__":
    main()
