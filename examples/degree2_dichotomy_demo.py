"""The degree-2 characterisation (Theorem 4.1 / 4.12) as an experiment.

Bounded-ghw degree-2 query classes are answered fast by decomposition-guided
evaluation; the jigsaw class (unbounded ghw) makes the structure-blind solver
work increasingly hard.  Both routes run through the unified engine: the
planner picks the decomposition strategy on its own for the bounded classes,
and ``force_strategy`` pins each side of the comparison.  The demo also shows
the *semantic* side of Theorem 4.12: a query whose raw hypergraph is cyclic
but whose core is trivial has semantic ghw 1 and is easy no matter how it is
written — ``use_core=True`` makes the planner see through the syntax.

Run with ``python examples/degree2_dichotomy_demo.py``.
"""

import time

from repro.cq import Atom, ConjunctiveQuery
from repro.cq import generators as cq_generators
from repro.cq.semantic_width import semantic_ghw
from repro.engine import (
    Engine,
    STRATEGY_BACKTRACKING,
    STRATEGY_GHD,
)
from repro.widths.ghw import ghw

ENGINE = Engine()


def timed(label: str, function) -> None:
    start = time.perf_counter()
    value = function()
    elapsed = time.perf_counter() - start
    print(f"  {label:<42} {value!s:<6} ({elapsed:.4f}s)")


def bounded_ghw_classes() -> None:
    print("\n=== bounded ghw (tractable side) ===")
    for length in (4, 8, 12):
        query = cq_generators.cycle_query(length)
        database = cq_generators.grid_constraint_database(query, colours=3)
        plan = ENGINE.plan(query)
        print(f"cycle query, {length} atoms, planner: {plan.strategy} (width {plan.width}):")
        timed(
            "engine BCQ (auto plan)",
            lambda q=query, d=database, p=plan: ENGINE.is_satisfiable(q, d, plan=p).value,
        )


def jigsaw_classes() -> None:
    print("\n=== jigsaw queries (unbounded ghw side) ===")
    for rows, cols in ((2, 2), (2, 3), (3, 3)):
        query = cq_generators.jigsaw_query(rows, cols)
        database = cq_generators.planted_database(query, 3, 9, seed=rows * 10 + cols)
        bounds = ghw(query.hypergraph(), separator_budget=2)
        print(f"jigsaw {rows}x{cols} query, ghw >= {bounds.lower}:")
        blind = ENGINE.plan(query, force_strategy=STRATEGY_BACKTRACKING)
        timed(
            "structure-blind BCQ (forced backtracking)",
            lambda q=query, d=database, p=blind: ENGINE.is_satisfiable(q, d, plan=p).value,
        )

        def guided_run(q=query, d=database):
            # A fresh engine so the timing includes the decomposition search —
            # the real cost of the GHD route on the unbounded-ghw side.
            fresh = Engine()
            plan = fresh.plan(q, force_strategy=STRATEGY_GHD)
            return fresh.is_satisfiable(q, d, plan=plan).value

        timed("GHD-guided BCQ (search + evaluation)", guided_run)


def semantic_side() -> None:
    print("\n=== semantic ghw (Theorem 4.12) ===")
    atoms = [
        Atom("E", ["x0", "x1"]),
        Atom("E", ["x2", "x1"]),
        Atom("E", ["x2", "x3"]),
        Atom("E", ["x0", "x3"]),
    ]
    query = ConjunctiveQuery(atoms, free_variables=[])
    raw = ghw(query.hypergraph())
    semantic = semantic_ghw(query)
    print(f"zigzag 4-cycle query: raw ghw = {raw.upper}, semantic ghw = {semantic.upper}")
    print(f"core has {len(semantic.core.atoms)} atom(s): the class is tractable despite the cyclic syntax")
    syntactic_plan = ENGINE.plan(query)
    semantic_plan = ENGINE.plan(query, use_core=True)
    print(f"planner on the raw query:  {syntactic_plan.strategy}")
    print(f"planner with use_core:     {semantic_plan.strategy}")


def main() -> None:
    bounded_ghw_classes()
    jigsaw_classes()
    semantic_side()


if __name__ == "__main__":
    main()
