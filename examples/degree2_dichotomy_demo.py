"""The degree-2 characterisation (Theorem 4.1 / 4.12) as an experiment.

Bounded-ghw degree-2 query classes are answered fast by decomposition-guided
evaluation; the jigsaw class (unbounded ghw) makes the structure-blind solver
work increasingly hard.  The demo also shows the *semantic* side of
Theorem 4.12: a query whose raw hypergraph is cyclic but whose core is
trivial has semantic ghw 1 and is easy no matter how it is written.

Run with ``python examples/degree2_dichotomy_demo.py``.
"""

import time

from repro.cq import Atom, ConjunctiveQuery
from repro.cq import generators as cq_generators
from repro.cq.decomposition_eval import decomposition_boolean_answer
from repro.cq.homomorphism import boolean_answer
from repro.cq.semantic_width import semantic_ghw
from repro.widths.ghw import ghw


def timed(label: str, function) -> None:
    start = time.perf_counter()
    value = function()
    elapsed = time.perf_counter() - start
    print(f"  {label:<42} {value!s:<6} ({elapsed:.4f}s)")


def bounded_ghw_classes() -> None:
    print("\n=== bounded ghw (tractable side) ===")
    for length in (4, 8, 12):
        query = cq_generators.cycle_query(length)
        database = cq_generators.grid_constraint_database(query, colours=3)
        bounds = ghw(query.hypergraph())
        print(f"cycle query, {length} atoms, ghw = {bounds.upper}:")
        timed("GHD-guided BCQ", lambda q=query, d=database: decomposition_boolean_answer(q, d))


def jigsaw_classes() -> None:
    print("\n=== jigsaw queries (unbounded ghw side) ===")
    for rows, cols in ((2, 2), (2, 3), (3, 3)):
        query = cq_generators.jigsaw_query(rows, cols)
        database = cq_generators.planted_database(query, 3, 9, seed=rows * 10 + cols)
        bounds = ghw(query.hypergraph(), separator_budget=2)
        print(f"jigsaw {rows}x{cols} query, ghw >= {bounds.lower}:")
        timed("structure-blind BCQ", lambda q=query, d=database: boolean_answer(q, d))
        timed("GHD-guided BCQ", lambda q=query, d=database: decomposition_boolean_answer(q, d))


def semantic_side() -> None:
    print("\n=== semantic ghw (Theorem 4.12) ===")
    atoms = [
        Atom("E", ["x0", "x1"]),
        Atom("E", ["x2", "x1"]),
        Atom("E", ["x2", "x3"]),
        Atom("E", ["x0", "x3"]),
    ]
    query = ConjunctiveQuery(atoms, free_variables=[])
    raw = ghw(query.hypergraph())
    semantic = semantic_ghw(query)
    print(f"zigzag 4-cycle query: raw ghw = {raw.upper}, semantic ghw = {semantic.upper}")
    print(f"core has {len(semantic.core.atoms)} atom(s): the class is tractable despite the cyclic syntax")


def main() -> None:
    bounded_ghw_classes()
    jigsaw_classes()
    semantic_side()


if __name__ == "__main__":
    main()
