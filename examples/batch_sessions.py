"""Batched evaluation with EngineSession: dedup, plan reuse, parallelism.

Builds a seeded mixed workload (all four structural regimes of the paper,
with repeated and variable-renamed queries — the shape of real serving
traffic), answers it through one `EngineSession.answer_many` call, and
contrasts the session counters and wall-clock with a loop of cold per-query
`Engine().answer` calls.

Run:  PYTHONPATH=src python examples/batch_sessions.py
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cq import workloads
from repro.engine import Engine, EngineSession


def main() -> None:
    queries, database = workloads.mixed_batch(seed=42, copies=4, distinct=20)
    print(f"workload: {len(queries)} queries over {database}")

    session = EngineSession()
    start = time.perf_counter()
    results = session.answer_many(queries, database, parallel=4)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for query in queries:
        Engine().answer(query, database)  # cold engine per call: no reuse
    loop_seconds = time.perf_counter() - start

    stats = session.stats()
    evaluated = len(queries) - stats["dedup_hits"]
    print(f"\nbatch:      {batch_seconds:.3f}s  (one session, parallel=4)")
    print(f"cold loop:  {loop_seconds:.3f}s  (fresh engine per query)")
    print(f"speedup:    {loop_seconds / batch_seconds:.1f}x")
    print(f"\ndedup:      {stats['dedup_hits']} of {len(queries)} queries were "
          f"repeats of {evaluated} distinct classes")
    print(f"plan cache: {stats['plan_cache']['hits']} hits / "
          f"{stats['plan_cache']['misses']} misses")
    print(f"analysis:   {stats['analysis_cache']['hits']} hits / "
          f"{stats['analysis_cache']['misses']} misses")

    by_strategy: dict = {}
    for result in results:
        by_strategy[result.strategy] = by_strategy.get(result.strategy, 0) + 1
    print("\nstrategies dispatched:")
    for strategy, count in sorted(by_strategy.items(), key=lambda kv: -kv[1]):
        print(f"  {strategy:<22} {count}")

    satisfiable = sum(1 for result in results if result.rows)
    print(f"\n{satisfiable}/{len(results)} queries satisfiable")


if __name__ == "__main__":
    main()
