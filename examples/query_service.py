"""The query service front door: HTTP/JSON serving over EngineSession.

Starts the asyncio HTTP service in-process (no third-party dependencies —
the front door is stdlib all the way down), registers a workload database
for two tenants, and walks the serving features end to end:

* exact answers over HTTP, including sharded execution, matching a direct
  ``EngineSession`` call;
* per-tenant isolation — private sessions (cache state) and private
  dataset namespaces;
* admission control — a saturated bounded queue sheds with 503 and a
  ``Retry-After`` hint instead of queueing without bound;
* request deadlines that *cancel* in-flight engine work via the runtime
  cancellation token (504, and the slot drains cleanly);
* the ``/stats`` document: service latency percentiles over the engine's
  own cache/runtime counters.

Run:  PYTHONPATH=src python examples/query_service.py
"""

import pathlib
import sys
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cq import generators as cqgen
from repro.engine import EngineSession
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve_in_thread,
)


def main() -> None:
    query = cqgen.hub_cycle_query(4)
    database = cqgen.random_database(query, 10, 150, seed=7)

    service = QueryService(
        ServiceConfig(max_concurrent=2, max_queue=1, debug_hooks=True)
    )
    service.register_dataset("wheel", database)
    service.register_dataset("wheel", database, tenant="acme")

    with serve_in_thread(service) as handle:
        print(f"service listening on {handle.host}:{handle.port}\n")
        client = ServiceClient(handle.host, handle.port)

        # -- exact serving, sharded and unsharded ------------------------
        direct = EngineSession().count(query, database)
        served = client.count(query, dataset="wheel")
        sharded = client.count(query, dataset="wheel", shards=4)
        print(f"direct session count: {direct.count}")
        print(f"served count:         {served['value']}  "
              f"(strategy={served['strategy']})")
        print(f"served sharded count: {sharded['value']}  "
              f"(mode={sharded['sharding']['mode']})")
        assert served["value"] == sharded["value"] == direct.count

        # -- tenant isolation --------------------------------------------
        acme = client.count(query, dataset="wheel", tenant="acme")
        print(f"\nacme tenant count:    {acme['value']} "
              "(private session, private dataset namespace)")
        try:
            client.count(query, dataset="wheel", tenant="stranger")
        except ServiceError as exc:
            print(f"stranger tenant:      HTTP {exc.status} (no such dataset)")

        # -- admission control -------------------------------------------
        def occupy():
            with ServiceClient(handle.host, handle.port) as slow:
                try:
                    slow.count(query, dataset="wheel", _sleep_ms=600)
                except ServiceError:
                    pass

        busy = [threading.Thread(target=occupy) for _ in range(3)]
        for thread in busy:
            thread.start()
        time.sleep(0.2)  # 2 running + 1 queued: the front door is full
        try:
            client.count(query, dataset="wheel")
        except ServiceError as exc:
            print(f"\nsaturated queue:      HTTP {exc.status}, "
                  f"Retry-After {exc.retry_after_seconds:g}s")
        for thread in busy:
            thread.join()

        # -- deadlines cancel in-flight work -----------------------------
        began = time.perf_counter()
        try:
            client.count(
                query, dataset="wheel", shards=4, deadline_ms=50,
                _sleep_ms=5000,
            )
        except ServiceError as exc:
            print(f"50ms deadline:        HTTP {exc.status} after "
                  f"{(time.perf_counter() - began) * 1000:.0f}ms "
                  "(sharded fan-out cancelled, not orphaned)")
        while client.healthz()["in_flight"]:
            time.sleep(0.02)
        print("drained:              in_flight back to 0")

        # -- observability ------------------------------------------------
        stats = client.stats()
        latency = stats["service"]["latency"]
        print(f"\n/stats: {stats['service']['requests_by_endpoint']}")
        print(f"responses by status:  {stats['service']['responses_by_status']}")
        print(f"p50={latency['p50_seconds'] * 1000:.1f}ms  "
              f"p99={latency['p99_seconds'] * 1000:.1f}ms over "
              f"{latency['count']} requests")
        print(f"tenant sessions:      {sorted(stats['tenants'])}")
        plan_cache = stats["tenants"]["public"]["plan_cache"]
        print(f"public plan cache:    hits={plan_cache['hits']} "
              f"misses={plan_cache['misses']}")
        client.close()

    print("\nservice stopped cleanly")


if __name__ == "__main__":
    main()
