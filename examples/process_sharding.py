"""Sharded evaluation across execution runtimes: inline, thread, process.

Answers a hub-cycle (wheel) workload — every atom carries the hub variable,
so all relations hash-partition on it and the shards are answer-disjoint —
at 4 shards through each registered execution runtime, and contrasts the
steady-state wall-clock with the unsharded single-shard path.

What to look for in the output:

* the unsharded path re-scans and re-indexes the stored tuples on every
  call; the sharded paths execute against *resident* pieces (the session
  partition cache in-process, the workers' resident-shard caches for the
  process runtime), so after the first call they skip that work entirely;
* the process runtime reports worker *pids* — the evaluation genuinely
  left the Python process, which is what makes shard execution GIL-free
  and lets it scale with cores (this demo is honest on a single-core box:
  the win there is pure cache amortization);
* `EvalResult.timings["runtime"]` and `session.stats()` record where every
  task ran.

Run:  PYTHONPATH=src python examples/process_sharding.py
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cq import generators as cqgen
from repro.engine import EngineSession, ProcessRuntime

SHARDS = 4
REPEATS = 3


def best_of(call) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    query = cqgen.hub_cycle_query(4)
    database = cqgen.random_database(query, 40, 3000, seed=97)
    session = EngineSession()
    plan = session.plan(query)
    print(f"query: {query}")
    print(f"database: {database}")
    print(f"plan: {plan.strategy} (width {plan.width})\n")

    single = best_of(lambda: session.answer(query, database, plan=plan))
    print(f"single shard      {single * 1000:7.1f} ms   (the path to beat)")

    process_runtime = ProcessRuntime()
    runtimes = [("inline", "inline"), ("thread", "thread"), ("process", process_runtime)]
    try:
        for label, runtime in runtimes:
            call = lambda: session.answer(  # noqa: E731
                query, database, plan=plan, shards=SHARDS, runtime=runtime
            )
            call()  # warm: partition once, ship shards, build resident views
            seconds = best_of(call)
            result = call()
            workers = ", ".join(result.runtime["workers"])
            verdict = f"{single / seconds:4.2f}x vs single shard"
            print(
                f"{label:<8} x{SHARDS} shards {seconds * 1000:7.1f} ms   "
                f"({verdict}; workers: {workers})"
            )
        stats = session.stats()
        print(f"\nsharding ladder:   {stats['sharding']['by_mode']}")
        print(f"tasks dispatched:  {stats['runtime']['tasks_dispatched']} "
              f"across {stats['runtime']['calls_by_runtime']}")
        print(f"partition cache:   {stats['partition_cache']['hits']} hits / "
              f"{stats['partition_cache']['misses']} misses")
        rt = process_runtime.stats()
        print(f"process runtime:   {rt}")
        print(
            f"shipping ledger:   {rt['shipments']} shipments "
            f"({rt['shipment_bytes']} wire bytes) for "
            f"{rt['tasks_dispatched']} tasks — "
            f"{rt['tasks_owner_routed']} owner-routed, "
            f"residency {rt['resident_by_worker']}"
        )
    finally:
        process_runtime.close()


if __name__ == "__main__":
    main()
