"""Quickstart: hypergraphs, widths, dilutions, and query answering in 60 lines.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    engine,
    ghw,
    hypergraph_generators as generators,
    find_dilution_sequence,
    jigsaw,
)
from repro.cq import generators as cq_generators


def main() -> None:
    # 1. Build the 3x3 jigsaw hypergraph (Definition 4.2) and inspect it.
    j = jigsaw(3, 3)
    print(f"3x3 jigsaw: {j.num_vertices} vertices, {j.num_edges} edges, degree {j.degree()}")

    # 2. Certified generalised hypertree width bounds (Section 4.2's argument
    #    yields the lower bound, Lemma 4.6 the upper bound).
    bounds = ghw(j, separator_budget=3)
    print(f"ghw bounds: [{bounds.lower}, {bounds.upper}] (exact: {bounds.exact})")

    # 3. Dilutions (Definition 3.1): the "thickened" jigsaw dilutes to the
    #    plain jigsaw; the search finds a witnessing sequence.
    thick = generators.thickened_jigsaw(2, 2)
    sequence = find_dilution_sequence(thick, jigsaw(2, 2), max_nodes=100_000)
    print(f"thickened 2x2 jigsaw dilutes to the 2x2 jigsaw in {len(sequence)} operations")

    # 4. Conjunctive query answering through the unified engine: one front
    #    door (answer / is_satisfiable / count) that analyses the query's
    #    certified structure and picks the right algorithm — direct
    #    Yannakakis when acyclic, GHD-guided evaluation (Proposition 2.2)
    #    when the certified ghw is small, indexed backtracking otherwise.
    query = cq_generators.jigsaw_query(2, 2)
    database = cq_generators.planted_database(query, domain_size=4, tuples_per_relation=8, seed=1)
    plan = engine.plan_query(query)
    print(f"planned strategy:  {plan.strategy} (certified width {plan.width})")
    satisfiable = engine.is_satisfiable(query, database, plan=plan)
    counted = engine.count(query, database, plan=plan)
    print(f"BCQ answer:        {satisfiable.value}")
    print(f"#CQ answer:        {counted.value}")
    print(f"execution took     {counted.timings['execution_seconds']:.4f}s "
          f"(planning {plan.planning_seconds:.4f}s, cached for repeats)")

    # 5. An acyclic query never pays for a decomposition search: the planner
    #    reads acyclicity off the GYO join tree.
    chain = cq_generators.chain_query(4)
    chain_db = cq_generators.planted_database(chain, domain_size=4, tuples_per_relation=8, seed=2)
    result = engine.answer(chain, chain_db)
    print(f"chain query:       {result.strategy}, {len(result.rows)} answers")


if __name__ == "__main__":
    main()
