"""Quickstart: hypergraphs, widths, dilutions, and query answering in 60 lines.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    ghw,
    hypergraph_generators as generators,
    boolean_answer,
    count_answers,
    decomposition_boolean_answer,
    decomposition_count_answers,
    find_dilution_sequence,
    jigsaw,
)
from repro.cq import generators as cq_generators


def main() -> None:
    # 1. Build the 3x3 jigsaw hypergraph (Definition 4.2) and inspect it.
    j = jigsaw(3, 3)
    print(f"3x3 jigsaw: {j.num_vertices} vertices, {j.num_edges} edges, degree {j.degree()}")

    # 2. Certified generalised hypertree width bounds (Section 4.2's argument
    #    yields the lower bound, Lemma 4.6 the upper bound).
    bounds = ghw(j, separator_budget=3)
    print(f"ghw bounds: [{bounds.lower}, {bounds.upper}] (exact: {bounds.exact})")

    # 3. Dilutions (Definition 3.1): the "thickened" jigsaw dilutes to the
    #    plain jigsaw; the search finds a witnessing sequence.
    thick = generators.thickened_jigsaw(2, 2)
    sequence = find_dilution_sequence(thick, jigsaw(2, 2), max_nodes=100_000)
    print(f"thickened 2x2 jigsaw dilutes to the 2x2 jigsaw in {len(sequence)} operations")

    # 4. Conjunctive query answering: the canonical query over the 2x2 jigsaw,
    #    evaluated both by the generic solver and through a GHD (the
    #    Proposition 2.2 route that makes bounded-ghw classes tractable).
    query = cq_generators.jigsaw_query(2, 2)
    database = cq_generators.planted_database(query, domain_size=4, tuples_per_relation=8, seed=1)
    print(f"BCQ (generic solver):     {boolean_answer(query, database)}")
    print(f"BCQ (GHD-guided):         {decomposition_boolean_answer(query, database)}")
    print(f"#CQ (generic solver):     {count_answers(query, database)}")
    print(f"#CQ (join-tree counting): {decomposition_count_answers(query, database)}")


if __name__ == "__main__":
    main()
