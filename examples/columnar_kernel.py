"""The columnar kernel side by side with the tuple-set kernel.

The decomposition strategies (direct-yannakakis, ghd-guided) dispatch to a
`ColumnarBackend` by default: relations become parallel arrays of interned
integer ids, joins run as vectorized hash probes in id space, and values
decode back exactly once at the result boundary.  This demo evaluates the
same queries through both kernels — the engine's default columnar path and
the tuple-set `DecompositionBackend` it wraps as a fallback — verifies the
answers are identical, and prints per-strategy timings plus the session's
columnar view-cache counters.

Run:  PYTHONPATH=src python examples/columnar_kernel.py
"""

import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cq import generators as cqgen
from repro.engine import EngineSession, backend_for


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def main() -> None:
    session = EngineSession()
    workloads = [
        ("acyclic chain", cqgen.chain_query(5).project(["x0", "x5"]), 38),
        ("cyclic wheel", cqgen.cycle_query(6).project(["x0", "x1"]), 39),
    ]

    for label, query, seed in workloads:
        database = cqgen.random_database(query, 20, 2500, seed=seed)
        plan = session.plan(query)
        backend = backend_for(plan.strategy)

        columnar, columnar_s = timed(lambda: session.answer(query, database, plan=plan))
        tupleset, tupleset_s = timed(lambda: backend.fallback.answers(plan.query, database, plan))

        assert columnar.rows == tupleset, "kernels disagree!"
        print(f"{label}  [{plan.strategy}]")
        print(f"  columnar:  {columnar_s * 1000:8.1f} ms   ({len(columnar.rows)} answers)")
        print(f"  tuple-set: {tupleset_s * 1000:8.1f} ms   (identical answers)")
        print(f"  speedup:   {tupleset_s / columnar_s:8.1f} x")

    stats = session.stats()["columnar_view_cache"]
    print(
        f"\nview cache: {stats['views']} views over {stats['databases']} database(s), "
        f"{stats['dictionary_size']} interned values "
        f"({stats['hits']} hits / {stats['misses']} misses)"
    )


if __name__ == "__main__":
    main()
