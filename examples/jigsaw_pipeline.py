"""The Theorem 4.7 pipeline, step by step.

Starting from a degree-2 hypergraph with high generalised hypertree width,
the pipeline reduces it (Lemma 3.6), takes the dual, finds a grid minor, and
pulls the minor back through Lemma 4.4 into a dilution onto a jigsaw — the
degree-2 analogue of the Excluded Grid Theorem.

Run with ``python examples/jigsaw_pipeline.py``.
"""

from repro.hypergraphs import generators
from repro.jigsaws import dilute_to_jigsaw, planted_thickened_jigsaw_minor
from repro.widths.ghw import ghw


def run_automatic(rows: int, cols: int) -> None:
    source = generators.thickened_jigsaw(rows, cols)
    print(f"\n=== automatic grid-minor search: thickened {rows}x{cols} jigsaw ===")
    print(f"source: {source}")
    certificate = dilute_to_jigsaw(source, rows, cols)
    if certificate is None:
        print("no jigsaw dilution found within the search budget")
        return
    print(f"grid minor of the dual found: {certificate.grid_minor.is_valid()}")
    print(f"dilution sequence length: {len(certificate.sequence)}")
    print(f"result is the {rows}x{cols} jigsaw: {certificate.result_is_jigsaw()}")


def run_planted(rows: int, cols: int) -> None:
    print(f"\n=== planted minor route: thickened {rows}x{cols} jigsaw ===")
    source, minor = planted_thickened_jigsaw_minor(rows, cols)
    certificate = dilute_to_jigsaw(source, rows, cols, minor=minor)
    print(f"planted minor map valid: {minor.is_valid()}")
    print(f"result is the {rows}x{cols} jigsaw: {certificate.result_is_jigsaw()}")
    jigsaw_bounds = ghw(certificate.result, separator_budget=min(3, rows))
    print(
        "ghw lower bound transferred to the source by Lemma 3.2(3): "
        f">= {jigsaw_bounds.lower}"
    )


def main() -> None:
    run_automatic(2, 2)
    run_automatic(3, 2)
    run_planted(4, 4)
    run_planted(5, 5)


if __name__ == "__main__":
    main()
