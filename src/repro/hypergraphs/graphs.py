"""Simple (2-uniform) graphs and standard graph families.

The paper treats graphs as 2-uniform hypergraphs.  This module provides a
small :class:`Graph` convenience layer on top of :class:`Hypergraph` together
with the graph families used throughout the paper: grids (for the Excluded
Grid Theorem), cycles, paths, stars, and cliques.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.hypergraphs.hypergraph import Hypergraph

Vertex = Hashable


class Graph(Hypergraph):
    """A simple undirected graph: a hypergraph whose edges all have size 2."""

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Iterable[Vertex]] = (),
    ) -> None:
        normalised = []
        for edge in edges:
            e = frozenset(edge)
            if len(e) != 2:
                raise ValueError(f"graph edges must have exactly 2 vertices, got {set(e)!r}")
            normalised.append(e)
        super().__init__(vertices, normalised)

    # ------------------------------------------------------------------
    def adjacency(self) -> dict:
        """Adjacency mapping vertex -> frozenset of neighbours."""
        return {v: self.neighbours(v) for v in self.vertices}

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return frozenset({u, v}) in self.edges

    def add_graph_edge(self, u: Vertex, v: Vertex) -> "Graph":
        if u == v:
            raise ValueError("self-loops are not supported")
        return Graph(self.vertices, set(self.edges) | {frozenset({u, v})})

    def contract_edge(self, u: Vertex, v: Vertex, merged_name: Vertex | None = None) -> "Graph":
        """Contract the edge ``{u, v}``: the constructive minor operation.

        The two endpoints are replaced by a single new vertex adjacent to the
        union of their neighbourhoods (minus the removed edge).
        """
        if not self.has_edge(u, v):
            raise ValueError(f"{u!r} and {v!r} are not adjacent")
        if merged_name is None:
            merged_name = ("contracted", u, v)
        if merged_name in self.vertices and merged_name not in (u, v):
            raise ValueError(f"merged vertex name {merged_name!r} already in use")
        new_edges = []
        for edge in self.edges:
            if edge == frozenset({u, v}):
                continue
            replaced = frozenset(merged_name if w in (u, v) else w for w in edge)
            if len(replaced) == 2:
                new_edges.append(replaced)
        new_vertices = (self.vertices - {u, v}) | {merged_name}
        return Graph(new_vertices, new_edges)

    def delete_graph_vertex(self, v: Vertex) -> "Graph":
        """Delete a vertex and all edges incident to it."""
        new_edges = [e for e in self.edges if v not in e]
        return Graph(self.vertices - {v}, new_edges)

    def delete_graph_edge(self, u: Vertex, v: Vertex) -> "Graph":
        if not self.has_edge(u, v):
            raise ValueError(f"{u!r} and {v!r} are not adjacent")
        return Graph(self.vertices, self.edges - {frozenset({u, v})})

    def to_hypergraph(self) -> Hypergraph:
        """Forget the 2-uniformity constraint (identity on data)."""
        return Hypergraph(self.vertices, self.edges)


def as_graph(hypergraph: Hypergraph) -> Graph:
    """View a 2-uniform hypergraph as a :class:`Graph`.

    Raises ``ValueError`` if some edge does not have exactly two vertices.
    """
    return Graph(hypergraph.vertices, hypergraph.edges)


# ----------------------------------------------------------------------
# Standard families
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """The path on ``n`` vertices ``0, ..., n-1``."""
    if n < 1:
        raise ValueError("path_graph requires n >= 1")
    return Graph(range(n), [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle_graph requires n >= 3")
    return Graph(range(n), [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Graph:
    """The clique ``K_n``."""
    if n < 1:
        raise ValueError("complete_graph requires n >= 1")
    return Graph(range(n), [(i, j) for i in range(n) for j in range(i + 1, n)])


def star_graph(n: int) -> Graph:
    """The star with centre ``0`` and ``n`` leaves ``1..n``."""
    if n < 1:
        raise ValueError("star_graph requires n >= 1")
    return Graph(range(n + 1), [(0, i) for i in range(1, n + 1)])


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid graph with vertices ``(i, j)``.

    The ``n x n`` grid is the canonical highly connected planar graph of the
    Excluded Grid Theorem (Proposition 4.5); its hypergraph dual is the
    ``n x n`` jigsaw (Definition 4.2).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid_graph requires positive dimensions")
    vertices = [(i, j) for i in range(rows) for j in range(cols)]
    edges = []
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                edges.append(((i, j), (i + 1, j)))
            if j + 1 < cols:
                edges.append(((i, j), (i, j + 1)))
    return Graph(vertices, edges)
