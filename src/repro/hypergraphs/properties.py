"""Hypergraph properties: acyclicity, vertex types, summary statistics.

``alpha``-acyclicity (Fagin 1983) is the base case of every width parameter
used in the paper: a hypergraph is alpha-acyclic iff its generalised hypertree
width is 1.  The GYO reduction implemented here is also reused to build join
trees for the Yannakakis evaluator in :mod:`repro.cq.yannakakis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypergraphs.hypergraph import Hypergraph


@dataclass
class GYOResult:
    """Outcome of the GYO (Graham / Yu-Ozsoyoglu) reduction.

    Attributes
    ----------
    acyclic:
        Whether the input hypergraph is alpha-acyclic.
    elimination_order:
        The edges in the order they were eliminated (ears first).  For an
        acyclic hypergraph this covers all edges.
    parent:
        For every eliminated edge, the edge it was absorbed into (``None`` for
        the final remaining edge); the mapping defines a join forest.
    residual:
        The edges that could not be eliminated (empty iff acyclic).
    """

    acyclic: bool
    elimination_order: list = field(default_factory=list)
    parent: dict = field(default_factory=dict)
    residual: frozenset = frozenset()


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO ear-removal procedure.

    Repeatedly remove *ears*: an edge ``e`` is an ear if there is another edge
    ``f`` such that every vertex of ``e`` is either exclusive to ``e`` or also
    in ``f``.  The hypergraph is alpha-acyclic iff all edges can be removed.
    """
    remaining = set(hypergraph.edges)
    if frozenset() in remaining:
        remaining.discard(frozenset())
    order: list = []
    parent: dict = {}

    def exclusive_vertices(edge, edges):
        counts = {}
        for f in edges:
            for v in f:
                counts[v] = counts.get(v, 0) + 1
        return {v for v in edge if counts.get(v, 0) == 1}

    progress = True
    while progress and len(remaining) > 1:
        progress = False
        for edge in sorted(remaining, key=lambda e: (len(e), sorted(map(repr, e)))):
            exclusive = exclusive_vertices(edge, remaining)
            shared = edge - exclusive
            host = None
            for other in remaining:
                if other is edge or other == edge:
                    continue
                if shared <= other:
                    host = other
                    break
            if host is not None or not shared:
                order.append(edge)
                parent[edge] = host
                remaining.discard(edge)
                progress = True
                break

    if len(remaining) <= 1:
        for edge in remaining:
            order.append(edge)
            parent[edge] = None
        return GYOResult(True, order, parent, frozenset())
    return GYOResult(False, order, parent, frozenset(remaining))


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """True iff the hypergraph is alpha-acyclic (equivalently, ghw = 1)."""
    return gyo_reduction(hypergraph).acyclic


def join_forest(hypergraph: Hypergraph) -> dict | None:
    """A join forest (edge -> parent edge or None) for an acyclic hypergraph,
    or ``None`` if the hypergraph is not alpha-acyclic."""
    result = gyo_reduction(hypergraph)
    if not result.acyclic:
        return None
    return dict(result.parent)


def vertex_types(hypergraph: Hypergraph) -> dict:
    """Mapping from each vertex to its type ``I_v`` (frozenset of edges)."""
    return {v: hypergraph.incident_edges(v) for v in hypergraph.vertices}


def degree_histogram(hypergraph: Hypergraph) -> dict:
    """Mapping degree -> number of vertices with that degree."""
    histogram: dict = {}
    for v in hypergraph.vertices:
        d = hypergraph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def edge_size_histogram(hypergraph: Hypergraph) -> dict:
    """Mapping edge size -> number of edges of that size."""
    histogram: dict = {}
    for e in hypergraph.edges:
        histogram[len(e)] = histogram.get(len(e), 0) + 1
    return histogram


@dataclass
class HypergraphStatistics:
    """Summary statistics in the style of the HyperBench tables."""

    num_vertices: int
    num_edges: int
    degree: int
    rank: int
    connected: bool
    alpha_acyclic: bool
    reduced: bool


def hypergraph_statistics(hypergraph: Hypergraph) -> HypergraphStatistics:
    """Compute the summary statistics record for a hypergraph."""
    return HypergraphStatistics(
        num_vertices=hypergraph.num_vertices,
        num_edges=hypergraph.num_edges,
        degree=hypergraph.degree(),
        rank=hypergraph.rank(),
        connected=hypergraph.is_connected(),
        alpha_acyclic=is_alpha_acyclic(hypergraph),
        reduced=hypergraph.is_reduced(),
    )
