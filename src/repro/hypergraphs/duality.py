"""Dual hypergraphs and primal (Gaifman) graphs.

The dual ``H^d`` of ``H`` has ``V(H^d) = E(H)`` and
``E(H^d) = {I_v | v in V(H)}`` (Section 2).  The degree/rank swap under
dualisation is what powers the whole degree-2 story: a degree-2 hypergraph has
a *graph-like* dual (rank <= 2), so graph-minor machinery applies to ``H^d``
and can be pulled back through dilutions (Lemma 4.4).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.hypergraphs.graphs import Graph
from repro.hypergraphs.hypergraph import Hypergraph

Vertex = Hashable


def dual_hypergraph(hypergraph: Hypergraph) -> Hypergraph:
    """The dual hypergraph ``H^d``.

    Vertices of the dual are the edges of ``H`` (as frozensets); edges of the
    dual are the vertex types ``I_v``.  For a *reduced* hypergraph ``H`` the
    dual of the dual is isomorphic to ``H`` (see :func:`double_dual_mapping`).
    """
    dual_vertices = hypergraph.edges
    dual_edges = [hypergraph.incident_edges(v) for v in hypergraph.vertices
                  if hypergraph.incident_edges(v)]
    return Hypergraph(dual_vertices, dual_edges)


def primal_graph(hypergraph: Hypergraph) -> Graph:
    """The primal (Gaifman) graph: vertices of ``H``, an edge between two
    distinct vertices whenever some hyperedge contains both."""
    edges = set()
    for edge in hypergraph.edges:
        members = sorted(edge, key=repr)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.add(frozenset({u, v}))
    return Graph(hypergraph.vertices, edges)


def dual_degree_equals_rank(hypergraph: Hypergraph) -> bool:
    """Sanity relation: ``degree(H^d) == rank(H)`` and ``rank(H^d) == degree(H)``
    whenever ``H`` has no isolated vertices and no duplicate vertex types.

    Used by the tests as a cheap invariant; returns whether both equalities
    hold for this particular hypergraph.
    """
    dual = dual_hypergraph(hypergraph)
    no_isolated = not hypergraph.isolated_vertices()
    types = [hypergraph.incident_edges(v) for v in hypergraph.vertices]
    no_duplicate_types = len(set(types)) == len(types)
    if not (no_isolated and no_duplicate_types):
        # The relation may fail when the hypergraph is not reduced; report
        # honestly instead of asserting.
        return dual.degree() <= hypergraph.rank() and dual.rank() <= hypergraph.degree()
    return dual.degree() == hypergraph.rank() and dual.rank() == hypergraph.degree()


def double_dual_mapping(hypergraph: Hypergraph) -> dict | None:
    """For a reduced hypergraph, the canonical isomorphism ``(H^d)^d -> H``.

    Each vertex of ``(H^d)^d`` is an edge of ``H^d``, i.e. a vertex type
    ``I_v`` of ``H``; since ``H`` is reduced, vertex types are distinct and
    non-empty, so ``I_v -> v`` is a bijection.  Returns the mapping as a dict
    from vertices of ``(H^d)^d`` to vertices of ``H``, or ``None`` if ``H`` is
    not reduced.
    """
    if not hypergraph.is_reduced():
        return None
    mapping = {}
    for v in hypergraph.vertices:
        mapping[hypergraph.incident_edges(v)] = v
    return mapping


def is_self_dual_consistent(hypergraph: Hypergraph) -> bool:
    """Check ``(H^d)^d == H`` up to the canonical relabelling for reduced ``H``."""
    mapping = double_dual_mapping(hypergraph)
    if mapping is None:
        return False
    double_dual = dual_hypergraph(dual_hypergraph(hypergraph))
    try:
        relabelled = double_dual.relabel(mapping)
    except (KeyError, ValueError):
        return False
    return relabelled == Hypergraph(hypergraph.vertices, hypergraph.edges)
