"""Hypergraph isomorphism by refinement + backtracking.

Definition 3.1 declares ``H`` a dilution of ``H'`` if it is *isomorphic to* a
hypergraph reachable by dilution operations, so isomorphism testing is needed
to close dilution search, to recognise jigsaws produced by the Theorem 4.7
pipeline, and to validate several constructions in the tests.

The implementation is a standard invariant-refinement backtracking search: it
is exponential in the worst case but easily handles the instance sizes used in
this reproduction (tens of vertices).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.hypergraphs.hypergraph import Hypergraph

Vertex = Hashable


def find_isomorphism(first: Hypergraph, second: Hypergraph) -> dict | None:
    """An isomorphism from ``first`` to ``second`` (vertex dict) or ``None``.

    An isomorphism is a bijection ``f: V(first) -> V(second)`` such that a set
    ``e`` is an edge of ``first`` if and only if ``{f(v) | v in e}`` is an edge
    of ``second``.
    """
    if first.num_vertices != second.num_vertices:
        return None
    if first.num_edges != second.num_edges:
        return None
    if sorted(len(e) for e in first.edges) != sorted(len(e) for e in second.edges):
        return None

    first_signatures = _vertex_signatures(first)
    second_signatures = _vertex_signatures(second)
    if sorted(first_signatures.values()) != sorted(second_signatures.values()):
        return None

    # Candidate targets per vertex, grouped by the refined colouring.
    candidates = {}
    for v in first.vertices:
        candidates[v] = [u for u in second.vertices
                         if second_signatures[u] == first_signatures[v]]
        if not candidates[v]:
            return None

    # Process vertices in a BFS order starting from the most constrained
    # vertex, so that every new vertex typically shares edges with already
    # mapped ones and partial-edge pruning can bite early.
    order = _constraint_order(first, candidates)
    second_edges_by_size: dict[int, list] = {}
    for edge in second.edges:
        second_edges_by_size.setdefault(len(edge), []).append(edge)

    assignment: dict = {}
    used: set = set()

    def edges_consistent(v: Vertex, u: Vertex) -> bool:
        for edge in first.incident_edges(v):
            mapped = {assignment[w] for w in edge if w in assignment}
            mapped.add(u)
            fully_mapped = all(w in assignment or w == v for w in edge)
            if fully_mapped:
                if frozenset(mapped) not in second.edges:
                    return False
            else:
                if not any(
                    mapped <= candidate
                    for candidate in second_edges_by_size.get(len(edge), ())
                ):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(order):
            return _is_full_isomorphism(first, second, assignment)
        v = order[index]
        for u in candidates[v]:
            if u in used:
                continue
            if not edges_consistent(v, u):
                continue
            assignment[v] = u
            used.add(u)
            if backtrack(index + 1):
                return True
            del assignment[v]
            used.discard(u)
        return False

    if backtrack(0):
        return dict(assignment)
    return None


def _constraint_order(hypergraph: Hypergraph, candidates: dict) -> list:
    """BFS order starting from the vertex with the fewest candidates."""
    if not hypergraph.vertices:
        return []
    start = min(hypergraph.vertices, key=lambda v: (len(candidates[v]), repr(v)))
    order = [start]
    seen = {start}
    frontier = [start]
    while frontier:
        # Among the neighbours of already-ordered vertices, pick the one with
        # the fewest candidates next.
        fringe = sorted(
            {
                u
                for v in frontier
                for u in hypergraph.neighbours(v)
                if u not in seen
            },
            key=lambda u: (len(candidates[u]), repr(u)),
        )
        if not fringe:
            remaining = [v for v in hypergraph.vertex_list() if v not in seen]
            if not remaining:
                break
            fringe = [min(remaining, key=lambda v: (len(candidates[v]), repr(v)))]
        nxt = fringe[0]
        order.append(nxt)
        seen.add(nxt)
        frontier = order[:]
    return order


def are_isomorphic(first: Hypergraph, second: Hypergraph) -> bool:
    """True if the two hypergraphs are isomorphic."""
    return find_isomorphism(first, second) is not None


def _vertex_signatures(hypergraph: Hypergraph, max_rounds: int = 8) -> dict:
    """An isomorphism-invariant colouring per vertex.

    Starts from the multiset of incident edge sizes and iteratively refines by
    the multiset of (edge size, sorted colours of the edge's members) over the
    incident edges — a 1-WL-style refinement on the incidence structure.
    Refinement stops when the partition into colour classes stabilises.
    """
    colours = {}
    for v in hypergraph.vertices:
        sizes = tuple(sorted(len(e) for e in hypergraph.incident_edges(v)))
        colours[v] = hash((len(sizes), sizes))
    for _ in range(max_rounds):
        new_colours = {}
        for v in hypergraph.vertices:
            incident_profile = []
            for edge in hypergraph.incident_edges(v):
                member_colours = tuple(sorted(colours[u] for u in edge if u != v))
                incident_profile.append((len(edge), member_colours))
            new_colours[v] = hash((colours[v], tuple(sorted(incident_profile))))
        old_classes = len(set(colours.values()))
        new_classes = len(set(new_colours.values()))
        colours = new_colours
        if new_classes == old_classes:
            break
    return colours


def _is_full_isomorphism(first: Hypergraph, second: Hypergraph, mapping: dict) -> bool:
    if len(set(mapping.values())) != len(mapping):
        return False
    mapped_edges = frozenset(frozenset(mapping[v] for v in e) for e in first.edges)
    return mapped_edges == second.edges
