"""The core :class:`Hypergraph` data structure.

A hypergraph ``H`` is a pair ``(V(H), E(H))`` where ``V(H)`` is a finite set of
vertices and ``E(H)`` is a set of subsets of ``V(H)`` (Section 2 of the paper).
Edges are stored with *set semantics*: two atoms of a conjunctive query with
the same variable scope induce a single hyperedge, and deleting a vertex can
collapse two edges into one.  This matches the paper's convention that
``E(H)`` is a set, which is load-bearing in several proofs (e.g. Lemma B.1).

Vertices may be any hashable objects (strings, integers, tuples, frozensets);
the dual construction in :mod:`repro.hypergraphs.duality` uses edges of ``H``
directly as vertices of ``H^d``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Callable


Vertex = Hashable
Edge = frozenset


class Hypergraph:
    """A finite hypergraph with set-semantics edges.

    Parameters
    ----------
    vertices:
        Iterable of vertices.  Vertices occurring in edges are added
        automatically, so this parameter is only needed for isolated vertices.
    edges:
        Iterable of vertex collections; each becomes a ``frozenset`` edge.
        Duplicate edges collapse.  Empty edges are allowed (they appear as
        intermediate states of dilution sequences) but most constructions
        remove them.

    Examples
    --------
    >>> h = Hypergraph(edges=[{"x", "y"}, {"y", "z"}])
    >>> sorted(h.vertices)
    ['x', 'y', 'z']
    >>> h.degree("y")
    2
    >>> h.rank()
    2
    """

    __slots__ = ("_vertices", "_edges", "_incidence", "_adjacency", "_hash")

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Iterable[Vertex]] = (),
    ) -> None:
        edge_set = frozenset(frozenset(e) for e in edges)
        vertex_set = set(vertices)
        for edge in edge_set:
            vertex_set.update(edge)
        self._vertices: frozenset = frozenset(vertex_set)
        self._edges: frozenset = edge_set
        self._incidence = None
        self._adjacency = None
        self._hash = None

    @classmethod
    def _make(cls, vertices: frozenset, edges: frozenset) -> "Hypergraph":
        """Trusted copy-on-write constructor: adopt already-normalised parts.

        ``vertices`` must be a frozenset containing every vertex of every edge
        and ``edges`` a frozenset of frozensets.  The structural-modification
        methods below satisfy this by construction, so derived hypergraphs
        (dilution steps, minors, jigsaw intermediates) skip both the
        re-normalisation and the eager incidence build of ``__init__`` —
        incidence and adjacency are computed lazily, only for the hypergraphs
        that are actually queried.
        """
        hypergraph = object.__new__(cls)
        hypergraph._vertices = vertices
        hypergraph._edges = edges
        hypergraph._incidence = None
        hypergraph._adjacency = None
        hypergraph._hash = None
        return hypergraph

    def __getstate__(self):
        # Ship only the structure: the memoized incidence/adjacency maps and
        # the cached hash are derived data, rebuilt lazily on first use.
        # Keeps pickles compact (process-runtime tasks serialize query
        # hypergraphs) and guarantees a round-trip never resurrects a stale
        # cache.
        return (self._vertices, self._edges)

    def __setstate__(self, state) -> None:
        vertices, edges = state
        self._vertices = vertices
        self._edges = edges
        self._incidence = None
        self._adjacency = None
        self._hash = None

    def _incidence_map(self) -> dict:
        """``vertex -> frozenset of incident edges`` (built on first use)."""
        if self._incidence is None:
            incidence: dict[Vertex, set] = {v: set() for v in self._vertices}
            for edge in self._edges:
                for v in edge:
                    incidence[v].add(edge)
            self._incidence = {v: frozenset(es) for v, es in incidence.items()}
        return self._incidence

    def _adjacency_map(self) -> dict:
        """``vertex -> frozenset of neighbours`` (built on first use)."""
        if self._adjacency is None:
            adjacency: dict[Vertex, set] = {v: set() for v in self._vertices}
            for edge in self._edges:
                for v in edge:
                    adjacency[v].update(edge)
            self._adjacency = {
                v: frozenset(others - {v}) for v, others in adjacency.items()
            }
        return self._adjacency

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> frozenset:
        """The vertex set ``V(H)``."""
        return self._vertices

    @property
    def edges(self) -> frozenset:
        """The edge set ``E(H)`` as a frozenset of frozensets."""
        return self._edges

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def size(self) -> int:
        """``|V(H)| + |E(H)|``, the measure used in Lemma 3.2(2)."""
        return self.num_vertices + self.num_edges

    def edge_list(self) -> list:
        """The edges in a deterministic order (sorted by sorted vertex repr)."""
        return sorted(self._edges, key=_edge_sort_key)

    def vertex_list(self) -> list:
        """The vertices in a deterministic order."""
        return sorted(self._vertices, key=repr)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.vertex_list())

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._vertices, self._edges))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Hypergraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"degree={self.degree()}, rank={self.rank()})"
        )

    # ------------------------------------------------------------------
    # Incidence, degree, rank
    # ------------------------------------------------------------------
    def incident_edges(self, vertex: Vertex) -> frozenset:
        """``I_v``: the set of edges incident to ``vertex``."""
        if vertex not in self._vertices:
            raise KeyError(f"vertex {vertex!r} not in hypergraph")
        return self._incidence_map()[vertex]

    def degree(self, vertex: Vertex | None = None) -> int:
        """Degree of a vertex, or the maximum degree of the hypergraph."""
        if vertex is not None:
            return len(self.incident_edges(vertex))
        if not self._vertices:
            return 0
        return max(len(es) for es in self._incidence_map().values())

    def rank(self) -> int:
        """``rank(H)``: the maximum edge cardinality."""
        if not self._edges:
            return 0
        return max(len(e) for e in self._edges)

    def has_empty_edge(self) -> bool:
        return frozenset() in self._edges

    def isolated_vertices(self) -> frozenset:
        """Vertices of degree 0."""
        incidence = self._incidence_map()
        return frozenset(v for v in self._vertices if not incidence[v])

    def vertex_type(self, vertex: Vertex) -> frozenset:
        """The *vertex type* of ``vertex``: its set of incident edges ``I_v``."""
        return self.incident_edges(vertex)

    # ------------------------------------------------------------------
    # Structural modifications (all return new hypergraphs)
    # ------------------------------------------------------------------
    def delete_vertex(self, vertex: Vertex, keep_empty_edges: bool = True) -> "Hypergraph":
        """Delete ``vertex`` from the vertex set and from every edge.

        This is dilution operation (1) of Definition 3.1.  Edges that become
        equal after the deletion collapse; an edge that becomes empty is kept
        by default (it is then a proper subedge of any non-empty edge and can
        be removed by the subedge-deletion operation).
        """
        if vertex not in self._vertices:
            raise KeyError(f"vertex {vertex!r} not in hypergraph")
        new_edges = []
        for edge in self._edges:
            reduced = edge - {vertex} if vertex in edge else edge
            if reduced or keep_empty_edges:
                new_edges.append(reduced)
        return Hypergraph._make(self._vertices - {vertex}, frozenset(new_edges))

    def delete_vertices(self, vertices: Iterable[Vertex], keep_empty_edges: bool = False) -> "Hypergraph":
        """Delete several vertices at once (induced subhypergraph on the rest)."""
        to_delete = frozenset(vertices)
        unknown = to_delete - self._vertices
        if unknown:
            raise KeyError(f"vertices {sorted(map(repr, unknown))} not in hypergraph")
        new_edges = []
        for edge in self._edges:
            reduced = edge - to_delete
            if reduced or keep_empty_edges:
                new_edges.append(reduced)
        return Hypergraph._make(self._vertices - to_delete, frozenset(new_edges))

    def induced_subhypergraph(self, vertices: Iterable[Vertex]) -> "Hypergraph":
        """``H[C]``: delete all vertices not in ``vertices`` (dropping empty edges)."""
        keep = frozenset(vertices)
        unknown = keep - self._vertices
        if unknown:
            raise KeyError(f"vertices {sorted(map(repr, unknown))} not in hypergraph")
        return self.delete_vertices(self._vertices - keep, keep_empty_edges=False)

    def delete_edge(self, edge: Iterable[Vertex]) -> "Hypergraph":
        """Remove an edge, keeping all vertices (including newly isolated ones)."""
        target = frozenset(edge)
        if target not in self._edges:
            raise KeyError(f"edge {set(target)!r} not in hypergraph")
        return Hypergraph._make(self._vertices, self._edges - {target})

    def add_edge(self, edge: Iterable[Vertex]) -> "Hypergraph":
        """Add an edge (and any new vertices it mentions)."""
        new_edge = frozenset(edge)
        return Hypergraph._make(self._vertices | new_edge, self._edges | {new_edge})

    def add_vertex(self, vertex: Vertex) -> "Hypergraph":
        """Add an isolated vertex."""
        return Hypergraph._make(self._vertices | {vertex}, self._edges)

    def merge_on_vertex(self, vertex: Vertex) -> "Hypergraph":
        """Dilution operation (3) of Definition 3.1: *merging on* ``vertex``.

        All edges incident to ``vertex`` are replaced by the single new edge
        ``(U I_v) \\ {v}``; the vertex itself is removed from the hypergraph
        (it occurred only in the replaced edges).
        """
        if vertex not in self._vertices:
            raise KeyError(f"vertex {vertex!r} not in hypergraph")
        incident = self.incident_edges(vertex)
        merged: set = set()
        for edge in incident:
            merged.update(edge)
        merged.discard(vertex)
        new_edges = (self._edges - incident) | {frozenset(merged)}
        return Hypergraph._make(self._vertices - {vertex}, new_edges)

    def relabel(self, mapping: Callable[[Vertex], Vertex] | dict) -> "Hypergraph":
        """Relabel vertices via a function or dictionary (must be injective)."""
        if isinstance(mapping, dict):
            func = mapping.__getitem__
        else:
            func = mapping
        new_vertices = [func(v) for v in self._vertices]
        if len(set(new_vertices)) != len(new_vertices):
            raise ValueError("relabelling is not injective")
        new_edges = frozenset(frozenset(func(v) for v in e) for e in self._edges)
        return Hypergraph._make(frozenset(new_vertices), new_edges)

    def canonical_relabel(self) -> tuple["Hypergraph", dict]:
        """Relabel vertices as ``0..n-1`` deterministically; return (H', mapping)."""
        mapping = {v: i for i, v in enumerate(self.vertex_list())}
        return self.relabel(mapping), mapping

    # ------------------------------------------------------------------
    # Connectivity and paths
    # ------------------------------------------------------------------
    def neighbours(self, vertex: Vertex) -> frozenset:
        """Vertices sharing at least one edge with ``vertex`` (excluding itself)."""
        if vertex not in self._vertices:
            raise KeyError(f"vertex {vertex!r} not in hypergraph")
        return self._adjacency_map()[vertex]

    def connected_components(self) -> list[frozenset]:
        """Vertex sets of the maximal connected components (isolated vertices
        form singleton components; empty edges belong to no component)."""
        seen: set = set()
        components: list[frozenset] = []
        for start in self.vertex_list():
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                v = frontier.pop()
                for u in self.neighbours(v):
                    if u not in component:
                        component.add(u)
                        frontier.append(u)
            seen.update(component)
            components.append(frozenset(component))
        return components

    def is_connected(self) -> bool:
        """True if the hypergraph has at most one connected component."""
        return len(self.connected_components()) <= 1

    def edge_connected_components(self) -> list[frozenset]:
        """Partition of the non-empty edges into connected groups."""
        components = self.connected_components()
        groups: list[set] = [set() for _ in components]
        lookup = {}
        for index, component in enumerate(components):
            for v in component:
                lookup[v] = index
        leftovers: set = set()
        for edge in self._edges:
            if not edge:
                leftovers.add(edge)
                continue
            index = lookup[next(iter(edge))]
            groups[index].add(edge)
        result = [frozenset(g) for g in groups if g]
        if leftovers:
            result.append(frozenset(leftovers))
        return result

    def find_path(self, source: Vertex, target: Vertex) -> list | None:
        """A path ``(v0, e0, v1, ..., e_{l-1}, v_l)`` between two vertices.

        Returns the alternating vertex/edge sequence of Section 2 or ``None``
        if no path exists.  No vertex or edge repeats along the path.
        """
        if source not in self._vertices or target not in self._vertices:
            raise KeyError("path endpoints must be vertices of the hypergraph")
        if source == target:
            return [source]
        # BFS over (vertex, via-edge) transitions.
        from collections import deque

        parents: dict[Vertex, tuple[Vertex, frozenset]] = {}
        queue = deque([source])
        visited = {source}
        while queue:
            v = queue.popleft()
            for edge in self.incident_edges(v):
                for u in edge:
                    if u in visited:
                        continue
                    visited.add(u)
                    parents[u] = (v, edge)
                    if u == target:
                        return _rebuild_path(source, target, parents)
                    queue.append(u)
        return None

    def are_connected(self, source: Vertex, target: Vertex) -> bool:
        return self.find_path(source, target) is not None

    def edges_connected(self, edges: Iterable[frozenset]) -> bool:
        """True if the given edges form a connected subhypergraph
        (edges overlap transitively)."""
        edge_list = [frozenset(e) for e in edges]
        if not edge_list:
            return True
        remaining = set(edge_list)
        component = {edge_list[0]}
        remaining.discard(edge_list[0])
        changed = True
        while changed and remaining:
            changed = False
            for edge in list(remaining):
                if any(edge & other for other in component):
                    component.add(edge)
                    remaining.discard(edge)
                    changed = True
        return not remaining

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    def is_reduced(self) -> bool:
        """True if ``H`` is *reduced*: every vertex has degree >= 1, there is
        no empty edge, and no two vertices have the same vertex type."""
        if self.has_empty_edge():
            return False
        if self.isolated_vertices():
            return False
        seen_types: set = set()
        incidence = self._incidence_map()
        for v in self._vertices:
            vtype = incidence[v]
            if vtype in seen_types:
                return False
            seen_types.add(vtype)
        return True

    def is_subhypergraph_of(self, other: "Hypergraph") -> bool:
        """True if every vertex and edge of ``self`` appears in ``other``."""
        return self._vertices <= other._vertices and self._edges <= other._edges

    def is_graph(self) -> bool:
        """True if every edge has exactly two vertices (2-uniform)."""
        return all(len(e) == 2 for e in self._edges)


def _edge_sort_key(edge: frozenset) -> tuple:
    return (len(edge), sorted(repr(v) for v in edge))


def _rebuild_path(source: Vertex, target: Vertex, parents: dict) -> list:
    sequence: list = [target]
    current = target
    while current != source:
        previous, via = parents[current]
        sequence.append(via)
        sequence.append(previous)
        current = previous
    sequence.reverse()
    return sequence
