"""Reduced hypergraphs and the dilution sequence of Lemma 3.6.

A hypergraph is *reduced* if (1) every vertex has degree at least 1, (2) there
is no empty edge, and (3) no two vertices have the same vertex type
``I_v`` (Section 2).  Reducing a hypergraph deletes isolated vertices, empty
edges, and all but one vertex per vertex type.

Lemma 3.6 states that a hypergraph always *dilutes* to its reduced version and
that a witnessing dilution sequence can be computed in polynomial time; this
module provides both the reduced hypergraph and that witnessing sequence.
"""

from __future__ import annotations

from repro.hypergraphs.hypergraph import Hypergraph


def reduce_hypergraph(hypergraph: Hypergraph) -> Hypergraph:
    """Return the reduced hypergraph for ``hypergraph``.

    Vertices with degree 0 and empty edges are removed, and for every class of
    vertices sharing the same vertex type only the deterministically smallest
    representative (by ``repr``) is kept.
    """
    current = _drop_isolated_and_empty(hypergraph)
    # Collapse duplicate vertex types.  Deleting one vertex of a duplicated
    # type cannot create isolated vertices (its edges survive, because the
    # twin still witnesses them) but it can merge edges; recompute types after
    # each deletion for correctness.
    while True:
        duplicate = _find_duplicate_type_vertex(current)
        if duplicate is None:
            break
        current = current.delete_vertex(duplicate, keep_empty_edges=False)
        current = _drop_isolated_and_empty(current)
    return current


def reduction_dilution_sequence(hypergraph: Hypergraph):
    """A dilution sequence (Definition 3.1) from ``hypergraph`` to its
    reduced version, as promised by Lemma 3.6.

    Returns a :class:`repro.dilutions.sequence.DilutionSequence`.  Implemented
    here (rather than in :mod:`repro.dilutions`) so the hypergraph layer knows
    how to produce it, but the heavy lifting lives in the dilutions package;
    the import is local to avoid a circular dependency.
    """
    from repro.dilutions.operations import DeleteSubedge, DeleteVertex
    from repro.dilutions.sequence import DilutionSequence

    operations = []
    current = hypergraph

    def drop_empty_edges(h: Hypergraph) -> Hypergraph:
        while h.has_empty_edge():
            if len(h.edges) == 1:
                # A lone empty edge cannot be removed by subedge deletion;
                # the reduced hypergraph of an edgeless structure keeps it out
                # by definition of reduce_hypergraph, so stop here.
                break
            operations.append(DeleteSubedge(frozenset()))
            h = h.delete_edge(frozenset())
        return h

    # 1. Remove isolated vertices.
    for v in sorted(current.isolated_vertices(), key=repr):
        operations.append(DeleteVertex(v))
        current = current.delete_vertex(v)
    current = drop_empty_edges(current)

    # 2. Remove duplicate vertex types (and clean up after each deletion).
    while True:
        duplicate = _find_duplicate_type_vertex(current)
        if duplicate is None:
            break
        operations.append(DeleteVertex(duplicate))
        current = current.delete_vertex(duplicate)
        current = drop_empty_edges(current)
        for v in sorted(current.isolated_vertices(), key=repr):
            operations.append(DeleteVertex(v))
            current = current.delete_vertex(v)

    return DilutionSequence(operations)


def _drop_isolated_and_empty(hypergraph: Hypergraph) -> Hypergraph:
    edges = [e for e in hypergraph.edges if e]
    kept_vertices = set()
    for e in edges:
        kept_vertices.update(e)
    return Hypergraph(kept_vertices, edges)


def _find_duplicate_type_vertex(hypergraph: Hypergraph):
    """A vertex whose type coincides with an earlier vertex's type, or None."""
    seen: dict = {}
    for v in hypergraph.vertex_list():
        vtype = hypergraph.incident_edges(v)
        if vtype in seen:
            return v
        seen[vtype] = v
    return None
