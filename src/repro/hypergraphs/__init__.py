"""Hypergraph substrate for the degree-2 CQ reproduction.

This subpackage provides the basic combinatorial objects used throughout the
paper: hypergraphs, (2-uniform) graphs, duals and primal graphs, reduced
hypergraphs, isomorphism testing, and generators for the structured families
that appear in the paper (grids, jigsaws, thickened jigsaws, random degree-2
hypergraphs).
"""

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.graphs import (
    Graph,
    cycle_graph,
    complete_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.hypergraphs.duality import dual_hypergraph, primal_graph
from repro.hypergraphs.reduction import reduce_hypergraph, reduction_dilution_sequence
from repro.hypergraphs.isomorphism import are_isomorphic, find_isomorphism
from repro.hypergraphs.properties import (
    is_alpha_acyclic,
    gyo_reduction,
    vertex_types,
    hypergraph_statistics,
)
from repro.hypergraphs import generators

__all__ = [
    "Hypergraph",
    "Graph",
    "cycle_graph",
    "complete_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "dual_hypergraph",
    "primal_graph",
    "reduce_hypergraph",
    "reduction_dilution_sequence",
    "are_isomorphic",
    "find_isomorphism",
    "is_alpha_acyclic",
    "gyo_reduction",
    "vertex_types",
    "hypergraph_statistics",
    "generators",
]
