"""Generators for the hypergraph families used in the paper and the benches.

The central degree-2 families are:

* **jigsaws** (Definition 4.2) — duals of grid graphs;
* **thickened jigsaws** — degree-2 hypergraphs that dilute to a jigsaw by a
  merge-then-delete sequence, modelled on the example of Figure 2;
* **duals of graphs** — every simple graph's dual hypergraph has degree
  exactly 2, which is how the synthetic HyperBench-style corpus obtains
  degree-2 hypergraphs with a wide spread of generalised hypertree width.

All random generators take an explicit ``seed`` (or ``random.Random``) so the
corpus and the benchmarks are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.hypergraphs.duality import dual_hypergraph
from repro.hypergraphs.graphs import Graph, grid_graph
from repro.hypergraphs.hypergraph import Hypergraph


def _rng(seed) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ----------------------------------------------------------------------
# Jigsaws and relatives
# ----------------------------------------------------------------------
def jigsaw(rows: int, cols: int) -> Hypergraph:
    """The ``rows x cols`` jigsaw hypergraph (Definition 4.2).

    The jigsaw is the hypergraph dual of the ``rows x cols`` grid graph: it has
    one edge ``e_{i,j}`` per grid position, every vertex has degree 2, and
    ``e_{i,j}`` intersects exactly its grid neighbours, in exactly one vertex.

    Vertices are labelled ``("h", i, j)`` for the vertex shared by
    ``e_{i,j}`` and ``e_{i,j+1}`` and ``("v", i, j)`` for the vertex shared by
    ``e_{i,j}`` and ``e_{i+1,j}``.  Edge membership is recoverable through
    :func:`jigsaw_edge_of`.
    """
    if rows < 1 or cols < 1:
        raise ValueError("jigsaw requires positive dimensions")
    edges: dict[tuple[int, int], set] = {
        (i, j): set() for i in range(rows) for j in range(cols)
    }
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                v = ("h", i, j)
                edges[(i, j)].add(v)
                edges[(i, j + 1)].add(v)
            if i + 1 < rows:
                v = ("v", i, j)
                edges[(i, j)].add(v)
                edges[(i + 1, j)].add(v)
    return Hypergraph(edges=[edges[key] for key in sorted(edges)])


def jigsaw_edge_of(rows: int, cols: int, position: tuple[int, int]) -> frozenset:
    """The edge ``e_{i,j}`` of the ``rows x cols`` jigsaw for ``position``."""
    i, j = position
    if not (0 <= i < rows and 0 <= j < cols):
        raise ValueError(f"position {position!r} outside a {rows}x{cols} jigsaw")
    members = set()
    if j + 1 < cols:
        members.add(("h", i, j))
    if j - 1 >= 0:
        members.add(("h", i, j - 1))
    if i + 1 < rows:
        members.add(("v", i, j))
    if i - 1 >= 0:
        members.add(("v", i - 1, j))
    return frozenset(members)


def thickened_jigsaw_with_structure(rows: int, cols: int) -> tuple[Hypergraph, dict, dict]:
    """Like :func:`thickened_jigsaw`, also returning the planted structure.

    Returns ``(hypergraph, big_edge_of, connector_of)`` where ``big_edge_of``
    maps each grid position ``(i, j)`` to the "big" edge realising the jigsaw
    edge ``e_{i,j}`` and ``connector_of`` maps each jigsaw vertex to its
    two-vertex connector edge.  The planted structure is what lets the
    Theorem 4.7 pipeline skip expensive grid-minor search on large instances.
    """
    if rows * cols < 2 or (rows == 1 and cols == 2) or (rows == 2 and cols == 1):
        raise ValueError("thickened_jigsaw requires a jigsaw with at least two distinct edges")
    base = jigsaw(rows, cols)
    big_members: dict[frozenset, set] = {e: set() for e in base.edges}
    connector_of: dict = {}
    for vertex in base.vertices:
        incident = sorted(base.incident_edges(vertex), key=lambda e: sorted(map(repr, e)))
        first, second = incident[0], incident[1]
        a = ("port", vertex, 0)
        b = ("port", vertex, 1)
        big_members[first].add(a)
        big_members[second].add(b)
        connector_of[vertex] = frozenset({a, b})
    big_edge_of = {}
    for i in range(rows):
        for j in range(cols):
            base_edge = jigsaw_edge_of(rows, cols, (i, j))
            big_edge_of[(i, j)] = frozenset(big_members[base_edge])
    edges = [frozenset(members) for members in big_members.values()] + list(connector_of.values())
    return Hypergraph(edges=edges), big_edge_of, connector_of


def thickened_jigsaw(rows: int, cols: int) -> Hypergraph:
    """A degree-2 hypergraph that dilutes to the ``rows x cols`` jigsaw.

    Modelled on the example of Figure 2: every vertex shared between two
    adjacent jigsaw edges is replaced by a two-vertex *connector* edge, so the
    big edges no longer intersect directly.  Merging on one endpoint of every
    connector followed by deleting the superfluous vertices recovers the
    jigsaw.  The construction keeps degree 2 and strictly increases
    ``|V| + |E|``, making it a convenient non-trivial dilution source for
    tests and benches.
    """
    hypergraph, _, _ = thickened_jigsaw_with_structure(rows, cols)
    return hypergraph


def figure2_hypergraph() -> Hypergraph:
    """The degree-2 hypergraph of Figure 2 (up to relabelling).

    Figure 2 shows a degree-2 hypergraph that dilutes to the 3x2 jigsaw via
    three mergings followed by vertex deletions; :func:`thickened_jigsaw`
    realises exactly that shape, so we expose the 3x2 instance under the
    figure's name for the benchmarks.
    """
    return thickened_jigsaw(3, 2)


def figure1_hypergraph() -> Hypergraph:
    """An example hypergraph exhibiting the Figure 1 phenomena.

    ``H`` has edges ``{x,y}, {a,x}, {b,x}, {y,c,d}, {y,e}`` (degree 3,
    rank 3).  Contracting the primal edge ``{x, y}`` (the hypergraph-minor
    operation of Definition 3.3) produces a vertex of degree 4 — higher than
    any degree in ``H`` — so the contraction result cannot be a dilution of
    ``H``.  Merging on ``y`` (the dilution operation) produces the rank-4 edge
    ``{x, c, d, e}``, while the primal graph of ``H`` has no 4-clique on those
    vertices, so the merging result cannot be reached by hypergraph-minor
    operations either.  These are exactly the two non-simulability claims the
    paper reads off Figure 1.
    """
    return Hypergraph(
        edges=[{"x", "y"}, {"a", "x"}, {"b", "x"}, {"y", "c", "d"}, {"y", "e"}]
    )


# ----------------------------------------------------------------------
# Duals of graphs: the canonical degree-2 family
# ----------------------------------------------------------------------
def dual_of_graph(graph: Graph) -> Hypergraph:
    """The dual hypergraph of a simple graph.

    Every vertex of the dual (an edge of ``graph``) lies in exactly the two
    hyperedges of its endpoints, so the dual has degree exactly 2 whenever the
    graph has no isolated vertices.
    """
    return dual_hypergraph(graph)


def erdos_renyi_graph(n: int, p: float, seed=0) -> Graph:
    """A ``G(n, p)`` random graph on vertices ``0..n-1``."""
    if n < 1:
        raise ValueError("erdos_renyi_graph requires n >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("edge probability must be in [0, 1]")
    rng = _rng(seed)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p]
    return Graph(range(n), edges)


def random_degree2_hypergraph(n: int, p: float, seed=0) -> Hypergraph:
    """A random degree-2 hypergraph: the dual of a ``G(n, p)`` graph with
    isolated vertices dropped."""
    graph = erdos_renyi_graph(n, p, seed)
    connected_part = [v for v in graph.vertices if graph.degree(v) > 0]
    trimmed = graph.induced_subhypergraph(connected_part) if connected_part else Hypergraph()
    return dual_hypergraph(trimmed)


def random_graph_with_treewidth_at_most(n: int, width: int, seed=0, extra_edges: int = 0) -> Graph:
    """A random partial ``width``-tree on ``n`` vertices (k-tree subgraph).

    Useful for generating graphs of *bounded* treewidth, and therefore (via
    duals) degree-2 hypergraphs with bounded ghw.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    width = max(1, min(width, n - 1))
    rng = _rng(seed)
    edges: set = set()
    cliques: list[list[int]] = []
    initial = list(range(min(width + 1, n)))
    for i, u in enumerate(initial):
        for v in initial[i + 1:]:
            edges.add(frozenset({u, v}))
    cliques.append(initial)
    for v in range(len(initial), n):
        host = rng.choice(cliques)
        drop = rng.randrange(len(host))
        new_clique = [u for k, u in enumerate(host) if k != drop] + [v]
        for u in new_clique[:-1]:
            edges.add(frozenset({u, v}))
        cliques.append(new_clique)
    graph = Graph(range(n), edges)
    # Random deletions keep the treewidth bound (subgraphs never increase it).
    removable = list(graph.edges)
    rng.shuffle(removable)
    for edge in removable[: max(0, len(removable) // 4 - extra_edges)]:
        graph = Graph(graph.vertices, graph.edges - {edge})
    return graph


# ----------------------------------------------------------------------
# Query-shaped hypergraphs
# ----------------------------------------------------------------------
def hypercycle(num_edges: int, edge_size: int = 2) -> Hypergraph:
    """A cycle of ``num_edges`` edges, consecutive edges sharing one vertex.

    For ``edge_size == 2`` this is the cycle graph; larger edge sizes pad each
    edge with private vertices.  Degree is 2 and ghw is 2 for any cycle with
    at least 3 edges.
    """
    if num_edges < 3:
        raise ValueError("hypercycle requires at least 3 edges")
    if edge_size < 2:
        raise ValueError("edge_size must be at least 2")
    edges = []
    for i in range(num_edges):
        edge = {("c", i), ("c", (i + 1) % num_edges)}
        for k in range(edge_size - 2):
            edge.add(("p", i, k))
        edges.append(edge)
    return Hypergraph(edges=edges)


def hyperpath(num_edges: int, edge_size: int = 2) -> Hypergraph:
    """A chain of ``num_edges`` edges, consecutive edges sharing one vertex."""
    if num_edges < 1:
        raise ValueError("hyperpath requires at least 1 edge")
    if edge_size < 2:
        raise ValueError("edge_size must be at least 2")
    edges = []
    for i in range(num_edges):
        edge = {("c", i), ("c", i + 1)}
        for k in range(edge_size - 2):
            edge.add(("p", i, k))
        edges.append(edge)
    return Hypergraph(edges=edges)


def star_hypergraph(num_edges: int, edge_size: int = 2) -> Hypergraph:
    """``num_edges`` edges all sharing one centre vertex (acyclic, degree =
    number of edges)."""
    if num_edges < 1:
        raise ValueError("star_hypergraph requires at least 1 edge")
    edges = []
    for i in range(num_edges):
        edge = {"centre", ("leaf", i)}
        for k in range(edge_size - 2):
            edge.add(("p", i, k))
        edges.append(edge)
    return Hypergraph(edges=edges)


def random_acyclic_hypergraph(num_edges: int, max_rank: int = 4, seed=0) -> Hypergraph:
    """A random alpha-acyclic hypergraph built as a tree of edges.

    Each new edge shares a random non-empty subset of an existing edge and
    adds at least one private vertex, which keeps the GYO reduction successful
    by construction.
    """
    if num_edges < 1:
        raise ValueError("need at least one edge")
    rng = _rng(seed)
    counter = 0

    def fresh() -> tuple:
        nonlocal counter
        counter += 1
        return ("v", counter)

    first_size = rng.randint(2, max(2, max_rank))
    edges: list[frozenset] = [frozenset(fresh() for _ in range(first_size))]
    for _ in range(num_edges - 1):
        host = rng.choice(edges)
        shared_size = rng.randint(1, max(1, min(len(host), max_rank - 1)))
        shared = rng.sample(sorted(host, key=repr), shared_size)
        private = [fresh() for _ in range(rng.randint(1, max(1, max_rank - shared_size)))]
        edges.append(frozenset(shared) | frozenset(private))
    return Hypergraph(edges=edges)


def disjoint_union(hypergraphs: Iterable[Hypergraph]) -> Hypergraph:
    """The disjoint union, with vertices tagged by component index."""
    edges = []
    vertices = []
    for index, h in enumerate(hypergraphs):
        tag = lambda v, index=index: (index, v)
        vertices.extend(tag(v) for v in h.vertices)
        edges.extend(frozenset(tag(v) for v in e) for e in h.edges)
    return Hypergraph(vertices, edges)
