"""repro — a reproduction of "The Complexity of Conjunctive Queries with Degree 2".

The package is organised by subsystem (see ``DESIGN.md`` for the full map):

* :mod:`repro.hypergraphs` — hypergraphs, graphs, duals, reduction, generators;
* :mod:`repro.widths` — tree decompositions, treewidth, edge covers, GHDs,
  generalised / fractional hypertree width, balanced separators;
* :mod:`repro.dilutions` — the paper's hypergraph dilutions (Definition 3.1);
* :mod:`repro.minors` — graph minors, grid minors, expressive minors;
* :mod:`repro.jigsaws` — jigsaws, pre-jigsaws, the Theorem 4.7 pipeline;
* :mod:`repro.structure` — constructive Lemmas 4.4 and 4.6;
* :mod:`repro.cq` — conjunctive queries, databases, solvers, counting, cores;
* :mod:`repro.engine` — the unified query engine: cached structural
  analysis, the strategy planner, and the executor behind
  ``answer`` / ``is_satisfiable`` / ``count``;
* :mod:`repro.reductions` — the Theorem 3.4 / 4.15 instance reductions;
* :mod:`repro.benchdata` — the HyperBench-substitute corpus behind Table 1.
"""

from repro.hypergraphs import Hypergraph, Graph
from repro.hypergraphs import generators as hypergraph_generators
from repro.widths import (
    GeneralizedHypertreeDecomposition,
    TreeDecomposition,
    ghw,
    treewidth,
)
from repro.dilutions import (
    DeleteSubedge,
    DeleteVertex,
    DilutionSequence,
    MergeOnVertex,
    find_dilution_sequence,
    is_dilution_of,
)
from repro.jigsaws import dilute_to_jigsaw, jigsaw
from repro.cq import (
    Atom,
    ConjunctiveQuery,
    Database,
    Relation,
    boolean_answer,
    count_answers,
    decomposition_boolean_answer,
    decomposition_count_answers,
    enumerate_answers,
)
from repro.reductions import reduce_along_dilution

# The unified query engine: repro.engine.answer / is_satisfiable / count is
# the documented public entry point for query evaluation.
from repro import engine
from repro.engine import (
    Engine,
    EngineSession,
    EvalResult,
    Plan,
    answer,
    answer_many,
    count,
    is_satisfiable,
    plan_query,
)

__version__ = "1.0.0"

__all__ = [
    "Hypergraph",
    "Graph",
    "hypergraph_generators",
    "TreeDecomposition",
    "GeneralizedHypertreeDecomposition",
    "ghw",
    "treewidth",
    "DilutionSequence",
    "DeleteVertex",
    "DeleteSubedge",
    "MergeOnVertex",
    "find_dilution_sequence",
    "is_dilution_of",
    "jigsaw",
    "dilute_to_jigsaw",
    "Atom",
    "ConjunctiveQuery",
    "Database",
    "Relation",
    "boolean_answer",
    "enumerate_answers",
    "count_answers",
    "decomposition_boolean_answer",
    "decomposition_count_answers",
    "reduce_along_dilution",
    "engine",
    "Engine",
    "EngineSession",
    "EvalResult",
    "Plan",
    "answer",
    "answer_many",
    "count",
    "is_satisfiable",
    "plan_query",
    "__version__",
]
