"""The three dilution operations of Definition 3.1.

Each operation is a small immutable object with an applicability check and an
``apply`` method producing a new hypergraph.  Keeping operations first-class
lets dilution *sequences* be stored, validated, replayed, and — crucially for
Theorem 3.4 — traversed in reverse by the query/database reduction.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.hypergraphs.hypergraph import Hypergraph

Vertex = Hashable


class DilutionOperation:
    """Base class for dilution operations."""

    def is_applicable(self, hypergraph: Hypergraph) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def apply(self, hypergraph: Hypergraph) -> Hypergraph:  # pragma: no cover - interface
        raise NotImplementedError

    def explain_inapplicable(self, hypergraph: Hypergraph) -> str:
        return f"{self!r} is not applicable"


@dataclass(frozen=True)
class DeleteVertex(DilutionOperation):
    """Operation (1): delete a vertex from the vertex set and from all edges."""

    vertex: Vertex

    def is_applicable(self, hypergraph: Hypergraph) -> bool:
        return self.vertex in hypergraph.vertices

    def apply(self, hypergraph: Hypergraph) -> Hypergraph:
        if not self.is_applicable(hypergraph):
            raise ValueError(self.explain_inapplicable(hypergraph))
        return hypergraph.delete_vertex(self.vertex, keep_empty_edges=True)

    def explain_inapplicable(self, hypergraph: Hypergraph) -> str:
        return f"vertex {self.vertex!r} is not a vertex of the hypergraph"


@dataclass(frozen=True)
class DeleteSubedge(DilutionOperation):
    """Operation (2): delete an edge that is a *proper subset* of another edge.

    Arbitrary edge deletion is intentionally not allowed (see the discussion
    after Definition 3.1): removing a covering edge could "activate" an
    arbitrarily complex subproblem and break the monotonicity of complexity
    that dilutions are designed to preserve.
    """

    edge: frozenset

    def __init__(self, edge: Iterable[Vertex]) -> None:
        object.__setattr__(self, "edge", frozenset(edge))

    def is_applicable(self, hypergraph: Hypergraph) -> bool:
        if self.edge not in hypergraph.edges:
            return False
        return any(self.edge < other for other in hypergraph.edges)

    def apply(self, hypergraph: Hypergraph) -> Hypergraph:
        if not self.is_applicable(hypergraph):
            raise ValueError(self.explain_inapplicable(hypergraph))
        return hypergraph.delete_edge(self.edge)

    def explain_inapplicable(self, hypergraph: Hypergraph) -> str:
        if self.edge not in hypergraph.edges:
            return f"edge {set(self.edge)!r} is not an edge of the hypergraph"
        return f"edge {set(self.edge)!r} is not a proper subset of another edge"


@dataclass(frozen=True)
class MergeOnVertex(DilutionOperation):
    """Operation (3): *merging on* a vertex ``v``.

    All edges incident to ``v`` are replaced by the single edge
    ``(U I_v) \\ {v}``.  This is the dual counterpart of contracting a vertex
    in graph-minor terms (Figure 1) and is what lets dilutions pull grid
    minors of the dual back into jigsaw substructures of the hypergraph
    itself (Lemma 4.4).
    """

    vertex: Vertex

    def is_applicable(self, hypergraph: Hypergraph) -> bool:
        return self.vertex in hypergraph.vertices

    def apply(self, hypergraph: Hypergraph) -> Hypergraph:
        if not self.is_applicable(hypergraph):
            raise ValueError(self.explain_inapplicable(hypergraph))
        return hypergraph.merge_on_vertex(self.vertex)

    def explain_inapplicable(self, hypergraph: Hypergraph) -> str:
        return f"vertex {self.vertex!r} is not a vertex of the hypergraph"
