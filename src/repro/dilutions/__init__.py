"""Hypergraph dilutions (Section 3 of the paper).

A hypergraph ``H`` is a *dilution* of ``H'`` if it is isomorphic to a
hypergraph reachable from ``H'`` by vertex deletions, deletions of subedges,
and *mergings* on a vertex (Definition 3.1).  Dilutions are the paper's
replacement for graph minors in the unbounded-rank world: they never increase
the degree, never increase ghw (Lemma 3.2), and CQ answering reduces along
them (Theorem 3.4, implemented in :mod:`repro.reductions`).
"""

from repro.dilutions.operations import (
    DeleteSubedge,
    DeleteVertex,
    DilutionOperation,
    MergeOnVertex,
)
from repro.dilutions.sequence import DilutionSequence
from repro.dilutions.search import find_dilution_sequence, is_dilution_of
from repro.dilutions.labels import (
    dilution_edge_labels,
    dilution_to_dual_minor_map,
)

__all__ = [
    "DilutionOperation",
    "DeleteVertex",
    "DeleteSubedge",
    "MergeOnVertex",
    "DilutionSequence",
    "find_dilution_sequence",
    "is_dilution_of",
    "dilution_edge_labels",
    "dilution_to_dual_minor_map",
]
