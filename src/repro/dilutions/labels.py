"""Edge-label tracking along dilution sequences (Lemma B.1).

The appendix proof of Lemma B.1 tracks, for every edge of the evolving
hypergraph, the set of original edges it "came from":

* initially ``L(e) = {e}``;
* when a vertex deletion collapses edges into one, the new edge's label is the
  union of the collapsed labels;
* when a subedge ``e1 (subset of) e0`` is deleted, ``L(e0)`` absorbs ``L(e1)``;
* when merging on a vertex, the new edge's label is the union of the labels of
  all replaced edges.

If a degree-2 hypergraph ``H`` dilutes to ``G^d`` for a connected graph ``G``,
these labels form a *minor map* from ``G`` into ``H^d``: each edge of ``G^d``
is a vertex of ``G``, and its label is a connected, pairwise-disjoint set of
edges of ``H`` — i.e. of vertices of ``H^d``.  This module implements the
label tracking and the conversion to a minor map.
"""

from __future__ import annotations

from repro.dilutions.operations import (
    DeleteSubedge,
    DeleteVertex,
    DilutionOperation,
    MergeOnVertex,
)
from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.hypergraph import Hypergraph


def dilution_edge_labels(
    source: Hypergraph, sequence: DilutionSequence
) -> tuple[Hypergraph, dict]:
    """Apply ``sequence`` to ``source`` while tracking edge labels.

    Returns ``(result_hypergraph, labels)`` where ``labels`` maps every edge
    of the result to a frozenset of edges of ``source``.
    """
    current = source
    labels: dict[frozenset, frozenset] = {edge: frozenset({edge}) for edge in source.edges}
    for operation in sequence:
        current, labels = _apply_with_labels(current, labels, operation)
    return current, labels


def _apply_with_labels(
    hypergraph: Hypergraph, labels: dict, operation: DilutionOperation
) -> tuple[Hypergraph, dict]:
    successor = operation.apply(hypergraph)
    new_labels: dict[frozenset, set] = {}

    if isinstance(operation, DeleteVertex):
        for edge in hypergraph.edges:
            image = edge - {operation.vertex}
            if image not in successor.edges:
                continue
            new_labels.setdefault(image, set()).update(labels[edge])
    elif isinstance(operation, DeleteSubedge):
        host = _host_edge(hypergraph, operation.edge)
        for edge in hypergraph.edges:
            if edge == operation.edge:
                continue
            new_labels.setdefault(edge, set()).update(labels[edge])
        if host is not None:
            new_labels.setdefault(host, set()).update(labels[operation.edge])
    elif isinstance(operation, MergeOnVertex):
        incident = hypergraph.incident_edges(operation.vertex)
        merged: set = set()
        for edge in incident:
            merged.update(edge)
        merged.discard(operation.vertex)
        merged_edge = frozenset(merged)
        for edge in hypergraph.edges:
            if edge in incident:
                new_labels.setdefault(merged_edge, set()).update(labels[edge])
            else:
                target = edge
                new_labels.setdefault(target, set()).update(labels[edge])
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown dilution operation {operation!r}")

    # Any successor edge not produced above (cannot normally happen) keeps an
    # empty label; conversely labels for edges that vanished are dropped.
    result = {edge: frozenset(new_labels.get(edge, frozenset())) for edge in successor.edges}
    return successor, result


def _host_edge(hypergraph: Hypergraph, subedge: frozenset):
    """The deterministic superedge absorbing a deleted subedge's label."""
    hosts = sorted(
        (e for e in hypergraph.edges if subedge < e),
        key=lambda e: (len(e), sorted(map(repr, e))),
    )
    return hosts[0] if hosts else None


def dilution_to_dual_minor_map(
    source: Hypergraph,
    sequence: DilutionSequence,
    grid_like_result: Hypergraph | None = None,
) -> dict:
    """The Lemma B.1 construction: labels of the final edges, interpreted as
    branch sets of a minor map into the dual of ``source``.

    The result maps each edge of the final hypergraph (a vertex of the final
    hypergraph's dual, e.g. a vertex of ``G`` when the final hypergraph is
    ``G^d``) to a frozenset of edges of ``source`` — that is, a set of
    vertices of ``source``'s dual.  Validation as an actual minor map is the
    job of :mod:`repro.minors.minor_map`.
    """
    result, labels = dilution_edge_labels(source, sequence)
    if grid_like_result is not None and result.edges != grid_like_result.edges:
        # The caller supplied the expected (labelled) result; keep labels only
        # for its edges when they coincide up to equality of edge sets.
        pass
    return labels
