"""Dilution sequences: ordered lists of dilution operations.

A dilution sequence witnesses that one hypergraph dilutes to another; it is
the object the Theorem 3.4 reduction consumes (in reverse) and the object the
search in :mod:`repro.dilutions.search` produces.  The sequence also exposes
the Lemma 3.2 monotonicity facts as runtime checks used by the property-based
tests: along any sequence the degree never increases, ``|V| + |E|`` strictly
decreases for every effective step, and ghw never increases.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.dilutions.operations import DilutionOperation
from repro.hypergraphs.hypergraph import Hypergraph


class DilutionSequence:
    """An immutable sequence of dilution operations."""

    def __init__(self, operations: Iterable[DilutionOperation] = ()) -> None:
        self.operations: tuple[DilutionOperation, ...] = tuple(operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[DilutionOperation]:
        return iter(self.operations)

    def __getitem__(self, index):
        return self.operations[index]

    def __add__(self, other: "DilutionSequence") -> "DilutionSequence":
        return DilutionSequence(self.operations + tuple(other))

    def __repr__(self) -> str:
        return f"DilutionSequence({list(self.operations)!r})"

    # ------------------------------------------------------------------
    def is_applicable_to(self, hypergraph: Hypergraph) -> bool:
        """True if every operation is applicable when applied in order."""
        current = hypergraph
        for operation in self.operations:
            if not operation.is_applicable(current):
                return False
            current = operation.apply(current)
        return True

    def apply(self, hypergraph: Hypergraph) -> Hypergraph:
        """Apply all operations in order, returning the final hypergraph."""
        current = hypergraph
        for operation in self.operations:
            current = operation.apply(current)
        return current

    def intermediate_hypergraphs(self, hypergraph: Hypergraph) -> list[Hypergraph]:
        """All hypergraphs ``H_0 = input, H_1, ..., H_l`` along the sequence."""
        stages = [hypergraph]
        for operation in self.operations:
            stages.append(operation.apply(stages[-1]))
        return stages

    # ------------------------------------------------------------------
    def check_monotonicity(self, hypergraph: Hypergraph) -> dict:
        """Check the Lemma 3.2 invariants along this sequence.

        Returns a dict with keys ``degree_monotone`` and ``size_monotone``
        (booleans).  The ghw statement of Lemma 3.2(3) is verified separately
        in the tests because computing ghw bounds per stage is more expensive.
        """
        stages = self.intermediate_hypergraphs(hypergraph)
        degree_monotone = all(
            later.degree() <= earlier.degree()
            for earlier, later in zip(stages, stages[1:])
        )
        size_monotone = all(
            later.size <= earlier.size
            for earlier, later in zip(stages, stages[1:])
        )
        return {"degree_monotone": degree_monotone, "size_monotone": size_monotone}
