"""Deciding hypergraph dilution: "does H' dilute to H?".

Theorem 3.5 shows the problem is NP-complete in general, so no polynomial
algorithm is expected; this module provides an exact depth-first search that
is practical for the small hypergraphs used in tests and benches (up to
roughly a dozen vertices/edges of slack between source and target).

The search exploits the structural facts of Lemma 3.2 for pruning:

* ``|V| + |E|`` never increases along a dilution sequence, so the depth of the
  search is bounded by ``size(source) - size(target)``;
* the degree never increases, so a branch whose current degree is already
  below the target degree is dead;
* the number of vertices and the number of edges never increase individually.

Since Definition 3.1 asks for the target only up to isomorphism, the search
closes every branch with an isomorphism test.
"""

from __future__ import annotations

from repro.dilutions.operations import (
    DeleteSubedge,
    DeleteVertex,
    DilutionOperation,
    MergeOnVertex,
)
from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.isomorphism import are_isomorphic


class SearchBudgetExceeded(RuntimeError):
    """Raised when the dilution search exceeds its node budget."""


def _signature(hypergraph: Hypergraph) -> tuple:
    """A cheap canonical-ish signature used to avoid revisiting states.

    Two isomorphic hypergraphs always share a signature, and distinct states
    reached through different operation orders usually collapse; the signature
    intentionally errs on the side of distinguishing (never merges states that
    are genuinely different as labelled hypergraphs).
    """
    return (
        frozenset(hypergraph.edges),
        frozenset(hypergraph.vertices),
    )


def _candidate_operations(hypergraph: Hypergraph) -> list[DilutionOperation]:
    operations: list[DilutionOperation] = []
    for vertex in hypergraph.vertex_list():
        operations.append(DeleteVertex(vertex))
        operations.append(MergeOnVertex(vertex))
    for edge in hypergraph.edge_list():
        if any(edge < other for other in hypergraph.edges):
            operations.append(DeleteSubedge(edge))
    return operations


def _prune(current: Hypergraph, target: Hypergraph) -> bool:
    """True if no dilution of ``current`` can be isomorphic to ``target``."""
    if current.num_vertices < target.num_vertices:
        return True
    if current.num_edges < target.num_edges:
        return True
    if current.size < target.size:
        return True
    if current.degree() < target.degree():
        return True
    return False


def find_dilution_sequence(
    source: Hypergraph,
    target: Hypergraph,
    max_nodes: int = 200_000,
) -> DilutionSequence | None:
    """A dilution sequence from ``source`` to (an isomorphic copy of)
    ``target``, or ``None`` if none exists.

    Raises :class:`SearchBudgetExceeded` when more than ``max_nodes`` search
    states are expanded, so callers can distinguish "no" from "gave up".
    """
    if are_isomorphic(source, target):
        return DilutionSequence()
    visited: set = set()
    expanded = 0

    def dfs(current: Hypergraph, trail: list[DilutionOperation]) -> list | None:
        nonlocal expanded
        expanded += 1
        if expanded > max_nodes:
            raise SearchBudgetExceeded(
                f"dilution search exceeded {max_nodes} expanded states"
            )
        for operation in _candidate_operations(current):
            successor = operation.apply(current)
            if successor.size >= current.size and not isinstance(operation, DeleteSubedge):
                # Degenerate merge on an isolated vertex; never useful.
                if successor == current:
                    continue
            signature = _signature(successor)
            if signature in visited:
                continue
            visited.add(signature)
            if _prune(successor, target):
                continue
            if (
                successor.num_vertices == target.num_vertices
                and successor.num_edges == target.num_edges
                and are_isomorphic(successor, target)
            ):
                return trail + [operation]
            result = dfs(successor, trail + [operation])
            if result is not None:
                return result
        return None

    visited.add(_signature(source))
    found = dfs(source, [])
    if found is None:
        return None
    return DilutionSequence(found)


def is_dilution_of(
    target: Hypergraph, source: Hypergraph, max_nodes: int = 200_000
) -> bool:
    """True if ``target`` is a hypergraph dilution of ``source``
    (i.e. ``source`` dilutes to ``target``)."""
    return find_dilution_sequence(source, target, max_nodes=max_nodes) is not None
