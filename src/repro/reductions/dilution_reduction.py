"""The Theorem 3.4 reduction: CQ answering reduces along hypergraph dilutions.

Setting: a CQ ``q`` with database ``D_q`` whose hypergraph is ``M``, and a
hypergraph ``H`` together with a dilution sequence ``W`` from ``H`` to ``M``.
Traversing ``W`` in reverse, each dilution operation is *undone* on the
instance level:

* **vertex deletion** (of ``v``) is undone by re-attaching ``v`` to every edge
  that contained it, extending the corresponding relations by a single fresh
  constant ``star_0`` in the new position;
* **merging on ``v``** is undone by splitting the merged edge's atom back into
  one atom per original edge, sharing the reconstructed variable ``v`` whose
  value is a *distinct* fresh constant per tuple — a key making every split
  relation functionally dependent on ``v``;
* **subedge deletion** is undone by adding back an atom for the subedge whose
  relation is the projection of a covering edge's relation.

Every step preserves the answers modulo projection onto the original
variables, and in fact preserves the *number* of answers (the reduction is
parsimonious — Theorem 4.15, exercised in :mod:`repro.reductions.parsimonious`).
The per-step database blow-up is at most proportional to ``degree(H)``, giving
the fpt size bound ``||D_p|| = O(degree(H)^l * ||D_q||)`` recorded in
:attr:`DilutionReductionResult.steps` and replayed by benchmark E6.

The reduction expects a *normalised* instance — self-join-free, no repeated
variables inside an atom, exactly one atom per hypergraph edge —
:func:`normalize_query` converts any constant-free CQ with no repeated
variables into this form without changing its answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cq.database import Database, Relation
from repro.cq.query import Atom, Constant, ConjunctiveQuery
from repro.dilutions.operations import (
    DeleteSubedge,
    DeleteVertex,
    DilutionOperation,
    MergeOnVertex,
)
from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.hypergraph import Hypergraph


@dataclass
class ReductionStep:
    """Bookkeeping for a single reversed dilution operation."""

    operation: DilutionOperation
    database_size: int
    query_atoms: int


@dataclass
class DilutionReductionResult:
    """The reduced instance ``(p, D_p)`` plus per-step statistics."""

    query: ConjunctiveQuery
    database: Database
    original_query: ConjunctiveQuery
    original_database: Database
    steps: list[ReductionStep] = field(default_factory=list)

    @property
    def blow_up(self) -> float:
        """``||D_p|| / ||D_q||`` — compare against ``degree(H)^l``."""
        original = max(1, self.original_database.size())
        return self.database.size() / original


class _FreshNames:
    """Fresh relation names and star constants for the reduction."""

    def __init__(self, taken: set[str]) -> None:
        self._taken = set(taken)
        self._relation_counter = 0
        self._star_counter = 0

    def relation(self, hint: str) -> str:
        while True:
            candidate = f"{hint}_d{self._relation_counter}"
            self._relation_counter += 1
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate

    def star(self):
        value = ("star", self._star_counter)
        self._star_counter += 1
        return value

    def star_zero(self):
        return ("star", "0")


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------
def normalize_query(
    query: ConjunctiveQuery, database: Database
) -> tuple[ConjunctiveQuery, Database]:
    """Rewrite ``(q, D)`` so that the query is self-join-free and has exactly
    one atom per hypergraph edge, preserving the answer set exactly.

    Self-joins are split by renaming relation symbols (copying relations);
    several atoms over the same variable scope are merged into a single atom
    whose relation is the intersection of their reordered relations.  Queries
    with repeated variables inside an atom or with constants are rejected —
    the paper's lower-bound machinery never needs them (cf. the class ``Q_J``
    in Theorem 4.8) and Section 3 discusses why dilution-level operations do
    not interact well with them.
    """
    if query.has_repeated_variables():
        raise ValueError("normalization requires no repeated variables inside an atom")
    if query.has_constants():
        raise ValueError("normalization requires constant-free queries")

    fresh = _FreshNames(set(database.relations))
    new_database = database.copy()

    # Step 1: split self-joins.
    seen_relations: set[str] = set()
    renamed_atoms: list[Atom] = []
    for atom in query.atoms:
        if atom.relation in seen_relations:
            new_name = fresh.relation(atom.relation)
            source = database.relation(atom.relation)
            new_database.add_relation(Relation(new_name, source.arity, source.tuples))
            renamed_atoms.append(Atom(new_name, atom.terms))
        else:
            seen_relations.add(atom.relation)
            renamed_atoms.append(atom)

    # Step 2: merge atoms sharing a variable scope into one intersection atom.
    by_scope: dict[frozenset, list[Atom]] = {}
    for atom in renamed_atoms:
        by_scope.setdefault(atom.variable_set(), []).append(atom)
    final_atoms: list[Atom] = []
    for scope in sorted(by_scope, key=lambda s: sorted(map(repr, s))):
        atoms = by_scope[scope]
        if len(atoms) == 1:
            final_atoms.append(atoms[0])
            continue
        variables = sorted(scope, key=repr)
        tuple_sets = []
        for atom in atoms:
            relation = new_database.relation(atom.relation)
            positions = [list(atom.terms).index(v) for v in variables]
            tuple_sets.append({tuple(row[i] for i in positions) for row in relation.tuples})
        merged_rows = set.intersection(*tuple_sets) if tuple_sets else set()
        name = fresh.relation("MERGED")
        new_database.add_relation(Relation(name, len(variables), merged_rows))
        final_atoms.append(Atom(name, variables))

    normalized = ConjunctiveQuery(final_atoms, free_variables=query.free_variables)
    return normalized, new_database


# ----------------------------------------------------------------------
# The reduction itself
# ----------------------------------------------------------------------
def reduce_along_dilution(
    query: ConjunctiveQuery,
    database: Database,
    source_hypergraph: Hypergraph,
    sequence: DilutionSequence,
) -> DilutionReductionResult:
    """Theorem 3.4: build ``(p, D_p)`` with hypergraph ``source_hypergraph``
    such that the answers of ``p`` over ``D_p``, projected onto the variables
    of ``query``, are exactly the answers of ``query`` over ``database``.

    ``sequence`` must transform ``source_hypergraph`` into exactly the
    hypergraph of ``query`` (same vertex labels) — e.g. a sequence found by
    :func:`repro.dilutions.search.find_dilution_sequence` against
    ``query.hypergraph()`` composed with the appropriate relabelling, or a
    planted sequence from the generators.
    """
    normalized, current_database = normalize_query(query, database)
    stages = sequence.intermediate_hypergraphs(source_hypergraph)
    if stages[-1].edges != normalized.hypergraph().edges:
        raise ValueError(
            "the dilution sequence does not produce the query's hypergraph "
            f"(expected edges of {normalized.hypergraph()!r}, got {stages[-1]!r})"
        )
    fresh = _FreshNames(set(current_database.relations))

    # atom_of maps every edge of the current hypergraph to its (single) atom.
    atom_of: dict[frozenset, Atom] = {
        atom.variable_set(): atom for atom in normalized.atoms
    }
    steps: list[ReductionStep] = []

    for operation, before, after in zip(
        reversed(sequence.operations), reversed(stages[:-1]), reversed(stages[1:])
    ):
        atom_of, current_database = _reverse_operation(
            operation, before, after, atom_of, current_database, fresh
        )
        steps.append(
            ReductionStep(
                operation=operation,
                database_size=current_database.size(),
                query_atoms=len(atom_of),
            )
        )

    final_atoms = [atom_of[edge] for edge in sorted(atom_of, key=lambda e: sorted(map(repr, e)))]
    final_query = ConjunctiveQuery(final_atoms, free_variables=None)
    return DilutionReductionResult(
        query=final_query,
        database=current_database,
        original_query=normalized,
        original_database=database,
        steps=steps,
    )


def _reverse_operation(
    operation: DilutionOperation,
    before: Hypergraph,
    after: Hypergraph,
    atom_of: dict,
    database: Database,
    fresh: _FreshNames,
) -> tuple[dict, Database]:
    if isinstance(operation, DeleteVertex):
        return _reverse_delete_vertex(operation, before, after, atom_of, database, fresh)
    if isinstance(operation, MergeOnVertex):
        return _reverse_merge(operation, before, after, atom_of, database, fresh)
    if isinstance(operation, DeleteSubedge):
        return _reverse_delete_subedge(operation, before, after, atom_of, database, fresh)
    raise TypeError(f"unknown dilution operation {operation!r}")


def _atom_variables(edge: frozenset) -> list:
    return sorted(edge, key=repr)


def _copy_shared_edges(before: Hypergraph, after: Hypergraph, atom_of: dict) -> dict:
    """Atoms for edges present in both hypergraphs are carried over unchanged."""
    return {
        edge: atom_of[edge]
        for edge in before.edges
        if edge in after.edges and edge in atom_of
    }


def _reverse_delete_vertex(
    operation: DeleteVertex,
    before: Hypergraph,
    after: Hypergraph,
    atom_of: dict,
    database: Database,
    fresh: _FreshNames,
) -> tuple[dict, Database]:
    vertex = operation.vertex
    new_atom_of = _copy_shared_edges(before, after, atom_of)
    new_database = database.copy()
    star = fresh.star_zero()
    for edge in before.edges:
        if vertex not in edge:
            continue
        pre_edge = edge - {vertex}
        base_atom = atom_of[pre_edge]
        base_relation = new_database.relation(base_atom.relation)
        variables = list(base_atom.terms) + [vertex]
        name = fresh.relation(f"S_{base_atom.relation}")
        extended = Relation(name, len(variables))
        for row in base_relation.tuples:
            extended.add(tuple(row) + (star,))
        new_database.add_relation(extended)
        new_atom_of[edge] = Atom(name, variables)
    return new_atom_of, new_database


def _reverse_merge(
    operation: MergeOnVertex,
    before: Hypergraph,
    after: Hypergraph,
    atom_of: dict,
    database: Database,
    fresh: _FreshNames,
) -> tuple[dict, Database]:
    vertex = operation.vertex
    incident = before.incident_edges(vertex)
    merged_edge: set = set()
    for edge in incident:
        merged_edge.update(edge)
    merged_edge.discard(vertex)
    merged_edge = frozenset(merged_edge)

    new_atom_of = _copy_shared_edges(before, after, atom_of)
    new_database = database.copy()
    base_atom = atom_of[merged_edge]
    base_relation = new_database.relation(base_atom.relation)
    base_variables = list(base_atom.terms)

    # R': every tuple of the merged edge's relation extended by a distinct key.
    keyed_rows = []
    for row in sorted(base_relation.tuples, key=repr):
        keyed_rows.append(tuple(row) + (fresh.star(),))
    keyed_columns = base_variables + [vertex]

    for edge in sorted(incident, key=lambda e: sorted(map(repr, e))):
        variables = _atom_variables(edge)
        positions = [keyed_columns.index(v) for v in variables]
        name = fresh.relation("SPLIT")
        projected = Relation(name, len(variables))
        for row in keyed_rows:
            projected.add(tuple(row[i] for i in positions))
        new_database.add_relation(projected)
        new_atom_of[edge] = Atom(name, variables)
    return new_atom_of, new_database


def _reverse_delete_subedge(
    operation: DeleteSubedge,
    before: Hypergraph,
    after: Hypergraph,
    atom_of: dict,
    database: Database,
    fresh: _FreshNames,
) -> tuple[dict, Database]:
    subedge = operation.edge
    new_atom_of = _copy_shared_edges(before, after, atom_of)
    new_database = database.copy()
    hosts = sorted(
        (e for e in after.edges if subedge < e and e in atom_of),
        key=lambda e: (len(e), sorted(map(repr, e))),
    )
    if not hosts:
        raise ValueError(f"no covering edge found for deleted subedge {set(subedge)!r}")
    host_atom = atom_of[hosts[0]]
    host_relation = new_database.relation(host_atom.relation)
    variables = _atom_variables(subedge)
    positions = [list(host_atom.terms).index(v) for v in variables]
    name = fresh.relation("SUB")
    projected = Relation(name, len(variables))
    for row in host_relation.tuples:
        projected.add(tuple(row[i] for i in positions))
    if not variables and host_relation.tuples:
        projected.add(())
    new_database.add_relation(projected)
    new_atom_of[subedge] = Atom(name, variables)
    return new_atom_of, new_database
