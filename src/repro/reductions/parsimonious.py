"""Theorem 4.15: the dilution reduction is parsimonious.

The Theorem 3.4 reduction not only preserves satisfiability — inspecting the
per-operation reversals shows it preserves the *number* of solutions: every
solution of the original (full) query extends uniquely to a solution of the
reduced query (star constants are functionally determined), and every solution
of the reduced query projects to a distinct solution of the original.  That is
what lets the counting lower bounds of Section 4.4 transfer along dilutions.

This module provides a counting-problem wrapper plus the verification helpers
the tests and benchmark E8 use to check both answer preservation and
parsimony on concrete instances.
"""

from __future__ import annotations

from repro.cq.database import Database
from repro.cq.homomorphism import count_answers, enumerate_answers
from repro.cq.query import ConjunctiveQuery
from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.hypergraph import Hypergraph
from repro.reductions.dilution_reduction import DilutionReductionResult, reduce_along_dilution


def counting_reduction(
    query: ConjunctiveQuery,
    database: Database,
    source_hypergraph: Hypergraph,
    sequence: DilutionSequence,
) -> DilutionReductionResult:
    """The parsimonious reduction for the counting problem (#CQ).

    Identical to :func:`reduce_along_dilution` except that the input query is
    forced to be full (no existential quantification), matching the setting of
    Section 4.4.
    """
    return reduce_along_dilution(query.as_full(), database, source_hypergraph, sequence)


def verify_answer_preservation(result: DilutionReductionResult) -> bool:
    """Check ``pi_vars(q)(p(D_p)) = q(D_q)`` by brute force on both sides.

    Intended for the small instances used in tests; both solvers are the
    generic backtracking evaluator, so this is an end-to-end independent check
    of the reduction.
    """
    original_full = result.original_query.as_full()
    original_answers = enumerate_answers(original_full, result.original_database)
    reduced = result.query.project(original_full.free_variables)
    projected_answers = enumerate_answers(reduced, result.database)
    return original_answers == projected_answers


def verify_parsimony(result: DilutionReductionResult) -> bool:
    """Check ``|p(D_p)| = |q(D_q)|`` for the full versions of both queries."""
    original_count = count_answers(result.original_query.as_full(), result.original_database)
    reduced_count = count_answers(result.query.as_full(), result.database)
    return original_count == reduced_count


def size_bound_holds(result: DilutionReductionResult, source_degree: int) -> bool:
    """Check the fpt size bound ``||D_p|| <= c * max(2, degree)^l * ||D_q||``.

    The constant ``c`` accounts for the fixed per-step overhead (one extra
    attribute per copied relation); ``l`` is the length of the dilution
    sequence.
    """
    length = len(result.steps)
    base = max(2, source_degree)
    allowed = 4 * (base ** max(1, length)) * max(1, result.original_database.size())
    return result.database.size() <= allowed
