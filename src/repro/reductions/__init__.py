"""The paper's reductions, implemented as executable instance transformations.

* :mod:`repro.reductions.dilution_reduction` — the Theorem 3.4 fpt-reduction:
  given a CQ instance whose hypergraph is a dilution of ``H``, build an
  equivalent instance whose hypergraph is ``H`` by traversing the dilution
  sequence in reverse.
* :mod:`repro.reductions.parsimonious` — Theorem 4.15: the same reduction is
  parsimonious, so it transfers counting hardness as well; this module
  provides the counting wrapper and verification helpers.
* :mod:`repro.reductions.query_reduction` — the Section 4.3 bridge from
  hypergraph classes to query classes via cores (Proposition 4.10 direction).
"""

from repro.reductions.dilution_reduction import (
    DilutionReductionResult,
    normalize_query,
    reduce_along_dilution,
)
from repro.reductions.parsimonious import (
    counting_reduction,
    verify_answer_preservation,
    verify_parsimony,
)
from repro.reductions.query_reduction import (
    core_hypergraph_class,
    core_instance,
)

__all__ = [
    "DilutionReductionResult",
    "normalize_query",
    "reduce_along_dilution",
    "counting_reduction",
    "verify_answer_preservation",
    "verify_parsimony",
    "core_hypergraph_class",
    "core_instance",
]
