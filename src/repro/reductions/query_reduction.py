"""From hypergraph classes to query classes (Section 4.3).

Theorem 4.11 lifts the hypergraph-level lower bound (Theorem 4.1) to classes
of queries using Proposition 4.10 (Chen et al.): ``p-BCQ`` over the class of
hypergraphs of the *cores* of a query class reduces to ``p-BCQ`` over the
query class itself.  We do not re-prove the reduction; what the experiments
need is the constructive bridge — compute cores, collect their hypergraphs,
and produce the canonical instances over those hypergraphs — which this module
provides.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cq.core import core_of
from repro.cq.generators import query_from_hypergraph
from repro.cq.query import ConjunctiveQuery
from repro.hypergraphs.hypergraph import Hypergraph


def core_hypergraph_class(queries: Iterable[ConjunctiveQuery]) -> list[Hypergraph]:
    """``H_core(Q)``: the hypergraphs of the cores of the given queries."""
    return [core_of(query).hypergraph() for query in queries]


def core_instance(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The canonical self-join-free query over the hypergraph of ``query``'s
    core — the object the degree-2 lower bound machinery actually operates on
    (its degree never exceeds the original query's degree, because the core's
    hypergraph is a subhypergraph)."""
    return query_from_hypergraph(core_of(query).hypergraph(), relation_prefix="C")


def degree_preserved_by_core(query: ConjunctiveQuery) -> bool:
    """Check the observation used in Theorem 4.11: taking cores never
    increases the degree of the hypergraph."""
    return core_of(query).hypergraph().degree() <= query.hypergraph().degree()
