"""Balanced edge separators and the resulting ghw lower bound.

Section 4.2 lower-bounds the ghw of the ``n x n`` jigsaw with the following
classical fact (Adler, Gottlob, Grohe 2007): every hypergraph ``H`` admits a
*balanced separator* consisting of at most ``ghw(H)`` edges.  The precise form
used here follows from the standard centroid-bag argument:

    Let ``(T, (B_u), (lambda_u))`` be a GHD of width ``k``, assign every edge
    ``e`` to a node whose bag contains it, and let ``u*`` be a centroid of
    ``T`` under those edge weights (every subtree of ``T - u*`` carries at
    most ``|E|/2`` assigned edges).  For any connected component ``C`` of
    ``H - B_{u*}``, all bags meeting ``C`` lie in a single subtree of
    ``T - u*``, hence every edge intersecting ``C`` is assigned inside that
    subtree.  Therefore each component of ``H - B_{u*}`` is intersected by at
    most ``|E(H)|/2`` edges; the same holds for ``H - U(lambda_{u*})`` because
    removing more vertices only shrinks components.

So if **no** set of fewer than ``k`` edges is a balanced separator in this
sense, then ``ghw(H) >= k``.  The balance of a component is measured by the
number of *original* edges intersecting it (not by surviving vertices, which
would let large separators trivially pass).  This module computes minimum
balanced separators by exhaustive search over small edge subsets, giving
certified ghw lower bounds for the moderate instance sizes used in the
reproduction — in particular it certifies ``ghw >= n`` for small
``n x n`` jigsaws exactly as in the paper's Section 4.2 argument.
"""

from __future__ import annotations

from itertools import combinations

from repro.hypergraphs.hypergraph import Hypergraph


def separator_components(hypergraph: Hypergraph, separator_edges) -> list[frozenset]:
    """Connected components (vertex sets) left after deleting all vertices
    covered by the separator edges."""
    covered: set = set()
    for edge in separator_edges:
        covered.update(edge)
    remaining = hypergraph.vertices - covered
    if not remaining:
        return []
    rest = hypergraph.induced_subhypergraph(remaining)
    return rest.connected_components()


def component_edge_weight(hypergraph: Hypergraph, component: frozenset) -> int:
    """The number of edges of the original hypergraph intersecting ``component``."""
    return sum(1 for edge in hypergraph.edges if edge & component)


def is_balanced_separator(
    hypergraph: Hypergraph, separator_edges, balance: float = 0.5
) -> bool:
    """True if every component left by the separator is intersected by at most
    ``balance * |E(H)|`` edges of the original hypergraph."""
    limit = balance * hypergraph.num_edges
    return all(
        component_edge_weight(hypergraph, component) <= limit
        for component in separator_components(hypergraph, separator_edges)
    )


def balanced_edge_separator(
    hypergraph: Hypergraph, max_edges: int, balance: float = 0.5
) -> list[frozenset] | None:
    """The smallest balanced separator using at most ``max_edges`` edges, or
    ``None`` if none exists within that budget.

    The search is exhaustive over edge subsets of increasing size, so the cost
    is ``O(|E| choose max_edges)``; keep ``max_edges`` small.
    """
    edges = sorted(hypergraph.edges, key=lambda e: sorted(map(repr, e)))
    if is_balanced_separator(hypergraph, [], balance):
        return []
    for size in range(1, max_edges + 1):
        for subset in combinations(edges, size):
            if is_balanced_separator(hypergraph, subset, balance):
                return list(subset)
    return None


def minimum_balanced_separator_size(
    hypergraph: Hypergraph, max_edges: int | None = None, balance: float = 0.5
) -> int | None:
    """Size of the minimum balanced separator, or ``None`` if none was found
    within ``max_edges`` (meaning ghw(H) > max_edges)."""
    if max_edges is None:
        max_edges = hypergraph.num_edges
    separator = balanced_edge_separator(hypergraph, max_edges, balance)
    if separator is None:
        return None
    return len(separator)


def separator_ghw_lower_bound(
    hypergraph: Hypergraph, max_edges: int = 4, balance: float = 0.5
) -> int:
    """A certified lower bound on ghw from balanced separators.

    If the minimum balanced separator needs ``s`` edges then ``ghw >= s``; if
    no separator with at most ``max_edges`` edges exists then
    ``ghw >= max_edges + 1``.
    """
    size = minimum_balanced_separator_size(hypergraph, max_edges, balance)
    if size is None:
        return max_edges + 1
    return max(1, size)
