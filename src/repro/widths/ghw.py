"""Generalised hypertree width: certified upper and lower bounds.

Computing ghw exactly is NP-hard, and this reproduction follows the paper (and
HyperBench) in working with *certified bounds*:

* upper bounds always come with a valid :class:`GeneralizedHypertreeDecomposition`
  — obtained by covering the bags of a primal-graph tree decomposition
  (the ``rho``-width route), by the dual-treewidth construction of Lemma 4.6,
  or by the width-1 join tree when the hypergraph is acyclic;
* lower bounds are combinatorial certificates — non-acyclicity (ghw >= 2) and
  the balanced edge separator argument of Section 4.2 (the same argument that
  shows the ``n x n`` jigsaw has ghw >= n).

:func:`ghw` combines them and reports an exact value whenever the bounds meet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypergraphs.duality import dual_hypergraph, primal_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.properties import is_alpha_acyclic
from repro.hypergraphs.reduction import reduce_hypergraph
from repro.widths.acyclicity import join_tree_decomposition
from repro.widths.edge_cover import integral_edge_cover
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.separators import separator_ghw_lower_bound
from repro.widths.tree_decomposition import TreeDecomposition
from repro.widths.treewidth import treewidth, treewidth_upper_bound


@dataclass
class GHWResult:
    """Certified bounds on ghw together with the witnessing decomposition."""

    lower: int
    upper: int
    decomposition: GeneralizedHypertreeDecomposition | None

    @property
    def exact(self) -> bool:
        return self.lower == self.upper

    @property
    def value(self) -> int:
        if not self.exact:
            raise ValueError(f"ghw only bounded in [{self.lower}, {self.upper}]")
        return self.upper


# ----------------------------------------------------------------------
# Upper bounds
# ----------------------------------------------------------------------
def ghd_from_tree_decomposition(
    hypergraph: Hypergraph, decomposition: TreeDecomposition
) -> GeneralizedHypertreeDecomposition:
    """Attach a minimum integral edge cover to every bag of a tree
    decomposition, yielding a GHD whose width is the ``rho``-width of the
    decomposition."""
    covers = {}
    pruned_bags = {}
    for node, bag in decomposition.bags.items():
        coverable = frozenset(v for v in bag if hypergraph.degree(v) > 0)
        pruned_bags[node] = coverable
        covers[node] = integral_edge_cover(hypergraph, coverable)
    pruned = TreeDecomposition(pruned_bags, [tuple(e) for e in decomposition.tree_edges])
    return GeneralizedHypertreeDecomposition(pruned, covers)


def ghd_via_dual_treewidth(hypergraph: Hypergraph) -> GeneralizedHypertreeDecomposition:
    """The Lemma 4.6 construction: from a tree decomposition of the dual
    ``H^d`` of width ``k``, build a GHD of ``H`` of width at most ``k + 1``.

    Each dual bag ``D_u`` is a set of edges of ``H``; the GHD uses
    ``lambda_u = D_u`` and ``B_u = union(D_u)``.  The construction is applied
    to the reduced hypergraph; vertices removed by the reduction (isolated or
    duplicate-type) are reinserted into the bags that cover their twin.
    """
    reduced = reduce_hypergraph(hypergraph)
    if not reduced.edges:
        return _trivial(hypergraph)
    dual = dual_hypergraph(reduced)
    dual_td = treewidth_upper_bound(dual).decomposition
    bags = {}
    covers = {}
    for node, dual_bag in dual_td.bags.items():
        union: set = set()
        for edge in dual_bag:
            union.update(edge)
        bags[node] = frozenset(union)
        covers[node] = frozenset(dual_bag)
    decomposition = TreeDecomposition(bags, [tuple(e) for e in dual_td.tree_edges])
    ghd = GeneralizedHypertreeDecomposition(decomposition, covers)
    return _lift_to_original(hypergraph, reduced, ghd)


def _lift_to_original(
    original: Hypergraph, reduced: Hypergraph, ghd: GeneralizedHypertreeDecomposition
) -> GeneralizedHypertreeDecomposition:
    """Extend a GHD of the reduced hypergraph to the original one.

    Duplicate-type vertices are added to every bag containing their surviving
    twin (covered by the same edges); this keeps the width unchanged.  Covers
    are re-expressed in terms of original edges: each reduced edge is the
    intersection of some original edge with the surviving vertices, and we map
    it to an original edge containing it.
    """
    if original.edges == reduced.edges and original.vertices == reduced.vertices:
        return ghd
    # Map reduced edge -> an original edge containing it.
    edge_image = {}
    for reduced_edge in reduced.edges:
        host = next(
            (e for e in sorted(original.edges, key=lambda e: (len(e), sorted(map(repr, e))))
             if reduced_edge <= e),
            None,
        )
        if host is None:  # pragma: no cover - reduction only shrinks edges
            raise RuntimeError("reduced edge has no original superedge")
        edge_image[reduced_edge] = host
    # Vertices present in the original but not the reduced hypergraph, grouped
    # by a surviving representative with the same vertex type (if any).
    twins: dict = {}
    for vertex in original.vertices - reduced.vertices:
        if original.degree(vertex) == 0:
            continue
        vertex_type = original.incident_edges(vertex)
        representative = next(
            (w for w in reduced.vertices if original.incident_edges(w) == vertex_type),
            None,
        )
        twins.setdefault(representative, []).append(vertex)

    new_bags = {}
    new_covers = {}
    for node, bag in ghd.bags.items():
        extra = set()
        for representative, vertices in twins.items():
            if representative is not None and representative in bag:
                extra.update(vertices)
        new_bags[node] = frozenset(bag) | frozenset(extra)
        new_covers[node] = frozenset(edge_image[e] for e in ghd.covers[node])
    # Vertices whose representative is None (their type vanished entirely,
    # e.g. all incident edges collapsed) are appended to an arbitrary bag that
    # covers them, or ignored if isolated.
    orphan_nodes = list(new_bags)
    for representative, vertices in twins.items():
        if representative is not None:
            continue
        for vertex in vertices:
            for node in orphan_nodes:
                union = set()
                for edge in new_covers[node]:
                    union.update(edge)
                if vertex in union:
                    new_bags[node] = new_bags[node] | {vertex}
                    break
    decomposition = TreeDecomposition(new_bags, [tuple(e) for e in ghd.decomposition.tree_edges])
    return GeneralizedHypertreeDecomposition(decomposition, new_covers)


def _trivial(hypergraph: Hypergraph) -> GeneralizedHypertreeDecomposition:
    active = frozenset(v for v in hypergraph.vertices if hypergraph.degree(v) > 0)
    decomposition = TreeDecomposition({0: active}, [])
    return GeneralizedHypertreeDecomposition(decomposition, {0: hypergraph.edges})


def ghw_upper_bound(hypergraph: Hypergraph) -> GHWResult:
    """The best certified ghw upper bound over the available constructions.

    Candidates: the width-1 join tree (acyclic case), bag covers of the primal
    tree decomposition, and the dual-treewidth construction of Lemma 4.6.  The
    returned result carries a validated GHD.
    """
    if not hypergraph.edges or hypergraph.edges == {frozenset()}:
        return GHWResult(0, 0, None)
    join_tree = join_tree_decomposition(hypergraph)
    if join_tree is not None:
        return GHWResult(1, 1, join_tree)
    candidates: list[GeneralizedHypertreeDecomposition] = []
    primal_td = treewidth(hypergraph).decomposition
    candidates.append(ghd_from_tree_decomposition(hypergraph, primal_td))
    candidates.append(ghd_via_dual_treewidth(hypergraph))
    valid = [c for c in candidates if c.is_valid_for(hypergraph)]
    if not valid:  # pragma: no cover - at least the primal-cover GHD is valid
        valid = [_trivial(hypergraph)]
    best = min(valid, key=lambda ghd: ghd.width())
    lower = 2 if not is_alpha_acyclic(hypergraph) else 1
    return GHWResult(lower, best.width(), best)


# ----------------------------------------------------------------------
# Lower bounds
# ----------------------------------------------------------------------
def ghw_lower_bound(hypergraph: Hypergraph, separator_budget: int = 4) -> int:
    """A certified lower bound on ghw.

    Combines acyclicity (ghw >= 2 for non-acyclic hypergraphs) with the
    balanced edge separator bound; ``separator_budget`` caps the exhaustive
    separator search (higher budgets certify higher bounds but cost
    ``O(|E|^budget)``).
    """
    if not hypergraph.edges:
        return 0
    if is_alpha_acyclic(hypergraph):
        return 1
    bound = 2
    budget = min(separator_budget, hypergraph.num_edges)
    if budget >= 1:
        bound = max(bound, separator_ghw_lower_bound(hypergraph, max_edges=budget))
    return bound


# ----------------------------------------------------------------------
# Combined
# ----------------------------------------------------------------------
def ghw(hypergraph: Hypergraph, separator_budget: int = 4) -> GHWResult:
    """Certified ghw bounds; exact when lower and upper meet.

    For acyclic hypergraphs and for the structured families used in the tests
    (hyper-cycles, small jigsaws via a sufficient separator budget) the bounds
    coincide and :attr:`GHWResult.value` is available.
    """
    upper = ghw_upper_bound(hypergraph)
    if upper.upper <= 1:
        return upper
    lower = ghw_lower_bound(hypergraph, separator_budget=min(separator_budget, upper.upper - 1))
    lower = min(max(lower, upper.lower), upper.upper)
    return GHWResult(lower, upper.upper, upper.decomposition)
