"""Treewidth: elimination-order heuristics, lower bounds, and exact search.

Treewidth enters the paper twice: as the width parameter of Grohe's bounded
arity characterisation (Proposition 2.1), and as the width of the *dual*
hypergraph, which upper-bounds ghw via Lemma 4.6 and lower-bounds it (up to
the Excluded Grid machinery) via grid minors.

Treewidth of a hypergraph equals the treewidth of its primal graph, so all
algorithms here operate on an adjacency structure derived from the primal
graph.  Heuristics (min-fill, min-degree) give upper bounds with witnessing
decompositions; degeneracy and minor-min-degree give lower bounds; a
memoised branch-and-bound over elimination orderings gives exact values for
small graphs (up to roughly 20 vertices).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hypergraphs.duality import primal_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.widths.tree_decomposition import TreeDecomposition


@dataclass
class TreewidthResult:
    """Result of a treewidth computation.

    ``lower <= tw <= upper`` always holds; ``exact`` is True when the two
    bounds coincide.  ``decomposition`` witnesses the upper bound.
    """

    lower: int
    upper: int
    decomposition: TreeDecomposition

    @property
    def exact(self) -> bool:
        return self.lower == self.upper

    @property
    def value(self) -> int:
        """The exact treewidth; raises if only bounds are known."""
        if not self.exact:
            raise ValueError(f"treewidth only bounded in [{self.lower}, {self.upper}]")
        return self.upper


# ----------------------------------------------------------------------
# Adjacency helpers
# ----------------------------------------------------------------------
def _adjacency(hypergraph: Hypergraph) -> dict:
    graph = primal_graph(hypergraph) if not hypergraph.is_graph() else hypergraph
    adjacency: dict = {v: set() for v in graph.vertices}
    for edge in graph.edges:
        members = list(edge)
        if len(members) == 2:
            a, b = members
            adjacency[a].add(b)
            adjacency[b].add(a)
    return adjacency


def _copy_adjacency(adjacency: dict) -> dict:
    return {v: set(neighbours) for v, neighbours in adjacency.items()}


def _eliminate(adjacency: dict, vertex) -> None:
    neighbours = adjacency[vertex]
    for u in neighbours:
        adjacency[u].discard(vertex)
    neighbour_list = list(neighbours)
    for i, u in enumerate(neighbour_list):
        for w in neighbour_list[i + 1:]:
            adjacency[u].add(w)
            adjacency[w].add(u)
    del adjacency[vertex]


# ----------------------------------------------------------------------
# Upper bounds via elimination orderings
# ----------------------------------------------------------------------
def _elimination_order(adjacency: dict, strategy: str) -> list:
    working = _copy_adjacency(adjacency)
    order = []
    while working:
        if strategy == "min_degree":
            vertex = min(working, key=lambda v: (len(working[v]), repr(v)))
        elif strategy == "min_fill":
            def fill(v):
                neighbours = list(working[v])
                missing = 0
                for i, u in enumerate(neighbours):
                    for w in neighbours[i + 1:]:
                        if w not in working[u]:
                            missing += 1
                return missing

            vertex = min(working, key=lambda v: (fill(v), len(working[v]), repr(v)))
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        order.append(vertex)
        _eliminate(working, vertex)
    return order


def tree_decomposition_from_elimination_order(
    hypergraph: Hypergraph, order: list
) -> TreeDecomposition:
    """Build a tree decomposition from an elimination ordering.

    Bag of the i-th eliminated vertex = the vertex plus its neighbours at the
    time of elimination; the bag is attached to the bag of the earliest
    not-yet-eliminated bag member (standard construction).
    """
    adjacency = _adjacency(hypergraph)
    position = {v: i for i, v in enumerate(order)}
    working = _copy_adjacency(adjacency)
    bags: dict[int, frozenset] = {}
    for index, vertex in enumerate(order):
        bags[index] = frozenset(working[vertex]) | {vertex}
        _eliminate(working, vertex)
    edges = []
    for index, vertex in enumerate(order):
        later = [v for v in bags[index] if v != vertex and position[v] > index]
        if later:
            parent_vertex = min(later, key=lambda v: position[v])
            edges.append((index, position[parent_vertex]))
    # Connect any remaining forest components (valid because the extra tree
    # edges do not affect coverage, and occurrences stay connected since the
    # joined components share no vertices).
    decomposition = TreeDecomposition(bags, edges)
    _connect_components(decomposition)
    return decomposition


def _connect_components(decomposition: TreeDecomposition) -> None:
    nodes = decomposition.nodes
    if not nodes:
        return
    seen: set = set()
    roots = []
    for node in nodes:
        if node in seen:
            continue
        roots.append(node)
        frontier = [node]
        seen.add(node)
        while frontier:
            current = frontier.pop()
            for other in decomposition.neighbours(current):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
    for first, second in zip(roots, roots[1:]):
        decomposition.tree_edges.add(frozenset({first, second}))


def treewidth_upper_bound(hypergraph: Hypergraph) -> TreewidthResult:
    """Best upper bound over the min-fill and min-degree heuristics."""
    adjacency = _adjacency(hypergraph)
    if not adjacency:
        return TreewidthResult(0, 0, TreeDecomposition({}, []))
    best = None
    for strategy in ("min_fill", "min_degree"):
        order = _elimination_order(adjacency, strategy)
        decomposition = tree_decomposition_from_elimination_order(hypergraph, order)
        width = decomposition.width()
        if best is None or width < best[0]:
            best = (width, decomposition)
    lower = treewidth_lower_bound(hypergraph)
    return TreewidthResult(lower, best[0], best[1])


# ----------------------------------------------------------------------
# Lower bounds
# ----------------------------------------------------------------------
def treewidth_lower_bound(hypergraph: Hypergraph) -> int:
    """Degeneracy (maximum over subgraphs of the minimum degree).

    The degeneracy of a graph is a classical lower bound on its treewidth.
    """
    adjacency = _adjacency(hypergraph)
    if not adjacency:
        return 0
    working = _copy_adjacency(adjacency)
    best = 0
    while working:
        vertex = min(working, key=lambda v: (len(working[v]), repr(v)))
        best = max(best, len(working[vertex]))
        for u in working[vertex]:
            working[u].discard(vertex)
        del working[vertex]
    return best


# ----------------------------------------------------------------------
# Exact treewidth for small graphs
# ----------------------------------------------------------------------
def treewidth_exact(hypergraph: Hypergraph, max_vertices: int = 20) -> TreewidthResult:
    """Exact treewidth via memoised dynamic programming over elimination
    orderings (Bodlaender et al. style, O(2^n poly(n))).

    The search is exponential in the number of vertices; instances larger than
    ``max_vertices`` raise ``ValueError`` (use :func:`treewidth` for the
    bounds-only behaviour on larger inputs).
    """
    adjacency = _adjacency(hypergraph)
    n = len(adjacency)
    if n > max_vertices:
        raise ValueError(
            f"exact treewidth limited to {max_vertices} vertices, got {n}"
        )
    heuristic = treewidth_upper_bound(hypergraph)
    if n == 0:
        return heuristic
    vertices = sorted(adjacency, key=repr)
    index_of = {v: i for i, v in enumerate(vertices)}
    neighbour_bits = [0] * n
    for v, neighbours in adjacency.items():
        for u in neighbours:
            neighbour_bits[index_of[v]] |= 1 << index_of[u]
    full_mask = (1 << n) - 1

    @lru_cache(maxsize=None)
    def degree_in(remaining: int, vertex: int) -> int:
        # Elimination degree of `vertex` when the complement of `remaining`
        # has already been eliminated: the number of remaining vertices
        # reachable from `vertex` via paths through eliminated vertices.
        seen = 1 << vertex
        frontier = [vertex]
        reach = 0
        while frontier:
            current = frontier.pop()
            unexplored = neighbour_bits[current] & ~seen
            while unexplored:
                bit = unexplored & -unexplored
                unexplored &= unexplored - 1
                seen |= bit
                if remaining & bit:
                    reach |= bit
                else:
                    frontier.append(bit.bit_length() - 1)
        return bin(reach).count("1")

    @lru_cache(maxsize=None)
    def search(remaining: int) -> int:
        # Minimum over elimination orders of `remaining` (with the complement
        # already eliminated) of the maximum elimination degree.
        if remaining == 0:
            return 0
        count = bin(remaining).count("1")
        if count == 1:
            vertex = remaining.bit_length() - 1
            return degree_in(remaining, vertex)
        best = count - 1 + bin(full_mask & ~remaining).count("1")  # safe upper bound
        candidates = sorted(
            (v for v in range(n) if remaining & (1 << v)),
            key=lambda v: degree_in(remaining, v),
        )
        for v in candidates:
            d = degree_in(remaining, v)
            if d >= best:
                break  # candidates sorted by degree: no later one can improve
            rest = search(remaining & ~(1 << v))
            best = min(best, max(d, rest))
        return best

    exact_width = min(search(full_mask), heuristic.upper)
    decomposition = heuristic.decomposition
    if exact_width < heuristic.upper:
        # Recover an ordering achieving the exact width greedily from the DP.
        order = []
        remaining = full_mask
        while remaining:
            for v in sorted(
                (v for v in range(n) if remaining & (1 << v)),
                key=lambda v: degree_in(remaining, v),
            ):
                d = degree_in(remaining, v)
                rest = search(remaining & ~(1 << v))
                if max(d, rest) <= exact_width:
                    order.append(vertices[v])
                    remaining &= ~(1 << v)
                    break
            else:  # pragma: no cover - defensive
                order.extend(vertices[v] for v in range(n) if remaining & (1 << v))
                remaining = 0
        decomposition = tree_decomposition_from_elimination_order(hypergraph, order)
    return TreewidthResult(exact_width, exact_width, decomposition)


def treewidth(hypergraph: Hypergraph, exact_threshold: int = 14) -> TreewidthResult:
    """Treewidth with the best effort available for the instance size.

    For hypergraphs whose primal graph has at most ``exact_threshold``
    vertices the exact algorithm is used; otherwise heuristic upper and
    degeneracy lower bounds are reported.
    """
    adjacency = _adjacency(hypergraph)
    if len(adjacency) <= exact_threshold:
        return treewidth_exact(hypergraph, max_vertices=exact_threshold)
    return treewidth_upper_bound(hypergraph)
