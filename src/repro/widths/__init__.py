"""Width parameters: tree decompositions, treewidth, edge covers, GHDs, ghw, fhw.

The paper's characterisation is stated in terms of generalised hypertree width
(ghw); its proofs route through treewidth of the dual (Lemma 4.6), balanced
edge separators (the jigsaw lower bound of Section 4.2), and fractional edge
covers (the fhw/ghw equivalence under bounded degree).  This subpackage
implements all of these as certified bounds: upper bounds always come with a
witnessing decomposition and lower bounds with a combinatorial certificate.
"""

from repro.widths.tree_decomposition import TreeDecomposition
from repro.widths.treewidth import (
    TreewidthResult,
    treewidth,
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
    tree_decomposition_from_elimination_order,
)
from repro.widths.edge_cover import (
    fractional_edge_cover_number,
    greedy_edge_cover,
    integral_edge_cover,
    integral_edge_cover_number,
)
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.ghw import (
    GHWResult,
    ghd_from_tree_decomposition,
    ghd_via_dual_treewidth,
    ghw,
    ghw_lower_bound,
    ghw_upper_bound,
)
from repro.widths.fhw import fhw_of_decomposition, fhw_upper_bound
from repro.widths.separators import (
    balanced_edge_separator,
    minimum_balanced_separator_size,
    separator_components,
)
from repro.widths.acyclicity import join_tree_decomposition

__all__ = [
    "TreeDecomposition",
    "TreewidthResult",
    "treewidth",
    "treewidth_exact",
    "treewidth_lower_bound",
    "treewidth_upper_bound",
    "tree_decomposition_from_elimination_order",
    "fractional_edge_cover_number",
    "greedy_edge_cover",
    "integral_edge_cover",
    "integral_edge_cover_number",
    "GeneralizedHypertreeDecomposition",
    "GHWResult",
    "ghd_from_tree_decomposition",
    "ghd_via_dual_treewidth",
    "ghw",
    "ghw_lower_bound",
    "ghw_upper_bound",
    "fhw_of_decomposition",
    "fhw_upper_bound",
    "balanced_edge_separator",
    "minimum_balanced_separator_size",
    "separator_components",
    "join_tree_decomposition",
]
