"""Fractional hypertree width (fhw) bounds.

fhw is the ``rho*``-width: the minimum over tree decompositions of the largest
*fractional* edge cover number of a bag.  It always satisfies
``fhw(H) <= ghw(H)``, and for classes of bounded degree the two parameters are
bounded in terms of each other (Gottlob, Lanzinger, Pichler, Razgon 2021) —
which is why Theorem 4.1 can be stated equivalently with either parameter.

This module evaluates the fractional width of concrete decompositions and
produces fhw upper bounds by reusing the GHD constructions of
:mod:`repro.widths.ghw` with LP-based bag covers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.properties import is_alpha_acyclic
from repro.widths.edge_cover import fractional_edge_cover_number
from repro.widths.ghw import ghw_upper_bound
from repro.widths.tree_decomposition import TreeDecomposition


@dataclass
class FHWResult:
    """Certified fhw bounds (the lower bound is the trivial acyclicity bound)."""

    lower: float
    upper: float
    decomposition: TreeDecomposition | None

    @property
    def exact(self) -> bool:
        return abs(self.lower - self.upper) < 1e-9


def fhw_of_decomposition(hypergraph: Hypergraph, decomposition: TreeDecomposition) -> float:
    """The ``rho*``-width of a concrete tree decomposition."""
    if not decomposition.bags:
        return 0.0
    widths = []
    for bag in decomposition.bags.values():
        coverable = frozenset(v for v in bag if hypergraph.degree(v) > 0)
        widths.append(fractional_edge_cover_number(hypergraph, coverable))
    return max(widths)


def fhw_upper_bound(hypergraph: Hypergraph) -> FHWResult:
    """An fhw upper bound with a witnessing decomposition.

    Uses the best GHD found by :func:`repro.widths.ghw.ghw_upper_bound` and
    re-scores its bags fractionally; since every integral cover is a
    fractional cover, the fractional width can only be smaller.
    """
    if not hypergraph.edges:
        return FHWResult(0.0, 0.0, None)
    ghd = ghw_upper_bound(hypergraph)
    if ghd.decomposition is None:
        return FHWResult(0.0, 0.0, None)
    decomposition = ghd.decomposition.decomposition
    upper = fhw_of_decomposition(hypergraph, decomposition)
    lower = 1.0 if hypergraph.edges else 0.0
    if not is_alpha_acyclic(hypergraph):
        # fhw > 1 for non-acyclic hypergraphs, but the exact threshold depends
        # on the instance; report the safe bound.
        lower = 1.0
    return FHWResult(lower, upper, decomposition)


def fhw_ghw_gap(hypergraph: Hypergraph) -> tuple[float, int]:
    """Return ``(fhw upper bound, ghw upper bound)`` for the same decomposition
    family — used by the bounded-degree equivalence experiments."""
    ghd = ghw_upper_bound(hypergraph)
    if ghd.decomposition is None:
        return (0.0, 0)
    fractional = fhw_of_decomposition(hypergraph, ghd.decomposition.decomposition)
    return (fractional, ghd.upper)
