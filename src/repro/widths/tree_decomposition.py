"""Tree decompositions and f-widths (Section 2, following Adler).

A tree decomposition of a hypergraph ``H`` is a pair ``(T, (B_u)_{u in T})``
where ``T`` is a tree and the bags ``B_u`` are vertex subsets such that

1. every edge of ``H`` is contained in some bag, and
2. for every vertex ``v``, the set of nodes whose bag contains ``v`` induces a
   connected subtree of ``T``.

The *f-width* of a decomposition, for ``f`` mapping vertex sets to reals, is
the maximum of ``f(B_u)``; treewidth is the ``(|B|-1)``-width, generalised
hypertree width the ``rho``-width for the integral edge cover number ``rho``.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping

from repro.hypergraphs.hypergraph import Hypergraph

Node = Hashable


class TreeDecomposition:
    """A tree decomposition with explicit tree structure and bags.

    Parameters
    ----------
    bags:
        Mapping from node identifiers to iterables of vertices.
    tree_edges:
        Iterable of node pairs forming the tree.  For a single node the edge
        set is empty.  The node set of the tree is exactly ``bags.keys()``.
    """

    def __init__(
        self,
        bags: Mapping[Node, Iterable],
        tree_edges: Iterable[tuple[Node, Node]] = (),
    ) -> None:
        self.bags: dict[Node, frozenset] = {u: frozenset(b) for u, b in bags.items()}
        self.tree_edges: set[frozenset] = set()
        for u, v in tree_edges:
            if u not in self.bags or v not in self.bags:
                raise ValueError(f"tree edge ({u!r}, {v!r}) mentions unknown node")
            if u == v:
                raise ValueError("tree edges must join distinct nodes")
            self.tree_edges.add(frozenset({u, v}))

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return sorted(self.bags, key=repr)

    def neighbours(self, node: Node) -> list[Node]:
        result = []
        for edge in self.tree_edges:
            if node in edge:
                (other,) = edge - {node}
                result.append(other)
        return sorted(result, key=repr)

    def all_vertices(self) -> frozenset:
        covered: set = set()
        for bag in self.bags.values():
            covered.update(bag)
        return frozenset(covered)

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def is_tree(self) -> bool:
        """The underlying structure must be a tree: connected and acyclic."""
        nodes = list(self.bags)
        if not nodes:
            return True
        if len(self.tree_edges) != len(nodes) - 1:
            return False
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            current = frontier.pop()
            for other in self.neighbours(current):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(nodes)

    def covers_edges(self, hypergraph: Hypergraph) -> bool:
        """Condition (1): every hyperedge is contained in some bag."""
        bags = list(self.bags.values())
        return all(any(edge <= bag for bag in bags) for edge in hypergraph.edges)

    def has_connected_occurrences(self, hypergraph: Hypergraph | None = None) -> bool:
        """Condition (2): occurrences of each vertex induce a connected subtree."""
        vertices = self.all_vertices() if hypergraph is None else hypergraph.vertices
        for vertex in vertices:
            occurrences = [u for u, bag in self.bags.items() if vertex in bag]
            if not occurrences:
                if hypergraph is not None and hypergraph.degree(vertex) > 0:
                    return False
                continue
            seen = {occurrences[0]}
            frontier = [occurrences[0]]
            occurrence_set = set(occurrences)
            while frontier:
                current = frontier.pop()
                for other in self.neighbours(current):
                    if other in occurrence_set and other not in seen:
                        seen.add(other)
                        frontier.append(other)
            if len(seen) != len(occurrences):
                return False
        return True

    def is_valid_for(self, hypergraph: Hypergraph) -> bool:
        """Full validity check against a hypergraph."""
        if not self.is_tree():
            return False
        if not all(bag <= hypergraph.vertices for bag in self.bags.values()):
            return False
        if not self.covers_edges(hypergraph):
            return False
        return self.has_connected_occurrences(hypergraph)

    # ------------------------------------------------------------------
    # Widths
    # ------------------------------------------------------------------
    def f_width(self, f: Callable[[frozenset], float]) -> float:
        """``sup { f(B_u) | u in T }``; 0 for the empty decomposition."""
        if not self.bags:
            return 0
        return max(f(bag) for bag in self.bags.values())

    def width(self) -> int:
        """Treewidth-style width: max bag size minus one."""
        if not self.bags:
            return 0
        return int(self.f_width(lambda bag: len(bag) - 1))

    def __repr__(self) -> str:
        return f"TreeDecomposition(nodes={len(self.bags)}, width={self.width()})"


def single_bag_decomposition(hypergraph: Hypergraph) -> TreeDecomposition:
    """The trivial decomposition with one bag containing every vertex."""
    return TreeDecomposition({0: hypergraph.vertices}, [])
