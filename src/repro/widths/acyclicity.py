"""Join trees for alpha-acyclic hypergraphs as width-1 GHDs.

Alpha-acyclicity is the ghw = 1 case: a hypergraph is alpha-acyclic iff it has
a *join tree*, a tree whose nodes are the hyperedges and in which, for every
vertex, the edges containing it form a connected subtree.  The join tree is
both the base case of the width hierarchy and the structure on which the
Yannakakis algorithm (and therefore the Proposition 2.2 / 4.14 upper bounds)
operates.
"""

from __future__ import annotations

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.properties import gyo_reduction
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.tree_decomposition import TreeDecomposition


def join_tree_decomposition(hypergraph: Hypergraph) -> GeneralizedHypertreeDecomposition | None:
    """A width-1 GHD (join tree) for an alpha-acyclic hypergraph, else None.

    Nodes are indexed by the hyperedges themselves; every bag equals its edge
    and is covered by exactly that edge, so the width is 1.
    """
    result = gyo_reduction(hypergraph)
    if not result.acyclic:
        return None
    edges = [e for e in hypergraph.edges if e]
    if not edges:
        return None
    bags = {edge: edge for edge in edges}
    tree_edges = []
    roots = []
    for edge in result.elimination_order:
        parent = result.parent.get(edge)
        if parent is None:
            roots.append(edge)
        else:
            tree_edges.append((edge, parent))
    # The GYO forest may have several roots (disconnected hypergraph); chain
    # them so the decomposition is a single tree.
    for first, second in zip(roots, roots[1:]):
        tree_edges.append((first, second))
    decomposition = TreeDecomposition(bags, tree_edges)
    covers = {edge: [edge] for edge in edges}
    return GeneralizedHypertreeDecomposition(decomposition, covers)
