"""Integral and fractional edge covers (Section 2).

A fractional edge cover of a vertex set ``V'`` assigns weights in ``[0, 1]``
to the edges so that every vertex of ``V'`` receives total weight at least 1
from its incident edges; its weight is the sum of all edge weights.  The
integral edge cover number ``rho`` (weights in {0, 1}) defines generalised
hypertree width as the ``rho``-width; the fractional edge cover number
``rho*`` defines fractional hypertree width.

The integral problem is set cover, solved exactly by branch and bound with a
greedy warm start; the fractional problem is a small linear program solved
with :func:`scipy.optimize.linprog`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy.optimize import linprog

from repro.hypergraphs.hypergraph import Hypergraph


class UncoverableError(ValueError):
    """Raised when some vertex of the target set lies in no edge at all."""


def _relevant_edges(hypergraph: Hypergraph, target: frozenset) -> list[frozenset]:
    """Edges restricted to their intersection with the target, deduplicated and
    with dominated (subset) intersections removed; returns the original edges
    paired implicitly by keeping full edges whose intersections are maximal."""
    intersections: dict[frozenset, frozenset] = {}
    for edge in hypergraph.edges:
        overlap = edge & target
        if not overlap:
            continue
        previous = intersections.get(overlap)
        if previous is None:
            intersections[overlap] = edge
    # Drop intersections strictly contained in another intersection.
    keys = sorted(intersections, key=len, reverse=True)
    kept: list[frozenset] = []
    kept_overlaps: list[frozenset] = []
    for overlap in keys:
        if any(overlap < other for other in kept_overlaps):
            continue
        kept_overlaps.append(overlap)
        kept.append(intersections[overlap])
    return kept


def greedy_edge_cover(hypergraph: Hypergraph, vertices: Iterable) -> list[frozenset]:
    """A greedy (not necessarily minimum) integral edge cover of ``vertices``."""
    target = frozenset(vertices)
    _check_coverable(hypergraph, target)
    uncovered = set(target)
    cover: list[frozenset] = []
    edges = list(hypergraph.edges)
    while uncovered:
        best = max(edges, key=lambda e: (len(e & uncovered), -len(e), sorted(map(repr, e))))
        gain = best & uncovered
        if not gain:  # pragma: no cover - guarded by _check_coverable
            raise UncoverableError(f"vertices {uncovered!r} cannot be covered")
        cover.append(best)
        uncovered -= gain
    return cover


def integral_edge_cover(hypergraph: Hypergraph, vertices: Iterable) -> list[frozenset]:
    """A minimum integral edge cover of ``vertices`` (list of edges).

    Exact branch and bound: the greedy cover provides the initial upper bound,
    and a simple "disjoint uncovered vertices" bound prunes the search.
    """
    target = frozenset(vertices)
    if not target:
        return []
    _check_coverable(hypergraph, target)
    edges = _relevant_edges(hypergraph, target)
    # Order edges by how much of the target they cover, largest first.
    edges.sort(key=lambda e: (-len(e & target), sorted(map(repr, e))))
    best_cover = greedy_edge_cover(hypergraph, target)
    best_size = len(best_cover)

    vertex_order = sorted(target, key=lambda v: len([e for e in edges if v in e]))

    def lower_bound(uncovered: frozenset) -> int:
        if not uncovered:
            return 0
        largest = max(len(e & uncovered) for e in edges if e & uncovered)
        return -(-len(uncovered) // largest)  # ceil division

    def branch(uncovered: frozenset, chosen: list[frozenset]) -> None:
        nonlocal best_cover, best_size
        if not uncovered:
            if len(chosen) < best_size:
                best_cover = list(chosen)
                best_size = len(chosen)
            return
        if len(chosen) + lower_bound(uncovered) >= best_size:
            return
        pivot = next(v for v in vertex_order if v in uncovered)
        for edge in edges:
            if pivot not in edge:
                continue
            branch(uncovered - edge, chosen + [edge])

    branch(target, [])
    return best_cover


def integral_edge_cover_number(hypergraph: Hypergraph, vertices: Iterable) -> int:
    """``rho(vertices)``: the size of a minimum integral edge cover."""
    return len(integral_edge_cover(hypergraph, vertices))


def fractional_edge_cover_number(hypergraph: Hypergraph, vertices: Iterable) -> float:
    """``rho*(vertices)``: the minimum weight of a fractional edge cover.

    Solved as a linear program: minimise ``sum_e gamma_e`` subject to
    ``sum_{e incident to v} gamma_e >= 1`` for every target vertex and
    ``0 <= gamma_e <= 1``.
    """
    target = frozenset(vertices)
    if not target:
        return 0.0
    _check_coverable(hypergraph, target)
    edges = sorted(hypergraph.edges, key=lambda e: sorted(map(repr, e)))
    target_list = sorted(target, key=repr)
    # Constraint matrix for A_ub x <= b_ub with the >=1 constraints negated.
    matrix = np.zeros((len(target_list), len(edges)))
    for row, vertex in enumerate(target_list):
        for col, edge in enumerate(edges):
            if vertex in edge:
                matrix[row, col] = -1.0
    result = linprog(
        c=np.ones(len(edges)),
        A_ub=matrix,
        b_ub=-np.ones(len(target_list)),
        bounds=[(0.0, 1.0)] * len(edges),
        method="highs",
    )
    if not result.success:  # pragma: no cover - linprog failure is unexpected here
        raise RuntimeError(f"fractional edge cover LP failed: {result.message}")
    return float(result.fun)


def _check_coverable(hypergraph: Hypergraph, target: frozenset) -> None:
    unknown = target - hypergraph.vertices
    if unknown:
        raise KeyError(f"vertices {sorted(map(repr, unknown))} not in hypergraph")
    for vertex in target:
        if not hypergraph.incident_edges(vertex):
            raise UncoverableError(f"vertex {vertex!r} has degree 0 and cannot be covered")
