"""Generalised hypertree decompositions (GHDs).

A GHD is a tree decomposition together with a labelling ``lambda_u`` assigning
each node a set of hyperedges that covers its bag; its width is the maximum
number of edges used at any node.  The generalised hypertree width ghw(H) is
the minimum width over all GHDs, equivalently the ``rho``-width over tree
decompositions (Section 2).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.hypergraphs.hypergraph import Hypergraph
from repro.widths.tree_decomposition import TreeDecomposition

Node = Hashable


class GeneralizedHypertreeDecomposition:
    """A GHD: tree decomposition plus per-node edge covers.

    Parameters
    ----------
    decomposition:
        The underlying tree decomposition.
    covers:
        Mapping from tree nodes to iterables of hyperedges (frozensets).  The
        union of a node's cover must contain its bag.
    """

    def __init__(
        self,
        decomposition: TreeDecomposition,
        covers: Mapping[Node, Iterable[frozenset]],
    ) -> None:
        self.decomposition = decomposition
        self.covers: dict[Node, frozenset] = {
            node: frozenset(frozenset(edge) for edge in edges)
            for node, edges in covers.items()
        }
        missing = set(decomposition.bags) - set(self.covers)
        if missing:
            raise ValueError(f"nodes {sorted(map(repr, missing))} have no edge cover")

    # ------------------------------------------------------------------
    @property
    def bags(self) -> dict[Node, frozenset]:
        return self.decomposition.bags

    def width(self) -> int:
        """The GHD width: the largest number of cover edges at any node."""
        if not self.covers:
            return 0
        return max(len(edges) for edges in self.covers.values())

    # ------------------------------------------------------------------
    def is_valid_for(self, hypergraph: Hypergraph) -> bool:
        """Check the tree decomposition conditions and bag coverage."""
        if not self.decomposition.is_valid_for(hypergraph):
            return False
        for node, bag in self.decomposition.bags.items():
            cover = self.covers.get(node, frozenset())
            if not cover <= hypergraph.edges:
                return False
            union: set = set()
            for edge in cover:
                union.update(edge)
            if not bag <= union:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"GeneralizedHypertreeDecomposition(nodes={len(self.bags)}, "
            f"width={self.width()})"
        )


def trivial_ghd(hypergraph: Hypergraph) -> GeneralizedHypertreeDecomposition:
    """The one-node GHD covering everything with all edges (width = |E|)."""
    decomposition = TreeDecomposition({0: hypergraph.vertices - hypergraph.isolated_vertices()}, [])
    return GeneralizedHypertreeDecomposition(decomposition, {0: hypergraph.edges})
