"""A small synchronous client for the query service (stdlib ``http.client``).

Used by the service tests, the load benchmark, and the example — and a
reasonable template for real callers.  One :class:`ServiceClient` holds one
keep-alive connection, so N concurrent clients means N instances on N
threads (``http.client`` connections are not thread-safe).
"""

from __future__ import annotations

import http.client
import json

from repro.service.codec import database_to_json, query_to_json


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict, headers: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.headers = {name.lower(): value for name, value in headers.items()}

    @property
    def retry_after_seconds(self) -> float | None:
        raw = self.headers.get("retry-after")
        return float(raw) if raw is not None else None


class ServiceClient:
    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # -- transport -------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict | None = None,
    ) -> dict:
        """One round trip; raises :class:`ServiceError` on non-2xx."""
        body = None
        headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # A dropped keep-alive connection is not an API error: reconnect
            # once and retry (requests here are idempotent reads).
            self.close()
            connection = self._connect()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status >= 300:
            raise ServiceError(
                response.status, data, dict(response.getheaders())
            )
        return data

    # -- payload assembly ------------------------------------------------
    @staticmethod
    def _payload(query=None, database=None, dataset=None, tenant=None, **options):
        payload = dict(options)
        if query is not None:
            payload["query"] = query_to_json(query)
        if database is not None:
            payload["database"] = database_to_json(database)
        if dataset is not None:
            payload["dataset"] = dataset
        if tenant is not None:
            payload["tenant"] = tenant
        return payload

    # -- API -------------------------------------------------------------
    def answer(self, query, database=None, dataset=None, tenant=None, **options):
        return self.request(
            "POST", "/answer",
            self._payload(query, database, dataset, tenant, **options),
        )

    def count(self, query, database=None, dataset=None, tenant=None, **options):
        return self.request(
            "POST", "/count",
            self._payload(query, database, dataset, tenant, **options),
        )

    def is_satisfiable(self, query, database=None, dataset=None, tenant=None,
                       **options):
        return self.request(
            "POST", "/is_satisfiable",
            self._payload(query, database, dataset, tenant, **options),
        )

    def batch(self, queries, database=None, dataset=None, tenant=None,
              task: str = "answer", **options):
        payload = self._payload(None, database, dataset, tenant, **options)
        payload["task"] = task
        payload["queries"] = [query_to_json(q) for q in queries]
        return self.request("POST", "/batch", payload)

    # -- write path & standing queries -----------------------------------
    def add_facts(self, dataset: str, facts: dict, tenant=None):
        """Append ``{"R": [[...], ...]}`` rows to a registered dataset."""
        payload = self._payload(None, None, dataset, tenant)
        payload["facts"] = {
            name: [list(row) for row in rows] for name, rows in facts.items()
        }
        return self.request("POST", "/facts", payload)

    def subscribe(self, query, dataset: str, tenant=None, threshold=None):
        """Register a standing query; the response's ``delta`` is the
        initial answer set, and its ``subscription`` id keys later polls."""
        payload = self._payload(query, None, dataset, tenant)
        if threshold is not None:
            payload["threshold"] = threshold
        return self.request("POST", "/subscriptions", payload)

    def poll(self, subscription_id: str, tenant=None):
        """The answers derived since the previous poll of a subscription."""
        return self.request(
            "GET",
            f"/subscriptions/{subscription_id}",
            headers={"X-Tenant": tenant} if tenant is not None else None,
        )

    def unsubscribe(self, subscription_id: str, tenant=None):
        return self.request(
            "DELETE",
            f"/subscriptions/{subscription_id}",
            headers={"X-Tenant": tenant} if tenant is not None else None,
        )

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")
