"""The query service front door: an asyncio HTTP/JSON API over EngineSession.

Topology (one request, left to right)::

    client ──HTTP──► connection loop ──► Router ──► admission control
                                                   (bounded queue, shed 503)
                 ◄── JSON response ◄── deadline guard ◄── engine executor
                                                        (thread pool; one
                                                   tenant-private session)

* **Front door** — stdlib asyncio streams speaking minimal HTTP/1.1
  (:mod:`repro.service.http`); the event loop only parses, routes, and
  serializes — every engine call runs on the executor thread pool so the
  loop keeps accepting connections while queries evaluate.
* **Admission** — :class:`~repro.service.admission.AdmissionController`:
  ``max_concurrent`` requests execute, ``max_queue`` wait, the rest get an
  immediate ``503`` with ``Retry-After``.
* **Tenancy** — :class:`~repro.service.tenancy.TenantSessions` resolves the
  request's tenant to its private :class:`~repro.engine.session
  .EngineSession` (cache isolation) and its own dataset namespace.
* **Deadlines** — :mod:`repro.service.deadlines`: on expiry the request's
  :class:`~repro.engine.runtime.CancellationToken` fires and the engine
  fan-out (shards / batch) cancels at the next task boundary; the admission
  slot is held until the engine call actually unwinds.
* **Metrics** — ``GET /stats`` returns the service counters plus every
  tenant session's engine counters (cache hit rates, runtime shipping
  ledger, sharding modes) as one JSON document.

Endpoints: ``POST /answer`` | ``/count`` | ``/is_satisfiable`` |
``/batch``, ``GET /stats`` | ``/healthz``; the write path adds
``POST /facts`` (append rows to a registered dataset — the versioned
storage layer propagates the delta to every resident cache) and standing
queries: ``POST /subscriptions`` registers a CQ over a dataset, each
``GET /subscriptions/{id}`` poll refreshes it incrementally
(:class:`~repro.engine.incremental.IncrementalView`) and returns only the
answers derived since the last poll, ``DELETE /subscriptions/{id}`` tears
it down.  Request payloads reference a registered dataset
(``{"dataset": "name"}``) or carry an inline database; bodyless requests
name their tenant via the ``X-Tenant`` header.  See
:mod:`repro.service.codec` for the wire format and
``docs/ARCHITECTURE.md`` for the topology discussion.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from repro.engine.runtime import CancellationToken, RunCancelled, runtime_for
from repro.engine.session import EngineSession
from repro.service.admission import AdmissionController, Overloaded
from repro.service.codec import (
    CodecError,
    database_from_json,
    facts_from_json,
    query_from_json,
    result_to_json,
    rows_to_json,
)
from repro.service.deadlines import DeadlineExceeded, deadline_seconds, guard
from repro.service.http import HttpError, Request, Response, Router, read_request
from repro.service.metrics import ServiceMetrics
from repro.service.subscriptions import SubscriptionRegistry, UnknownSubscription
from repro.service.tenancy import (
    DEFAULT_TENANT,
    DatasetRegistry,
    TenantSessions,
    UnknownDataset,
)

_TASK_METHODS = {
    "answer": ("answer", "answer_many"),
    "count": ("count", "count_many"),
    "is_satisfiable": ("is_satisfiable", "is_satisfiable_many"),
}


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    #: 0 = pick a free port (the bound port lands on ``QueryService.port``).
    port: int = 0
    #: Concurrent engine calls (= executor threads).
    max_concurrent: int = 8
    #: Requests allowed to wait for an executor slot before shedding.
    max_queue: int = 32
    retry_after_seconds: float = 1.0
    #: Service-wide default deadline; ``None`` = no deadline unless the
    #: request sets ``deadline_ms``.
    default_deadline_seconds: float | None = None
    max_tenants: int = 64
    max_body_bytes: int = 8 * 1024 * 1024
    max_batch_queries: int = 1024
    #: Session-default execution runtime for fan-out calls (``None`` =
    #: engine default, i.e. the shared thread runtime).
    default_runtime: str | None = None
    #: Enables the ``_sleep_ms`` request field (deterministic slow requests
    #: for tests and load harnesses).  Never enable in production.
    debug_hooks: bool = False


class QueryService:
    """The service: construct, :meth:`register_dataset`, then serve.

    Serving options: ``await start()`` inside an existing event loop (tests
    drive it this way through :func:`serve_in_thread`), or
    :meth:`run_forever` as a blocking main.
    """

    def __init__(self, config: ServiceConfig | None = None, session_factory=None):
        self.config = config or ServiceConfig()
        if session_factory is None:
            runtime = self.config.default_runtime
            session_factory = partial(EngineSession, runtime=runtime)
        self.sessions = TenantSessions(self.config.max_tenants, session_factory)
        self.datasets = DatasetRegistry()
        self.admission = AdmissionController(
            self.config.max_concurrent,
            self.config.max_queue,
            self.config.retry_after_seconds,
        )
        self.metrics = ServiceMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="repro-service",
        )
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None
        self._router = Router()
        self.subscriptions = SubscriptionRegistry()
        #: Serializes dataset appends (``POST /facts``): each request's rows
        #: land atomically with respect to other appends, and the versioned
        #: storage layer makes every append visible to later refreshes.
        self._append_lock = threading.Lock()
        self._router.add("GET", "/healthz", self._handle_healthz)
        self._router.add("GET", "/stats", self._handle_stats)
        self._router.add("POST", "/batch", self._handle_batch)
        self._router.add("POST", "/facts", self._handle_facts)
        self._router.add("POST", "/subscriptions", self._handle_subscribe)
        self._router.add("GET", "/subscriptions/{id}", self._handle_poll)
        self._router.add(
            "DELETE", "/subscriptions/{id}", self._handle_unsubscribe
        )
        for task in _TASK_METHODS:
            self._router.add("POST", f"/{task}", partial(self._handle_single, task))

    # -- datasets --------------------------------------------------------
    def register_dataset(self, name: str, database, tenant: str = DEFAULT_TENANT):
        """Make ``database`` queryable as ``{"dataset": name}`` for
        ``tenant``.  Served databases are append-only: ``POST /facts`` may
        grow them (never shrink), and the atom-view memo is enabled so
        repeated queries reuse resident views — extended in place from the
        delta log when appends land between calls."""
        database.enable_atom_cache()
        self.datasets.register(tenant, name, database)
        return self

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True, cancel_futures=True)

    def run_forever(self) -> None:  # pragma: no cover - interactive entry
        async def main():
            await self.start()
            print(f"repro query service on http://{self.config.host}:{self.port}")
            await asyncio.Event().wait()

        asyncio.run(main())

    # -- connection loop -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body_bytes)
                except HttpError as exc:
                    writer.write(
                        Response.error(exc.status, exc.message).encode(False)
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                started = time.perf_counter()
                try:
                    response = await self._router.dispatch(request)
                except HttpError as exc:
                    response = Response.error(exc.status, exc.message)
                except (UnknownDataset, UnknownSubscription) as exc:
                    # KeyError's str() wraps its message in quotes; args[0]
                    # is the clean text.
                    response = Response.error(404, exc.args[0])
                except CodecError as exc:
                    response = Response.error(400, str(exc))
                except Exception as exc:  # a handler bug must answer, not hang
                    response = Response.error(500, f"internal error: {exc!r}")
                self.metrics.record(
                    request.path, response.status, time.perf_counter() - started
                )
                keep_alive = not request.wants_close
                writer.write(response.encode(keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # -- endpoint handlers ----------------------------------------------
    async def _handle_healthz(self, request: Request) -> Response:
        return Response(200, {"status": "ok", "in_flight": self.admission.in_flight})

    async def _handle_stats(self, request: Request) -> Response:
        # Deliberately unthrottled: observability must survive saturation.
        return Response(
            200,
            {
                "service": self.metrics.snapshot(),
                "admission": self.admission.stats(),
                "tenant_pool": self.sessions.info(),
                "tenants": self.sessions.stats(),
                "datasets": self.datasets.by_tenant(),
                "subscriptions": self.subscriptions.stats(),
                "config": {
                    "max_concurrent": self.config.max_concurrent,
                    "max_queue": self.config.max_queue,
                    "default_deadline_seconds": self.config.default_deadline_seconds,
                    "default_runtime": self.config.default_runtime,
                },
            },
        )

    async def _handle_single(self, task: str, request: Request) -> Response:
        payload = self._payload(request)
        query = query_from_json(self._field(payload, "query"))
        session, database = self._context(payload)
        options = self._options(payload)
        method = getattr(session, _TASK_METHODS[task][0])
        call = partial(
            method,
            query,
            database,
            shards=options["shards"],
            shard_variable=options["shard_variable"],
            parallel=options["parallel"],
            runtime=options["runtime"],
            use_core=options["use_core"],
        )
        return await self._execute(payload, call, result_to_json)

    async def _handle_batch(self, request: Request) -> Response:
        payload = self._payload(request)
        task = payload.get("task", "answer")
        if task not in _TASK_METHODS:
            raise HttpError(
                400, f"batch task must be one of {sorted(_TASK_METHODS)}, got {task!r}"
            )
        queries_json = self._field(payload, "queries")
        if not isinstance(queries_json, list) or not queries_json:
            raise HttpError(400, "'queries' must be a non-empty list")
        if len(queries_json) > self.config.max_batch_queries:
            raise HttpError(
                400,
                f"batch of {len(queries_json)} exceeds "
                f"max_batch_queries={self.config.max_batch_queries}",
            )
        queries = [query_from_json(q) for q in queries_json]
        session, database = self._context(payload)
        options = self._options(payload)
        parallel = options["parallel"]
        if parallel is None:
            # Batches fan out by default; single queries default to the
            # engine's plain path.
            parallel = min(8, len(queries))
        method = getattr(session, _TASK_METHODS[task][1])
        call = partial(
            method,
            queries,
            database,
            parallel=parallel,
            runtime=options["runtime"],
            use_core=options["use_core"],
        )
        return await self._execute(
            payload,
            call,
            lambda results: {"results": [result_to_json(r) for r in results]},
        )

    # -- append path & standing queries ----------------------------------
    async def _handle_facts(self, request: Request) -> Response:
        """Append rows to a registered dataset (the service write path).

        The versioned storage layer makes the append observable everywhere
        downstream: resident atom views and columnar views extend in place,
        session partition caches route the delta rows to their shards, the
        process runtime ships only the delta to the owning workers, and
        standing subscriptions fold the rows in on their next poll.
        """
        payload = self._payload(request)
        tenant = self._tenant_of(payload, request)
        dataset = self._field(payload, "dataset")
        if not isinstance(dataset, str):
            raise HttpError(400, f"dataset must be a string, got {dataset!r}")
        facts = facts_from_json(self._field(payload, "facts"))
        database = self.datasets.get(tenant, dataset)
        appended: dict = {}
        with self._append_lock:
            for name, rows in facts.items():
                before = (
                    database.relation(name).version
                    if database.has_relation(name)
                    else 0
                )
                for row in rows:
                    try:
                        database.add_fact(name, row)
                    except ValueError as exc:  # arity mismatch with storage
                        raise HttpError(400, str(exc)) from None
                appended[name] = database.relation(name).version - before
            version = database.version
        return Response(
            200,
            {
                "dataset": dataset,
                "appended": appended,
                "added": sum(appended.values()),
                "version": version,
            },
        )

    async def _handle_subscribe(self, request: Request) -> Response:
        """Register a standing query; the response carries the initial
        answer set as the first delta (later polls return only growth)."""
        payload = self._payload(request)
        tenant = self._tenant_of(payload, request)
        dataset = self._field(payload, "dataset")
        if not isinstance(dataset, str):
            raise HttpError(400, f"dataset must be a string, got {dataset!r}")
        query = query_from_json(self._field(payload, "query"))
        threshold = payload.get("threshold")
        if threshold is not None and (
            not isinstance(threshold, (int, float))
            or isinstance(threshold, bool)
            or not 0.0 <= threshold <= 1.0
        ):
            raise HttpError(400, f"threshold must be in [0, 1], got {threshold!r}")
        session = self.sessions.get(tenant)
        database = self.datasets.get(tenant, dataset)
        view = session.incremental_view(query, database, threshold=threshold)
        subscription = self.subscriptions.register(tenant, dataset, query, view)
        return await self._execute(
            payload,
            lambda cancel=None: subscription.poll(),
            self._poll_to_json,
        )

    async def _handle_poll(self, request: Request) -> Response:
        """Refresh one subscription and return the undelivered answers."""
        tenant = self._tenant_of({}, request)
        subscription = self.subscriptions.get(tenant, request.params["id"])
        return await self._execute(
            {},
            lambda cancel=None: subscription.poll(),
            self._poll_to_json,
        )

    async def _handle_unsubscribe(self, request: Request) -> Response:
        tenant = self._tenant_of({}, request)
        subscription = self.subscriptions.remove(tenant, request.params["id"])
        return Response(
            200, {"removed": subscription.id, "polls": subscription.polls}
        )

    @staticmethod
    def _poll_to_json(record: dict) -> dict:
        return {
            "subscription": record["id"],
            "dataset": record["dataset"],
            "mode": record["mode"],
            "delta": rows_to_json(record["delta"]),
            "total": record["total"],
            "delta_rows": record["delta_rows"],
            "refresh_seconds": record["refresh_seconds"],
        }

    def _tenant_of(self, payload: dict, request: Request) -> str:
        """The request's tenant: the body field when present, else the
        ``X-Tenant`` header (the only channel bodyless GET/DELETE have)."""
        tenant = payload.get("tenant", request.headers.get("x-tenant", DEFAULT_TENANT))
        if not isinstance(tenant, str) or not tenant:
            raise HttpError(400, f"tenant must be a non-empty string, got {tenant!r}")
        return tenant

    # -- request plumbing ------------------------------------------------
    def _payload(self, request: Request) -> dict:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    @staticmethod
    def _field(payload: dict, name: str):
        try:
            return payload[name]
        except KeyError:
            raise HttpError(400, f"missing required field {name!r}") from None

    def _context(self, payload: dict):
        """The tenant's session and the request's database."""
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise HttpError(400, f"tenant must be a non-empty string, got {tenant!r}")
        session = self.sessions.get(tenant)
        inline = payload.get("database")
        dataset = payload.get("dataset")
        if (inline is None) == (dataset is None):
            raise HttpError(
                400, "provide exactly one of 'dataset' (registered name) or "
                "'database' (inline relations)"
            )
        if inline is not None:
            return session, database_from_json(inline)
        if not isinstance(dataset, str):
            raise HttpError(400, f"dataset must be a string, got {dataset!r}")
        return session, self.datasets.get(tenant, dataset)

    def _options(self, payload: dict) -> dict:
        shards = payload.get("shards", 1)
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise HttpError(400, f"shards must be a positive integer, got {shards!r}")
        parallel = payload.get("parallel")
        if parallel is not None and (
            not isinstance(parallel, int) or isinstance(parallel, bool) or parallel < 1
        ):
            raise HttpError(
                400, f"parallel must be a positive integer, got {parallel!r}"
            )
        shard_variable = payload.get("shard_variable")
        if shard_variable is not None and not isinstance(shard_variable, str):
            raise HttpError(400, "shard_variable must be a string")
        runtime = payload.get("runtime")
        if runtime is not None:
            if not isinstance(runtime, str):
                raise HttpError(400, "runtime must be a registered runtime name")
            try:
                runtime = runtime_for(runtime)
            except ValueError as exc:
                raise HttpError(400, str(exc)) from None
        use_core = payload.get("use_core", False)
        if not isinstance(use_core, bool):
            raise HttpError(400, "use_core must be a boolean")
        return {
            "shards": shards,
            "parallel": parallel,
            "shard_variable": shard_variable,
            "runtime": runtime,
            "use_core": use_core,
        }

    # -- execution under admission + deadline ----------------------------
    async def _execute(self, payload: dict, call, render) -> Response:
        """Admit, run ``call(cancel=token)`` on the engine executor, guard
        with the request deadline, render the result."""
        try:
            seconds = deadline_seconds(
                payload, self.config.default_deadline_seconds
            )
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        sleep_seconds = self._debug_sleep_seconds(payload)
        token = CancellationToken()

        def work():
            if sleep_seconds:
                _interruptible_sleep(sleep_seconds, token)
            return call(cancel=token)

        try:
            await self.admission.acquire()
        except Overloaded as exc:
            return Response.error(
                503,
                str(exc),
                headers={"Retry-After": f"{exc.retry_after_seconds:g}"},
            )
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, work)
        future.add_done_callback(self._settle_engine_future)
        try:
            result = await guard(future, seconds, token)
        except DeadlineExceeded:
            self.metrics.record_deadline_exceeded()
            return Response.error(
                504,
                f"deadline of {seconds * 1000.0:g}ms exceeded; "
                "in-flight work cancelled",
                deadline_ms=seconds * 1000.0,
            )
        except RunCancelled:
            self.metrics.record_cancelled()
            return Response.error(504, "request cancelled")
        except UnknownDataset as exc:
            return Response.error(404, exc.args[0])
        except (CodecError, ValueError, TypeError) as exc:
            return Response.error(400, str(exc))
        return Response(200, render(result))

    def _settle_engine_future(self, future) -> None:
        # Runs on the event loop thread once the engine call unwinds —
        # including after a deadline already answered 504: the admission
        # slot is only returned when the work actually stopped, and the
        # exception is retrieved so abandoned RunCancelled errors never
        # warn at gc.
        self.admission.release()
        if not future.cancelled():
            future.exception()

    def _debug_sleep_seconds(self, payload: dict) -> float:
        raw = payload.get("_sleep_ms")
        if raw is None:
            return 0.0
        if not self.config.debug_hooks:
            raise HttpError(400, "_sleep_ms requires debug_hooks=True")
        if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw < 0:
            raise HttpError(400, f"_sleep_ms must be a non-negative number, got {raw!r}")
        return float(raw) / 1000.0


def _interruptible_sleep(seconds: float, token: CancellationToken) -> None:
    deadline = time.monotonic() + seconds
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        token.raise_if_cancelled()
        time.sleep(min(0.005, remaining))


# ----------------------------------------------------------------------
# Threaded serving: the harness tests and load benchmarks drive the
# service from synchronous code.
# ----------------------------------------------------------------------
class ServiceThread:
    """A service running its own event loop on a daemon thread."""

    def __init__(self, service: QueryService) -> None:
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop).result(
            timeout=60
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    service: QueryService | None = None, **config_fields
) -> ServiceThread:
    """Start a service on a background thread and return the running
    handle (``.host`` / ``.port`` / ``.service``; ``.stop()`` or use as a
    context manager)."""
    if service is None:
        service = QueryService(ServiceConfig(**config_fields))
    return ServiceThread(service).start()
