"""The service wire format: JSON ⇄ engine objects.

The HTTP front door speaks plain JSON; this module is the single place
where requests become :class:`~repro.cq.query.ConjunctiveQuery` /
:class:`~repro.cq.database.Database` objects and results become response
payloads.  The format is deliberately minimal and explicit:

* a **term** is a variable when it is a JSON string (``"x"``) and a
  constant when wrapped (``{"const": 1}``) — never guessed from shape;
* a **query** is ``{"atoms": [{"relation": "R", "terms": [...]}, ...],
  "free": ["x", ...]}``; ``free`` omitted/null makes the query full, an
  empty list makes it Boolean (matching the library constructor);
* a **database** is ``{"R": [[1, 2], [2, 3]], ...}`` — relation name to
  rows, arity taken from the rows (which must agree);
* a **facts payload** (``POST /facts``) reuses the database shape —
  relation name to rows to append — and is validated by
  :func:`facts_from_json` before any row touches storage;
* a **result** ships the payload (``rows`` sorted for stable output /
  ``count`` / ``satisfiable``), the strategy that ran, and the timings.

Every malformed input raises :class:`CodecError`, which the HTTP layer maps
to a 400 — client errors must never surface as a 500.
"""

from __future__ import annotations

from repro.cq.database import Database, Relation
from repro.cq.query import Atom, Constant, ConjunctiveQuery
from repro.engine.executor import EvalResult, TASK_ANSWER


class CodecError(ValueError):
    """A request payload that does not parse into engine objects."""


def term_from_json(obj):
    if isinstance(obj, str):
        return obj
    if isinstance(obj, dict) and set(obj) == {"const"}:
        return Constant(_scalar(obj["const"], "constant"))
    raise CodecError(
        f"a term is a variable string or {{'const': value}}, got {obj!r}"
    )


def term_to_json(term):
    if isinstance(term, Constant):
        return {"const": term.value}
    return str(term)


def _scalar(value, what: str):
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise CodecError(f"{what} values must be JSON scalars, got {type(value).__name__}")


def query_from_json(obj) -> ConjunctiveQuery:
    if not isinstance(obj, dict):
        raise CodecError(f"a query is a JSON object, got {type(obj).__name__}")
    atoms_json = obj.get("atoms")
    if not isinstance(atoms_json, list) or not atoms_json:
        raise CodecError("a query needs a non-empty 'atoms' list")
    atoms = []
    for atom_json in atoms_json:
        if (
            not isinstance(atom_json, dict)
            or not isinstance(atom_json.get("relation"), str)
            or not isinstance(atom_json.get("terms"), list)
        ):
            raise CodecError(
                "each atom is {'relation': name, 'terms': [...]}, got "
                f"{atom_json!r}"
            )
        atoms.append(
            Atom(
                atom_json["relation"],
                [term_from_json(term) for term in atom_json["terms"]],
            )
        )
    free = obj.get("free")
    if free is not None:
        if not isinstance(free, list) or not all(isinstance(v, str) for v in free):
            raise CodecError("'free' must be a list of variable strings (or null)")
    try:
        return ConjunctiveQuery(atoms, free_variables=free)
    except ValueError as exc:  # e.g. free variable not occurring in the body
        raise CodecError(str(exc)) from None


def query_to_json(query: ConjunctiveQuery) -> dict:
    return {
        "atoms": [
            {
                "relation": atom.relation,
                "terms": [term_to_json(term) for term in atom.terms],
            }
            for atom in query.atoms
        ],
        "free": [str(v) for v in query.free_variables],
    }


def database_from_json(obj) -> Database:
    if not isinstance(obj, dict):
        raise CodecError(
            f"a database is a JSON object of relation -> rows, got {type(obj).__name__}"
        )
    database = Database()
    for name, rows in obj.items():
        if not isinstance(name, str) or not isinstance(rows, list):
            raise CodecError(f"relation {name!r} must map to a list of rows")
        tuples = []
        arity = None
        for row in rows:
            if not isinstance(row, list):
                raise CodecError(f"rows of {name!r} must be lists, got {row!r}")
            if arity is None:
                arity = len(row)
            elif len(row) != arity:
                raise CodecError(
                    f"relation {name!r} mixes arities {arity} and {len(row)}"
                )
            tuples.append(tuple(_scalar(value, f"relation {name!r}") for value in row))
        database.add_relation(Relation(name, arity if arity is not None else 0, tuples))
    return database


def facts_from_json(obj) -> dict:
    """``{"R": [[1, 2], ...], ...}`` → relation name to validated row
    tuples — the ``POST /facts`` append payload.  Arities must agree within
    each relation of the payload; agreement with the *stored* relation is
    the storage layer's check (the append endpoint maps its ``ValueError``
    to a 400)."""
    if not isinstance(obj, dict) or not obj:
        raise CodecError(
            "'facts' must be a non-empty JSON object of relation -> rows"
        )
    facts: dict = {}
    for name, rows in obj.items():
        if not isinstance(name, str) or not isinstance(rows, list) or not rows:
            raise CodecError(
                f"relation {name!r} must map to a non-empty list of rows"
            )
        arity = None
        tuples = []
        for row in rows:
            if not isinstance(row, list):
                raise CodecError(f"rows of {name!r} must be lists, got {row!r}")
            if arity is None:
                arity = len(row)
            elif len(row) != arity:
                raise CodecError(
                    f"relation {name!r} mixes arities {arity} and {len(row)}"
                )
            tuples.append(
                tuple(_scalar(value, f"relation {name!r}") for value in row)
            )
        facts[name] = tuples
    return facts


def database_to_json(database: Database) -> dict:
    return {
        name: sorted([list(row) for row in relation.tuples], key=repr)
        for name, relation in database.relations.items()
    }


def rows_to_json(rows) -> list:
    """Answer tuples as sorted lists (stable output across set iteration
    orders; ``repr`` keying tolerates mixed value types)."""
    return sorted((list(row) for row in rows), key=repr)


def result_to_json(result: EvalResult) -> dict:
    payload = {
        "task": result.task,
        "strategy": result.strategy,
        "timings": {
            key: result.timings.get(key, 0.0)
            for key in ("planning_seconds", "execution_seconds", "total_seconds")
        },
    }
    if result.task == TASK_ANSWER:
        payload["rows"] = rows_to_json(result.rows or ())
    else:
        payload["value"] = result.value
    if "dedup_of" in result.timings:
        payload["dedup_of"] = result.timings["dedup_of"]
    sharding = result.sharding
    if sharding is not None:
        payload["sharding"] = {
            "mode": sharding["mode"],
            "shards": sharding["shards"],
        }
    runtime = result.runtime
    if runtime is not None:
        payload["runtime"] = runtime.get("name")
    return payload
