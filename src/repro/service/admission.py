"""Admission control: a bounded queue in front of the engine executor.

The engine work of every request runs on a fixed-size thread pool; this
module decides whether a new request may *wait* for a slot at all.  The
policy is the classic bounded queue:

* at most ``max_concurrent`` requests execute engine work at once (the
  semaphore — matched to the executor's thread count, so an admitted
  request never queues again inside the executor);
* at most ``max_queue`` further requests wait for a slot;
* anything beyond that is **shed immediately** with
  :class:`Overloaded` — the HTTP layer turns it into a ``503`` with a
  ``Retry-After`` hint.  Shedding beats queueing without bound: a queue
  longer than the pool can drain within a deadline only adds latency to
  requests that will time out anyway, while a fast 503 lets a well-behaved
  client back off and retry elsewhere.

The controller is asyncio-native (acquire from the event loop only), but
:meth:`release` is thread-safe-by-construction *when called from the
loop* — the service releases from executor-future done callbacks, which
asyncio runs on the loop thread.
"""

from __future__ import annotations

import asyncio


class Overloaded(Exception):
    """The admission queue is full; the caller should retry later."""

    def __init__(self, retry_after_seconds: float, depth: int) -> None:
        super().__init__(
            f"admission queue full ({depth} waiting); retry in "
            f"{retry_after_seconds:g}s"
        )
        self.retry_after_seconds = retry_after_seconds
        self.depth = depth


class AdmissionController:
    def __init__(
        self,
        max_concurrent: int = 8,
        max_queue: int = 32,
        retry_after_seconds: float = 1.0,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.retry_after_seconds = retry_after_seconds
        self._semaphore = asyncio.Semaphore(max_concurrent)
        self._queued = 0
        self._in_flight = 0
        self.admitted = 0
        self.completed = 0
        self.shed = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queued(self) -> int:
        return self._queued

    async def acquire(self) -> None:
        """Take an execution slot, waiting in the bounded queue if needed.

        Raises :class:`Overloaded` without waiting when the queue is full.
        The shed check and the queued-counter bump happen without an
        ``await`` in between, so the bound is exact under the event loop's
        single-threaded execution.
        """
        if self._semaphore.locked() and self._queued >= self.max_queue:
            self.shed += 1
            raise Overloaded(self.retry_after_seconds, self._queued)
        self._queued += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._queued -= 1
        self._in_flight += 1
        self.admitted += 1

    def release(self) -> None:
        """Return a slot (call exactly once per successful acquire — the
        service does it from the engine future's done callback, so the slot
        is held until the engine work actually settled, deadline or not)."""
        self._in_flight -= 1
        self.completed += 1
        self._semaphore.release()

    def stats(self) -> dict:
        return {
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "in_flight": self._in_flight,
            "queued": self._queued,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
        }
