"""The query service front door: an HTTP/JSON API over the engine.

Quick start::

    from repro.service import QueryService, ServiceConfig, serve_in_thread

    service = QueryService(ServiceConfig(max_concurrent=4))
    service.register_dataset("movies", database)
    with serve_in_thread(service) as handle:
        client = ServiceClient(handle.host, handle.port)
        print(client.count(query, dataset="movies"))

See :mod:`repro.service.app` for the request-path topology and
``docs/ARCHITECTURE.md`` for how the service composes the engine's
sessions, runtimes, and sharding.
"""

from repro.service.admission import AdmissionController, Overloaded
from repro.service.app import (
    QueryService,
    ServiceConfig,
    ServiceThread,
    serve_in_thread,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.codec import (
    CodecError,
    database_from_json,
    database_to_json,
    facts_from_json,
    query_from_json,
    query_to_json,
    result_to_json,
)
from repro.service.deadlines import DeadlineExceeded, deadline_seconds
from repro.service.metrics import LatencyWindow, ServiceMetrics, percentile
from repro.service.subscriptions import (
    Subscription,
    SubscriptionRegistry,
    UnknownSubscription,
)
from repro.service.tenancy import (
    DEFAULT_TENANT,
    DatasetRegistry,
    TenantSessions,
    UnknownDataset,
)

__all__ = [
    "AdmissionController",
    "CodecError",
    "DEFAULT_TENANT",
    "DatasetRegistry",
    "DeadlineExceeded",
    "LatencyWindow",
    "Overloaded",
    "QueryService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceThread",
    "Subscription",
    "SubscriptionRegistry",
    "TenantSessions",
    "UnknownDataset",
    "UnknownSubscription",
    "database_from_json",
    "database_to_json",
    "deadline_seconds",
    "facts_from_json",
    "percentile",
    "query_from_json",
    "query_to_json",
    "result_to_json",
    "serve_in_thread",
]
