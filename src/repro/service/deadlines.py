"""Per-request deadlines that actually cancel engine work.

A deadline here is not just a response timeout: when it expires, the
request's :class:`~repro.engine.runtime.CancellationToken` is fired, which
the session threads through ``EngineSession.answer(..., cancel=token)``
into the runtime fan-out loops — queued shard/batch futures are cancelled,
running ones are drained, and the engine call unwinds with
:class:`~repro.engine.runtime.RunCancelled` instead of computing an answer
nobody is waiting for.

The service keeps the admission slot until that unwind completes (the
engine future's done callback releases it), so the concurrency bound stays
honest: a deadline turns a request into a *draining* request, not a free
slot plus orphaned background work.
"""

from __future__ import annotations

import asyncio


class DeadlineExceeded(Exception):
    """The request's deadline expired before the engine call finished."""

    def __init__(self, seconds: float) -> None:
        super().__init__(f"deadline of {seconds:g}s exceeded")
        self.seconds = seconds


def deadline_seconds(payload: dict, default_seconds: float | None) -> float | None:
    """The effective deadline for a request: its ``deadline_ms`` field, or
    the service default; ``None`` disables the deadline entirely."""
    raw = payload.get("deadline_ms")
    if raw is None:
        return default_seconds
    if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
        raise ValueError(f"deadline_ms must be a positive number, got {raw!r}")
    return float(raw) / 1000.0


async def guard(future, seconds: float | None, token):
    """Await ``future`` under a deadline.

    On expiry the token fires (the engine call begins unwinding on its
    executor thread) and :class:`DeadlineExceeded` is raised; the future
    itself is shielded, so it keeps running until the cancellation takes
    effect — its done callback, not this coroutine, owns the cleanup.
    """
    if seconds is None:
        return await future
    try:
        return await asyncio.wait_for(asyncio.shield(future), seconds)
    except (asyncio.TimeoutError, TimeoutError):
        token.cancel()
        raise DeadlineExceeded(seconds) from None
