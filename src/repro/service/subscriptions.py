"""Standing queries over the service's append path.

A **subscription** registers a conjunctive query against a registered
dataset and holds a tenant-private
:class:`~repro.engine.incremental.IncrementalView` open across requests.
Appends arrive through ``POST /facts``; each ``GET /subscriptions/{id}``
poll refreshes the view (semi-naive delta evaluation — cost scales with
the appended rows, not the dataset) and returns the answer tuples derived
since the previous poll, so a client can follow a growing dataset without
ever re-reading the full answer set.

Subscriptions are tenant-scoped exactly like datasets: an id only resolves
together with the tenant that created it, and a wrong tenant gets the same
:class:`UnknownSubscription` as a missing id — existence is never leaked
across tenants.  Delivery is per-subscription (one cursor): two clients
that each want every delta should register two subscriptions.
"""

from __future__ import annotations

import threading
import time


class UnknownSubscription(KeyError):
    def __init__(self, tenant: str, subscription_id: str) -> None:
        super().__init__(
            f"tenant {tenant!r} has no subscription {subscription_id!r}"
        )
        self.tenant = tenant
        self.subscription_id = subscription_id


class Subscription:
    """One standing query: an incremental view plus a delivery cursor."""

    def __init__(self, subscription_id, tenant, dataset, query, view) -> None:
        self.id = subscription_id
        self.tenant = tenant
        self.dataset = dataset
        self.query = query
        self.view = view
        self.polls = 0
        #: Answer tuples already handed to the client; the next poll's delta
        #: is everything the view holds beyond this set.  Kept as a set (not
        #: a count) so delivery stays exact even if a poll races an append.
        self._delivered: set = set()
        self._lock = threading.Lock()

    def poll(self) -> dict:
        """Refresh the view and return the undelivered answers.

        The record mirrors ``EvalResult.timings["incremental"]`` plus the
        delta itself: ``delta`` (newly derived answer tuples), ``total``
        (the full maintained answer count), ``mode``, ``delta_rows``
        (stored rows folded in by this refresh), and ``refresh_seconds``.
        """
        with self._lock:
            result = self.view.refresh()
            record = result.timings["incremental"]
            delta = self.view.rows - self._delivered
            self._delivered |= delta
            self.polls += 1
            return {
                "id": self.id,
                "dataset": self.dataset,
                "delta": delta,
                "total": len(self.view.rows),
                "mode": record["mode"],
                "delta_rows": record["delta_rows"],
                "refresh_seconds": record["refresh_seconds"],
            }

    def info(self) -> dict:
        return {
            "dataset": self.dataset,
            "polls": self.polls,
            "answers": len(self.view.rows),
            "refreshes": self.view.refreshes,
            "refresh_modes": dict(self.view.refresh_modes),
        }


class SubscriptionRegistry:
    """Tenant-scoped standing queries, ``(tenant, id) -> Subscription``."""

    def __init__(self, max_subscriptions: int = 1024) -> None:
        self.max_subscriptions = max_subscriptions
        self._subscriptions: dict = {}
        self._lock = threading.Lock()
        self._counter = 0
        self.created = 0

    def register(self, tenant, dataset, query, view) -> Subscription:
        with self._lock:
            if len(self._subscriptions) >= self.max_subscriptions:
                raise OverflowError(
                    f"subscription limit of {self.max_subscriptions} reached"
                )
            self._counter += 1
            # The timestamp keeps ids from colliding across registry
            # restarts behind one front door; within a registry the counter
            # alone is unique.
            subscription_id = f"sub-{int(time.time())}-{self._counter}"
            subscription = Subscription(
                subscription_id, tenant, dataset, query, view
            )
            self._subscriptions[subscription_id] = subscription
            self.created += 1
            return subscription

    def get(self, tenant: str, subscription_id: str) -> Subscription:
        with self._lock:
            subscription = self._subscriptions.get(subscription_id)
        if subscription is None or subscription.tenant != tenant:
            raise UnknownSubscription(tenant, subscription_id)
        return subscription

    def remove(self, tenant: str, subscription_id: str) -> Subscription:
        with self._lock:
            subscription = self._subscriptions.get(subscription_id)
            if subscription is None or subscription.tenant != tenant:
                raise UnknownSubscription(tenant, subscription_id)
            return self._subscriptions.pop(subscription_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def stats(self) -> dict:
        with self._lock:
            subscriptions = list(self._subscriptions.values())
        by_tenant: dict = {}
        for subscription in subscriptions:
            by_tenant.setdefault(subscription.tenant, {})[
                subscription.id
            ] = subscription.info()
        return {
            "active": len(subscriptions),
            "created": self.created,
            "by_tenant": by_tenant,
        }
