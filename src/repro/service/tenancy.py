"""Per-tenant isolation: one EngineSession and one dataset namespace each.

Every request names a tenant (defaulting to ``"public"``); the service
resolves it to a **tenant-private** :class:`~repro.engine.session
.EngineSession`, so the analysis / core / plan / partition caches of one
tenant can never serve another's queries — cache isolation *is* the
session boundary, exactly as the engine designed it (constructing a
session is complete cache isolation).  Sessions are cheap; the pool is
LRU-bounded so a long tail of one-request tenants cannot grow session
state without limit (an evicted tenant transparently gets a fresh, cold
session on its next request).

Datasets are namespaced the same way: ``(tenant, name) -> Database``.
Tenants share nothing — not even dataset names.
"""

from __future__ import annotations

import threading

from repro.engine.analysis import LRUCache
from repro.engine.session import EngineSession

DEFAULT_TENANT = "public"


class UnknownDataset(KeyError):
    def __init__(self, tenant: str, name: str, known: list) -> None:
        super().__init__(
            f"tenant {tenant!r} has no dataset {name!r}; registered: {known}"
        )
        self.tenant = tenant
        self.name = name


class TenantSessions:
    """An LRU-bounded pool of per-tenant engine sessions."""

    def __init__(self, max_tenants: int = 64, session_factory=None) -> None:
        self._factory = session_factory or EngineSession
        self._sessions = LRUCache(max_tenants)
        # The compound get-or-create must be atomic: two concurrent first
        # requests for one tenant must not each install a session (the
        # loser's caches would silently vanish).  LRUCache's own lock only
        # covers single operations.
        self._lock = threading.Lock()
        self.created = 0

    def get(self, tenant: str) -> EngineSession:
        with self._lock:
            session = self._sessions.get(tenant)
            if session is None:
                session = self._factory()
                self._sessions.put(tenant, session)
                self.created += 1
            return session

    def tenants(self) -> list:
        return [tenant for tenant, _ in self._sessions.snapshot()]

    def stats(self) -> dict:
        return {
            tenant: session.stats()
            for tenant, session in self._sessions.snapshot()
        }

    def info(self) -> dict:
        info = self._sessions.info()
        info["created"] = self.created
        return info


class DatasetRegistry:
    """Named, tenant-scoped databases the service answers queries over."""

    def __init__(self) -> None:
        self._datasets: dict = {}
        self._lock = threading.Lock()

    def register(self, tenant: str, name: str, database) -> None:
        with self._lock:
            self._datasets.setdefault(tenant, {})[name] = database

    def get(self, tenant: str, name: str):
        with self._lock:
            tenant_sets = self._datasets.get(tenant, {})
            try:
                return tenant_sets[name]
            except KeyError:
                raise UnknownDataset(tenant, name, sorted(tenant_sets)) from None

    def names(self, tenant: str) -> list:
        with self._lock:
            return sorted(self._datasets.get(tenant, {}))

    def by_tenant(self) -> dict:
        with self._lock:
            return {tenant: sorted(sets) for tenant, sets in self._datasets.items()}
