"""A minimal asyncio HTTP/1.1 layer — no third-party dependencies.

The service deliberately speaks just enough HTTP for a JSON API: request
line + headers + ``Content-Length`` bodies in, ``application/json``
responses out, keep-alive by default.  There is no chunked encoding, no
TLS, no multipart — a reverse proxy in front owns those concerns in any
real deployment; here the point is a dependency-free front door the test
suite and the load harness can drive with :mod:`http.client`.

:class:`Router` maps ``(method, path)`` to async handlers
(``Request -> Response``) and produces the 404/405 responses itself, so
the connection loop in :mod:`repro.service.app` only ever sees a
:class:`Response` to serialize.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import urlsplit

#: Hard cap on one header line / request line (a parser, not a proxy).
_MAX_LINE_BYTES = 16 * 1024
_MAX_HEADER_COUNT = 100

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure the connection loop turns into a response
    (and then closes the connection — framing may be lost)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    method: str
    path: str
    headers: dict
    body: bytes
    #: Path parameters bound by a template route (``/subscriptions/{id}``
    #: matched against ``/subscriptions/7`` puts ``{"id": "7"}`` here).
    params: dict = field(default_factory=dict)

    def json(self):
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


@dataclass
class Response:
    status: int = 200
    payload: object = None
    headers: dict = field(default_factory=dict)

    @classmethod
    def error(
        cls, status: int, message: str, headers: dict | None = None, **extra
    ) -> "Response":
        body = {"error": message}
        body.update(extra)
        return cls(status, body, headers or {})

    def encode(self, keep_alive: bool) -> bytes:
        body = b""
        if self.payload is not None:
            body = json.dumps(self.payload, default=repr).encode("utf-8")
        lines = [
            f"HTTP/1.1 {self.status} {REASONS.get(self.status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF between
    requests (the client closed a keep-alive connection)."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > _MAX_LINE_BYTES:
        raise HttpError(400, "request line too long")
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version}")
    headers: dict = {}
    while True:
        line = await reader.readline()
        if len(line) > _MAX_LINE_BYTES:
            raise HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= _MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "undecodable header") from None
        headers[name.strip().lower()] = value.strip()
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_header!r}") from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > max_body_bytes:
        raise HttpError(413, f"body of {length} bytes exceeds {max_body_bytes}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    return Request(method.upper(), urlsplit(target).path, headers, body)


class Router:
    """``(method, path) -> async handler``; emits its own 404/405.

    Paths may contain ``{name}`` template segments (``/subscriptions/{id}``);
    a template segment matches exactly one non-empty path segment and the
    matched values land in ``request.params``.  Exact routes always win over
    template routes.
    """

    def __init__(self) -> None:
        self._routes: dict = {}
        #: ``(method, segment tuple)`` -> handler, where template segments
        #: are the parameter name marked by a leading ``{``.
        self._templates: dict = {}

    def add(self, method: str, path: str, handler) -> None:
        if "{" in path:
            segments = tuple(
                segment for segment in path.split("/") if segment != ""
            )
            self._templates[(method.upper(), segments)] = handler
        else:
            self._routes[(method.upper(), path)] = handler

    @staticmethod
    def _match(template: tuple, segments: tuple) -> dict | None:
        if len(template) != len(segments):
            return None
        params: dict = {}
        for pattern, actual in zip(template, segments):
            if pattern.startswith("{") and pattern.endswith("}"):
                params[pattern[1:-1]] = actual
            elif pattern != actual:
                return None
        return params

    async def dispatch(self, request: Request) -> Response:
        handler = self._routes.get((request.method, request.path))
        if handler is not None:
            return await handler(request)
        segments = tuple(s for s in request.path.split("/") if s != "")
        allowed = set()
        for (method, template), candidate in self._templates.items():
            params = self._match(template, segments)
            if params is None:
                continue
            if method == request.method:
                request.params = params
                return await candidate(request)
            allowed.add(method)
        allowed.update(
            method for method, path in self._routes if path == request.path
        )
        if allowed:
            return Response.error(
                405,
                f"{request.method} not allowed on {request.path}",
                allowed=sorted(allowed),
            )
        return Response.error(404, f"no route for {request.path}")
