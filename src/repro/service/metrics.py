"""Service metrics: request counters plus a latency window, JSON-ready.

``/stats`` surfaces three layers of counters in one document:

* **service** — this module: requests per endpoint, responses per status,
  sheds, deadline expiries, and p50/p99/max over a sliding window of
  request latencies (a bounded reservoir of the most recent completions —
  percentiles of a serving process should describe *now*, not its whole
  uptime);
* **admission** — the bounded queue (in-flight, queued, shed);
* **tenants** — each live tenant session's own ``stats()``: the engine's
  LRU cache hit rates, runtime dispatch/shipping ledgers, and
  sharding-ladder counters, exactly as the library reports them.

Everything is plain ints/floats/strings so ``json.dumps`` needs no help.
"""

from __future__ import annotations

import threading
from collections import Counter, deque

#: Latency reservoir size: big enough for stable p99 at smoke scale, small
#: enough to never matter for memory.
_WINDOW = 4096


def percentile(samples: list, fraction: float) -> float | None:
    """Nearest-rank percentile of ``samples`` (returns ``None`` on empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class LatencyWindow:
    def __init__(self, maxlen: int = _WINDOW) -> None:
        self._samples: deque = deque(maxlen=maxlen)
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    def snapshot(self) -> dict:
        samples = list(self._samples)
        return {
            "count": self.count,
            "window": len(samples),
            "mean_seconds": (
                self.total_seconds / self.count if self.count else None
            ),
            "p50_seconds": percentile(samples, 0.50),
            "p99_seconds": percentile(samples, 0.99),
            "max_seconds": max(samples) if samples else None,
        }


class ServiceMetrics:
    """Counters for the front door (thread-safe; recorded from the event
    loop, read from any test thread through ``/stats``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Counter = Counter()
        self.responses: Counter = Counter()
        self.shed = 0
        self.deadline_exceeded = 0
        self.cancelled = 0
        self.latency = LatencyWindow()
        self.by_endpoint: dict = {}

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            self.requests[endpoint] += 1
            self.responses[str(status)] += 1
            if status == 503:
                self.shed += 1
            self.latency.record(seconds)
            window = self.by_endpoint.get(endpoint)
            if window is None:
                window = self.by_endpoint[endpoint] = LatencyWindow()
            window.record(seconds)

    def record_deadline_exceeded(self) -> None:
        with self._lock:
            self.deadline_exceeded += 1

    def record_cancelled(self) -> None:
        with self._lock:
            self.cancelled += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests_by_endpoint": dict(self.requests),
                "responses_by_status": dict(self.responses),
                "shed": self.shed,
                "deadline_exceeded": self.deadline_exceeded,
                "cancelled": self.cancelled,
                "latency": self.latency.snapshot(),
                "latency_by_endpoint": {
                    endpoint: window.snapshot()
                    for endpoint, window in self.by_endpoint.items()
                },
            }
