"""The unified query engine: analysis → plan → execute.

This subsystem is the single front door for conjunctive-query evaluation.
Instead of manually computing ``ghw``, building a decomposition, and picking
between ``yannakakis_*``, the ``decomposition_*_answer`` evaluators, and the
indexed backtracking solver, callers ask the engine:

>>> from repro import engine
>>> result = engine.answer(query, database)      # doctest: +SKIP
>>> result.value, result.strategy, result.plan.explain()  # doctest: +SKIP

The pipeline has three layers, each reusable on its own:

* :mod:`repro.engine.analysis` — :class:`QueryAnalysis`, memoized certified
  structure (acyclicity, join tree, ghw bounds) per query hypergraph behind
  an :class:`AnalysisCache` keyed on the hypergraph;
* :mod:`repro.engine.planner` — :class:`QueryPlanner` emitting explainable
  :class:`Plan` objects (direct-Yannakakis | GHD-guided |
  indexed-backtracking, with the witnessing decomposition and a cost
  rationale);
* :mod:`repro.engine.executor` — :class:`Engine` / the module-level
  :func:`answer`, :func:`is_satisfiable`, :func:`count`, returning a uniform
  :class:`EvalResult` (payload + plan + timings);
* :mod:`repro.engine.session` — :class:`EngineSession`, an engine plus a
  session-scoped plan cache, the batch API
  (:meth:`~EngineSession.answer_many`: isomorphism dedup → plan reuse →
  parallel execution), and sharded single-query execution
  (``answer(..., shards=N)``).  The module-level helpers delegate to one
  lazily created default session (:func:`default_session`,
  :func:`isolated_session`);
* :mod:`repro.engine.sharding` — the hash-sharding layer:
  :func:`sharding_spec` (the co-partitioned / broadcast / single-shard
  fallback ladder) and :class:`ShardedDatabase` over
  :meth:`repro.cq.database.Database.partition`;
* :mod:`repro.engine.runtime` — the execution runtimes behind the fan-out
  paths: :class:`InlineRuntime`, :class:`ThreadRuntime` (the default), and
  :class:`ProcessRuntime` (owner-routed persistent workers: each shard is
  resident on the one worker that owns it, shipped once in the compact
  columnar wire form), selected per call or per session via
  ``runtime="inline" | "thread" | "process"`` (or an instance);
* :mod:`repro.engine.incremental` — :class:`IncrementalView`, a standing
  query refreshed in delta time after appends: semi-naive evaluation
  (Δ⋈old + old⋈Δ + Δ⋈Δ) over the versioned storage layer's delta logs and
  the resident atom views, with an exact full-recompute fallback when the
  delta fraction exceeds a threshold
  (:meth:`EngineSession.incremental_view`).

Strategy backends and runtimes are both pluggable: see
:func:`repro.engine.backends.register_backend`,
:func:`repro.engine.runtime.register_runtime`, and
``docs/ARCHITECTURE.md``.
"""

from repro.engine.analysis import AnalysisCache, LRUCache, QueryAnalysis
from repro.engine.backends import (
    BacktrackingBackend,
    ColumnarBackend,
    DecompositionBackend,
    EvaluationBackend,
    TrivialBackend,
    backend_for,
    register_backend,
    registered_strategies,
    unregister_backend,
)
from repro.engine.executor import (
    Engine,
    EvalResult,
    TASK_ANSWER,
    TASK_COUNT,
    TASK_SATISFIABLE,
    analyze,
    answer,
    clear_analysis_cache,
    count,
    is_satisfiable,
    plan_query,
)
from repro.engine.incremental import (
    DEFAULT_REFRESH_THRESHOLD,
    MODE_FULL,
    MODE_INCREMENTAL,
    MODE_INITIAL,
    MODE_NOOP,
    IncrementalView,
)
from repro.engine.runtime import (
    CancellationToken,
    ExecutionRuntime,
    InlineRuntime,
    ProcessRuntime,
    RUNTIME_INLINE,
    RUNTIME_PROCESS,
    RUNTIME_THREAD,
    RunCancelled,
    RuntimeTask,
    TaskOutcome,
    ThreadRuntime,
    register_runtime,
    registered_runtimes,
    runtime_for,
    shutdown_runtimes,
)
from repro.engine.session import (
    EngineSession,
    answer_many,
    canonical_query_key,
    default_session,
    isolated_session,
    restore_default_session,
    set_default_session,
)
from repro.engine.sharding import (
    SHARD_MODE_BROADCAST,
    SHARD_MODE_COPARTITIONED,
    SHARD_MODE_SINGLE,
    ShardedDatabase,
    ShardingSpec,
    assign_pieces,
    choose_shard_variable,
    reassign_pieces,
    rendezvous_rank,
    rendezvous_score,
    sharding_spec,
)
from repro.engine.planner import (
    DEFAULT_MAX_GHD_WIDTH,
    Plan,
    QueryPlanner,
    STRATEGY_BACKTRACKING,
    STRATEGY_GHD,
    STRATEGY_TRIVIAL,
    STRATEGY_YANNAKAKIS,
)

def __getattr__(name):
    # Backwards-compatible alias from before caches were session-scoped:
    # the "default engine" is now the process-default EngineSession.
    if name == "DEFAULT_ENGINE":
        return default_session()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnalysisCache",
    "LRUCache",
    "QueryAnalysis",
    "EngineSession",
    "answer_many",
    "canonical_query_key",
    "default_session",
    "isolated_session",
    "restore_default_session",
    "set_default_session",
    "CancellationToken",
    "RunCancelled",
    "ExecutionRuntime",
    "InlineRuntime",
    "ThreadRuntime",
    "ProcessRuntime",
    "RuntimeTask",
    "TaskOutcome",
    "RUNTIME_INLINE",
    "RUNTIME_THREAD",
    "RUNTIME_PROCESS",
    "register_runtime",
    "registered_runtimes",
    "runtime_for",
    "shutdown_runtimes",
    "SHARD_MODE_BROADCAST",
    "SHARD_MODE_COPARTITIONED",
    "SHARD_MODE_SINGLE",
    "ShardedDatabase",
    "ShardingSpec",
    "assign_pieces",
    "choose_shard_variable",
    "reassign_pieces",
    "rendezvous_rank",
    "rendezvous_score",
    "sharding_spec",
    "EvaluationBackend",
    "TrivialBackend",
    "DecompositionBackend",
    "ColumnarBackend",
    "BacktrackingBackend",
    "backend_for",
    "register_backend",
    "registered_strategies",
    "unregister_backend",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_GHD_WIDTH",
    "Engine",
    "EvalResult",
    "Plan",
    "QueryPlanner",
    "STRATEGY_TRIVIAL",
    "STRATEGY_YANNAKAKIS",
    "STRATEGY_GHD",
    "STRATEGY_BACKTRACKING",
    "TASK_ANSWER",
    "TASK_SATISFIABLE",
    "TASK_COUNT",
    "analyze",
    "answer",
    "clear_analysis_cache",
    "count",
    "is_satisfiable",
    "plan_query",
]
