"""The unified query engine: analysis → plan → execute.

This subsystem is the single front door for conjunctive-query evaluation.
Instead of manually computing ``ghw``, building a decomposition, and picking
between ``yannakakis_*``, the ``decomposition_*_answer`` evaluators, and the
indexed backtracking solver, callers ask the engine:

>>> from repro import engine
>>> result = engine.answer(query, database)      # doctest: +SKIP
>>> result.value, result.strategy, result.plan.explain()  # doctest: +SKIP

The pipeline has three layers, each reusable on its own:

* :mod:`repro.engine.analysis` — :class:`QueryAnalysis`, memoized certified
  structure (acyclicity, join tree, ghw bounds) per query hypergraph behind
  an :class:`AnalysisCache` keyed on the hypergraph;
* :mod:`repro.engine.planner` — :class:`QueryPlanner` emitting explainable
  :class:`Plan` objects (direct-Yannakakis | GHD-guided |
  indexed-backtracking, with the witnessing decomposition and a cost
  rationale);
* :mod:`repro.engine.executor` — :class:`Engine` / the module-level
  :func:`answer`, :func:`is_satisfiable`, :func:`count`, returning a uniform
  :class:`EvalResult` (payload + plan + timings).

Strategy backends are pluggable: see
:func:`repro.engine.backends.register_backend` and
``docs/ARCHITECTURE.md``.
"""

from repro.engine.analysis import AnalysisCache, QueryAnalysis
from repro.engine.backends import (
    BacktrackingBackend,
    DecompositionBackend,
    EvaluationBackend,
    TrivialBackend,
    backend_for,
    register_backend,
    registered_strategies,
    unregister_backend,
)
from repro.engine.executor import (
    DEFAULT_ENGINE,
    Engine,
    EvalResult,
    TASK_ANSWER,
    TASK_COUNT,
    TASK_SATISFIABLE,
    analyze,
    answer,
    clear_analysis_cache,
    count,
    is_satisfiable,
    plan_query,
)
from repro.engine.planner import (
    DEFAULT_MAX_GHD_WIDTH,
    Plan,
    QueryPlanner,
    STRATEGY_BACKTRACKING,
    STRATEGY_GHD,
    STRATEGY_TRIVIAL,
    STRATEGY_YANNAKAKIS,
)

__all__ = [
    "AnalysisCache",
    "QueryAnalysis",
    "EvaluationBackend",
    "TrivialBackend",
    "DecompositionBackend",
    "BacktrackingBackend",
    "backend_for",
    "register_backend",
    "registered_strategies",
    "unregister_backend",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_GHD_WIDTH",
    "Engine",
    "EvalResult",
    "Plan",
    "QueryPlanner",
    "STRATEGY_TRIVIAL",
    "STRATEGY_YANNAKAKIS",
    "STRATEGY_GHD",
    "STRATEGY_BACKTRACKING",
    "TASK_ANSWER",
    "TASK_SATISFIABLE",
    "TASK_COUNT",
    "analyze",
    "answer",
    "clear_analysis_cache",
    "count",
    "is_satisfiable",
    "plan_query",
]
