"""Engine sessions: batched evaluation over shared, session-scoped caches.

An :class:`EngineSession` is an :class:`~repro.engine.executor.Engine` that
additionally owns a **plan cache** and exposes a **batch API** —
:meth:`EngineSession.answer_many` and friends.  A batch call

* **deduplicates structurally-isomorphic queries** before planning: two
  queries that coincide after a variable renaming (same relations, same term
  order, same free-variable order — see :func:`canonical_query_key`) have
  identical answer sets over any shared database, so only one representative
  per class is planned and executed;
* **reuses plans** across the batch and across batches through the
  session-scoped plan cache (keyed on the query, its free-variable *order*,
  and the planning options);
* **executes independent queries concurrently** through a pluggable
  :mod:`execution runtime <repro.engine.runtime>` — inline, thread pool
  (the default), or a pool of persistent worker *processes*.  Plans,
  relations, and the query/hypergraph objects are read-only at execution
  time; the lazily memoized structures they carry (tries, key indexes,
  incidence maps) are pure and assigned atomically under the GIL, so a
  duplicated computation is the worst a race can cost.

The same runtime seam drives the sharded single-query path: ``answer(...,
shards=N, runtime=...)`` partitions once into **resident pieces** (a
session-scoped partition cache with atom-view memoization), then fans the
per-shard plan executions out to the chosen runtime.  With the process
runtime the pieces live on the workers between calls, so a repeated sharded
query pays join work plus a small IPC envelope — not re-partitioning,
re-scanning, or re-indexing (see ``docs/ARCHITECTURE.md`` → Execution
runtimes).

All caching is *session-scoped*: the analysis cache, the planner's core
cache, the plan cache, and the partition cache live on the session object,
never at module level.  The module-level convenience API
(``repro.engine.answer`` …) delegates to one lazily created default
session, which tests can swap out wholesale with :func:`isolated_session` /
:func:`set_default_session`.
"""

from __future__ import annotations

import threading
import time
import weakref
from contextlib import contextmanager

from repro.cq.columnar import memo_counters
from repro.cq.database import Database, shard_of
from repro.cq.query import Constant, ConjunctiveQuery
from repro.cq.statistics import ledger_delta, ledger_snapshot
from repro.engine.analysis import LRUCache
from repro.engine.executor import (
    Engine,
    EvalResult,
    TASK_ANSWER,
    TASK_COUNT,
    TASK_SATISFIABLE,
)
from repro.engine.planner import DEFAULT_MAX_GHD_WIDTH, Plan
from repro.engine.runtime import (
    DEFAULT_THREAD_WORKERS,
    RuntimeTask,
    runtime_for,
)
from repro.engine.sharding import (
    SHARD_MODE_SINGLE,
    ShardedDatabase,
    ShardingSpec,
    sharding_spec,
)

#: Upper bound on the threads one sharded call fans out to (the default
#: thread runtime's worker cap): shard counts are a data-layout choice, not
#: a parallelism dial, so a 64-shard call must not spawn 64 threads.
MAX_SHARD_WORKERS = DEFAULT_THREAD_WORKERS


def canonical_query_key(query: ConjunctiveQuery):
    """A hashable key under which two queries collide exactly when one is a
    variable renaming of the other.

    For **self-join-free** queries (every relation name appears in one atom)
    the key is a true canonical form: atoms are sorted by their unique
    relation name and variables renamed by first occurrence along that fixed
    order.  Equal keys then give a variable bijection preserving relation
    names, term positions, constants, and the free-variable order — so the
    answer sets over any one database are identical and the batch layer may
    evaluate a single representative.

    Queries with self-joins fall back to an exact key (atom *set* plus the
    ordered head): canonicalising them is graph canonisation, which the
    batch path does not attempt.  Exact duplicates still deduplicate.
    """
    if query.has_self_joins():
        return ("exact", frozenset(query.atoms), query.free_variables)
    rename: dict = {}

    def term_key(term):
        if isinstance(term, Constant):
            return ("c", term.value)
        if term not in rename:
            rename[term] = len(rename)
        return ("v", rename[term])

    body = tuple(
        (atom.relation, tuple(term_key(term) for term in atom.terms))
        for atom in sorted(query.atoms, key=lambda atom: atom.relation)
    )
    head = tuple(term_key(variable) for variable in query.free_variables)
    return ("iso", body, head)


class EngineSession(Engine):
    """An engine plus session-scoped plan cache, dedup, and batch execution.

    Sessions are cheap to construct and own *all* their cache state (analysis
    cache, core cache, plan cache) — constructing a fresh session is complete
    cache isolation.  A session is safe to share across threads: every cache
    mutation happens inside :meth:`plan` or :meth:`analyze`, both of which
    serialize on the session (re-entrant) lock, and execution only reads
    plans and relations.

    The single-query API additionally accepts ``shards=N``: the query is
    evaluated per hash-shard of the database and the per-shard results are
    combined exactly (see :mod:`repro.engine.sharding` for the
    co-partitioned / broadcast / single-shard fallback ladder, which is
    recorded in the returned plan's rationale and in
    ``EvalResult.timings["sharding"]``).  ``runtime=`` — per call or as the
    session default — selects *where* the fan-out work runs: an
    :class:`~repro.engine.runtime.ExecutionRuntime` instance or a
    registered name (``"inline"`` / ``"thread"`` / ``"process"``).  The
    runtime decision and per-task worker timings land in the plan rationale
    and ``EvalResult.timings["runtime"]``.  The runtime only governs
    fan-out calls (``shards``/``shard_variable``/batch, or an explicit
    ``runtime=`` on a single call); the plain single-query fast path never
    pays for dispatch.
    """

    def __init__(
        self,
        max_ghd_width: int = DEFAULT_MAX_GHD_WIDTH,
        cache_size: int = 256,
        core_cache_size: int = 256,
        plan_cache_size: int = 512,
        partition_cache_size: int = 8,
        runtime=None,
    ) -> None:
        super().__init__(
            max_ghd_width=max_ghd_width,
            cache_size=cache_size,
            core_cache_size=core_cache_size,
        )
        self.plan_cache = LRUCache(plan_cache_size)
        #: Resident shard pieces per (database identity, sharding spec):
        #: partitioning is a full hash pass over the data, so a serving
        #: session pays it once and re-executes against the cached pieces —
        #: which carry the atom-view memo, so repeated queries also skip the
        #: per-call scan/re-index of the stored tuples.
        self._partition_cache = LRUCache(partition_cache_size)
        #: The session-default runtime spec for fan-out work (``None`` =
        #: the shared thread runtime, today's behaviour).
        self.runtime = runtime
        self._lock = threading.RLock()
        self.dedup_hits = 0
        self.batches = 0
        # Operator counters (satellite of the runtime layer): where did the
        # fan-out work go, and which rungs of the sharding ladder ran.
        self.runtime_tasks = 0
        self.runtime_calls: dict = {}
        self.runtime_workers: set = set()
        #: name -> the resolved runtime instance, for surfacing each
        #: runtime's own counters (shipments, resident pieces, restarts)
        #: through ``stats()["runtime"]["by_runtime"]``.
        self._runtimes_used: dict = {}
        self.sharded_calls = 0
        self.sharding_modes: dict = {}
        #: Standing incremental views handed out by :meth:`incremental_view`.
        self.incremental_views = 0
        #: Weak refs to every database this session has executed against,
        #: so stats()/clear_cache() can reach their columnar-view caches
        #: (which live on the Database, not the session) without keeping
        #: the databases alive.
        self._served_databases: dict[int, weakref.ref] = {}

    def _run(self, task, query, database, plan, use_core):
        self._track_database(database)
        return super()._run(task, query, database, plan, use_core)

    def _track_database(self, database) -> None:
        key = id(database)
        with self._lock:
            ref = self._served_databases.get(key)
            if ref is None or ref() is not database:
                try:
                    self._served_databases[key] = weakref.ref(database)
                except TypeError:
                    pass  # a weakref-less Database subclass: skip tracking

    def _live_served_databases(self) -> list:
        """The still-alive served databases; prunes dead refs in passing."""
        with self._lock:
            live = []
            dead = []
            for key, ref in self._served_databases.items():
                database = ref()
                if database is None:
                    dead.append(key)
                else:
                    live.append(database)
            for key in dead:
                del self._served_databases[key]
            return live

    def _resolve_runtime(self, runtime):
        """The per-call runtime, falling back to the session default."""
        resolved = runtime_for(runtime if runtime is not None else self.runtime)
        with self._lock:
            self._runtimes_used[resolved.name] = resolved
        return resolved

    # ------------------------------------------------------------------
    def _sharded_pieces(self, database: Database, target, spec) -> list:
        """The resident pieces for ``(database, spec)``, partitioned once
        and *extended* across appends.

        Cache validity rides the version seam: the key carries the
        database's identity plus the spec, and the entry records the
        :attr:`~repro.cq.database.Relation.version` of every relation the
        spec touches.  When versions have moved since the pieces were cut,
        only the ``delta_since`` rows are routed — partitioned relations
        hash each appended row to its owning piece, broadcast relations
        append to every piece — so resident pieces (and the atom-view and
        columnar caches living on them) extend instead of being rebuilt.
        The identity check on the cached entry guards against ``id`` reuse
        after garbage collection.  The pieces are session-owned and get the
        atom-view memo enabled — callers must not mutate a served database
        concurrently with evaluation (appends between evaluations are the
        supported write pattern).
        """
        relevant = tuple(sorted(set(spec.partition_columns) | set(spec.broadcast_relations)))
        key = (
            id(database),
            spec.shard_variable,
            spec.shards,
            tuple(sorted(spec.partition_columns.items())),
            spec.broadcast_relations,
            spec.hot_keys,
            relevant,
        )
        with self._lock:
            entry = self._partition_cache.get(key)
            if entry is not None and entry[0] is database:
                pieces, versions = entry[1], entry[2]
                self._extend_pieces(database, pieces, versions, spec, relevant)
                return pieces
        pieces = ShardedDatabase.partition(database, target, spec.shards, spec=spec).shards
        for piece in pieces:
            piece.enable_atom_cache()
        versions = {
            name: database.relations[name].version
            for name in relevant
            if database.has_relation(name)
        }
        with self._lock:
            self._partition_cache.put(key, (database, pieces, versions))
        return pieces

    @staticmethod
    def _extend_pieces(database, pieces, versions, spec, relevant) -> None:
        """Catch resident pieces up with rows appended since they were cut
        (called under the session lock).  Rows carrying a spilled hot key
        broadcast to every piece — matching how the partition was cut.
        (Hotness is frozen in the spec: a value turning hot *after* the cut
        keeps hashing to its shard, which is correct, just less balanced.)"""
        hot = set(spec.hot_keys)
        for name in relevant:
            if not database.has_relation(name):
                continue
            relation = database.relations[name]
            seen = versions.get(name, 0)
            if relation.version == seen:
                continue
            delta = relation.delta_since(seen)
            if name in spec.partition_columns:
                column = spec.partition_columns[name]
                shards = len(pieces)
                for row in delta:
                    if row[column] in hot:
                        for piece in pieces:
                            piece.add_fact(name, row)
                    else:
                        pieces[shard_of(row[column], shards)].add_fact(name, row)
            else:
                for piece in pieces:
                    for row in delta:
                        piece.add_fact(name, row)
            versions[name] = relation.version

    # ------------------------------------------------------------------
    def plan(
        self,
        query: ConjunctiveQuery,
        use_core: bool = False,
        force_strategy: str | None = None,
    ) -> Plan:
        """Plan ``query``, serving repeats from the session's plan cache.

        The key includes the free-variable *order* (answer-tuple column
        order, which ``ConjunctiveQuery.__eq__`` ignores) and both planning
        options, so a cached plan is only ever replayed for calls that would
        have produced it.

        The whole call runs under the session lock — including a miss's
        ``super().plan(...)``, which mutates the (unsynchronized) analysis
        and core caches.  Planning therefore serializes across threads; only
        execution runs concurrently, which is where the time goes.
        """
        key = (query, query.free_variables, use_core, force_strategy)
        with self._lock:
            plan = self.plan_cache.get(key)
            if plan is None:
                plan = super().plan(
                    query, use_core=use_core, force_strategy=force_strategy
                )
                self.plan_cache.put(key, plan)
            return plan

    def analyze(self, target):
        """The cached structural analysis, serialized on the session lock.

        :meth:`Engine.analyze` mutates the analysis cache with no
        synchronization — fine for a private engine, a data race on a shared
        session.  The lock is re-entrant, so the planning path (which calls
        ``analyze`` while already holding the lock inside :meth:`plan`) is
        unaffected, and direct concurrent ``analyze`` calls now serialize
        instead of corrupting the LRU structure.
        """
        with self._lock:
            return super().analyze(target)

    # ------------------------------------------------------------------
    # Single-query API: the inherited signatures plus sharded execution
    # ------------------------------------------------------------------
    def answer(
        self, query, database, plan=None, use_core=False,
        shards=1, shard_variable=None, parallel=None, runtime=None,
        cancel=None,
    ) -> EvalResult:
        """``q(D)``; with ``shards=N`` the union of exact per-shard answers.

        ``cancel`` (a :class:`~repro.engine.runtime.CancellationToken`)
        makes the call abandonable: when the token fires, in-flight fan-out
        is cancelled at the next task boundary and the call raises
        :class:`~repro.engine.runtime.RunCancelled` instead of returning —
        the seam a serving layer's request deadlines hang off.
        """
        self._check_parallel(parallel)
        if cancel is not None:
            cancel.raise_if_cancelled()
        if shards == 1 and shard_variable is None and runtime is None:
            return super().answer(query, database, plan=plan, use_core=use_core)
        return self._run_sharded(
            TASK_ANSWER, query, database, plan, use_core,
            shards, shard_variable, parallel, runtime, cancel,
        )

    def is_satisfiable(
        self, query, database, plan=None, use_core=False,
        shards=1, shard_variable=None, parallel=None, runtime=None,
        cancel=None,
    ) -> EvalResult:
        """BCQ; with ``shards=N`` the disjunction of the per-shard questions."""
        self._check_parallel(parallel)
        if cancel is not None:
            cancel.raise_if_cancelled()
        if shards == 1 and shard_variable is None and runtime is None:
            return super().is_satisfiable(query, database, plan=plan, use_core=use_core)
        return self._run_sharded(
            TASK_SATISFIABLE, query, database, plan, use_core,
            shards, shard_variable, parallel, runtime, cancel,
        )

    def count(
        self, query, database, plan=None, use_core=False,
        shards=1, shard_variable=None, parallel=None, runtime=None,
        cancel=None,
    ) -> EvalResult:
        """#CQ; with ``shards=N`` the sum of per-shard counts (shard variable
        free: answer-disjoint shards) or the size of the per-shard answer
        union (shard variable existential: shards may share projections)."""
        self._check_parallel(parallel)
        if cancel is not None:
            cancel.raise_if_cancelled()
        if shards == 1 and shard_variable is None and runtime is None:
            return super().count(query, database, plan=plan, use_core=use_core)
        return self._run_sharded(
            TASK_COUNT, query, database, plan, use_core,
            shards, shard_variable, parallel, runtime, cancel,
        )

    def incremental_view(self, query, database, threshold=None):
        """A standing :class:`~repro.engine.incremental.IncrementalView`
        over ``database``: call ``refresh()`` after appends to bring its
        answer set up to date in delta time (semi-naive evaluation against
        the resident atom views, with an exact full-recompute fallback when
        the delta fraction exceeds ``threshold``)."""
        from repro.engine.incremental import (
            DEFAULT_REFRESH_THRESHOLD,
            IncrementalView,
        )

        if threshold is None:
            threshold = DEFAULT_REFRESH_THRESHOLD
        view = IncrementalView(self, query, database, threshold=threshold)
        self._track_database(database)
        with self._lock:
            self.incremental_views += 1
        return view

    def _run_sharded(
        self, task, query, database, plan, use_core, shards, shard_variable,
        parallel, runtime, cancel=None,
    ) -> EvalResult:
        """Sharded execution: partition → per-shard plan execution → combine.

        The plan is made once (through the session plan cache); the sharding
        spec is computed against the *executed* query (``plan.query`` — the
        core under ``use_core``), since that is what runs per shard.  The
        resident pieces come from the session partition cache, and the
        per-shard plan executions fan out to the resolved
        :mod:`execution runtime <repro.engine.runtime>` — the calling
        thread, a thread pool, or persistent worker processes (which hold
        the pieces resident and re-plan from the shipped ``(query,
        use_core, strategy)`` triple through their own warm caches).  The
        results combine exactly:

        * answers — set union (exact for every mode: the shards jointly
          contain every fact, and each satisfying assignment survives in the
          shard of its shard-variable value);
        * satisfiability — disjunction;
        * counts — sum when the shard variable is free (the per-shard answer
          sets are disjoint: the shard-variable column of an answer tuple
          determines its shard); when it is existential, shards may project
          onto the same answer tuple, so the per-shard *answer sets* are
          unioned and counted instead (recorded as ``count_via="union"``).
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if plan is not None and use_core:
            raise ValueError(
                "use_core applies at planning time; pass it to plan() "
                "(or omit plan=) instead of combining it with a pre-built plan"
            )
        resolved = self._resolve_runtime(runtime)
        planning_started = time.perf_counter()
        planning = 0.0
        if plan is None:
            plan = self.plan(query, use_core=use_core)
            planning = time.perf_counter() - planning_started
        target = plan.query
        if (
            shard_variable is not None
            and shard_variable not in target.variables
            and shard_variable in query.variables
        ):
            # The core folded the requested shard variable away: the executed
            # query cannot be partitioned on it.  Fall back rather than raise —
            # the caller asked for a legal variable of *their* query.
            spec = ShardingSpec(
                shard_variable, shards, SHARD_MODE_SINGLE, {}, (),
                f"shard variable {shard_variable!r} folded away by the core: "
                "single-shard fallback",
            )
        else:
            spec = sharding_spec(
                target, shards, shard_variable=shard_variable, database=database
            )
        start = time.perf_counter()
        ledger_before = ledger_snapshot()
        # Counts may add across shards only when the per-shard answer sets
        # are provably disjoint: the shard variable must be free AND no hot
        # key may have been spilled to broadcast (a spilled value's answers
        # can surface in every shard).
        count_via_sum = (
            spec.shard_variable in target.free_variables and not spec.hot_keys
        )
        if not spec.is_sharded:
            # One "shard": the database itself, the task as asked.
            pieces = [database]
            shard_task = task
        else:
            pieces = self._sharded_pieces(database, target, spec)
            # Counting with an existential shard variable (or spilled hot
            # keys) must union answer *sets* across shards (projections or
            # hot-key answers may coincide), so the shards run the answer
            # task and the combiner counts the union.
            shard_task = (
                TASK_ANSWER if task == TASK_COUNT and not count_via_sum else task
            )
        # Ship the PLAN's provenance, not the call's arguments: a pre-built
        # plan arrives with use_core=False even when it was planned for the
        # core, and a worker re-planning the full query under the core's
        # forced strategy would fail (e.g. direct Yannakakis forced on a
        # cyclic query whose *core* is acyclic).  The plan itself records
        # whether a core was substituted: its executed query differs from
        # its source query exactly then.
        ship_use_core = use_core or (
            plan.source_query is not None and plan.query != plan.source_query
        )
        tasks = [
            RuntimeTask(
                shard_task, query, piece,
                use_core=ship_use_core, force_strategy=plan.strategy,
                label=f"shard:{index}",
            )
            for index, piece in enumerate(pieces)
        ]

        def run_local(item: RuntimeTask):
            return self._run(item.task, item.query, item.database, plan, False).value

        if cancel is None:
            # Only pass cancel= through when set: pre-cancellation runtime
            # implementations (third-party registrations) stay callable for
            # every non-cancellable call.
            outcomes = resolved.run(tasks, run_local, parallel=parallel)
        else:
            outcomes = resolved.run(tasks, run_local, parallel=parallel, cancel=cancel)
            # Every runtime drains its futures before raising, so reaching
            # here with a fired token means all tasks finished anyway —
            # still honour the caller's "stop" rather than hand back a
            # result it stopped listening for.
            cancel.raise_if_cancelled()
        values = [outcome.value for outcome in outcomes]
        result = EvalResult(task=task, plan=plan)
        if not spec.is_sharded:
            if task == TASK_ANSWER:
                result.rows = values[0]
            elif task == TASK_SATISFIABLE:
                result.satisfiable = values[0]
            else:
                result.count = values[0]
        elif task == TASK_ANSWER:
            result.rows = set().union(*values)
        elif task == TASK_SATISFIABLE:
            result.satisfiable = any(values)
        elif count_via_sum:
            result.count = sum(values)
        else:
            result.count = len(set().union(*values))
        execution = time.perf_counter() - start
        per_shard_seconds = [outcome.seconds for outcome in outcomes]
        workers_used = sorted({outcome.worker for outcome in outcomes})
        sharding_record = {
            "mode": spec.mode,
            "shard_variable": spec.shard_variable,
            "shards": len(pieces),
            "requested_shards": shards,
            "per_shard_seconds": per_shard_seconds,
            "broadcast_relations": list(spec.broadcast_relations),
            "hot_keys": list(spec.hot_keys),
        }
        if task == TASK_COUNT and spec.is_sharded:
            sharding_record["count_via"] = "sum" if count_via_sum else "union"
        runtime_record = {
            "name": resolved.name,
            "tasks": len(tasks),
            "workers": workers_used,
            "per_task_seconds": per_shard_seconds,
        }
        result.plan = plan.with_note(
            f"sharding: {spec.rationale}; runtime: {resolved.name}"
        )
        ledger_after = ledger_snapshot()
        stats_record = ledger_delta(ledger_before, ledger_after)
        stats_record["mode"] = ledger_after["mode"]
        stats_record["hot_keys"] = list(spec.hot_keys)
        result.timings = {
            "planning_seconds": planning,
            "execution_seconds": execution,
            "total_seconds": planning + execution,
            "sharding": sharding_record,
            "runtime": runtime_record,
            "stats": stats_record,
        }
        with self._lock:
            self.sharded_calls += 1
            self.sharding_modes[spec.mode] = self.sharding_modes.get(spec.mode, 0) + 1
            self.runtime_tasks += len(tasks)
            self.runtime_calls[resolved.name] = (
                self.runtime_calls.get(resolved.name, 0) + 1
            )
            self.runtime_workers.update(workers_used)
        return result

    # ------------------------------------------------------------------
    def answer_many(
        self,
        queries,
        database: Database,
        parallel: int = 1,
        use_core: bool = False,
        runtime=None,
        cancel=None,
    ) -> list[EvalResult]:
        """Answer a batch of queries over one database (see :meth:`_run_many`)."""
        return self._run_many(
            TASK_ANSWER, queries, database, parallel, use_core, runtime, cancel
        )

    def is_satisfiable_many(
        self, queries, database, parallel: int = 1, use_core: bool = False,
        runtime=None, cancel=None,
    ) -> list[EvalResult]:
        """BCQ over a batch of queries."""
        return self._run_many(
            TASK_SATISFIABLE, queries, database, parallel, use_core, runtime, cancel
        )

    def count_many(
        self, queries, database, parallel: int = 1, use_core: bool = False,
        runtime=None, cancel=None,
    ) -> list[EvalResult]:
        """#CQ over a batch of queries."""
        return self._run_many(
            TASK_COUNT, queries, database, parallel, use_core, runtime, cancel
        )

    def _run_many(
        self,
        task: str,
        queries,
        database: Database,
        parallel: int,
        use_core: bool,
        runtime=None,
        cancel=None,
    ) -> list[EvalResult]:
        """The batch pipeline: dedup → plan once per class → execute.

        Class representatives execute as independent tasks on the resolved
        :mod:`execution runtime <repro.engine.runtime>` (``parallel`` caps
        the in-process worker count; process workers re-plan each class
        from its shipped ``(query, use_core, strategy)`` triple and hold
        the database resident between batches).

        Returns one :class:`EvalResult` per input query, in input order —
        always a **distinct object per query**, even within an isomorphism
        class.  Each class is still evaluated exactly once (the point of the
        dedup pass); the duplicates receive copies that share the class's
        plan but carry their own answer payload and their own ``timings``,
        with a ``dedup_of`` marker naming the batch index of the
        representative that actually executed.  (Results used to be aliased
        across a class, so mutating one query's ``rows`` silently corrupted
        its siblings, and every duplicate re-reported the representative's
        ``execution_seconds`` as its own.)
        """
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        if cancel is not None:
            cancel.raise_if_cancelled()
        resolved = self._resolve_runtime(runtime)
        queries = [self._checked_query(query) for query in queries]
        keys = [canonical_query_key(query) for query in queries]
        representatives: dict = {}
        first_index: dict = {}
        for index, (key, query) in enumerate(zip(keys, queries)):
            representatives.setdefault(key, query)
            first_index.setdefault(key, index)
        with self._lock:
            self.batches += 1
            self.dedup_hits += len(queries) - len(representatives)
        # Planning stays sequential: it is cache-bound and mutates the
        # session caches, and one plan per *class* is already the cheap part.
        plans: dict = {}
        planning_seconds: dict = {}
        for key, query in representatives.items():
            if cancel is not None:
                cancel.raise_if_cancelled()
            planning_started = time.perf_counter()
            plans[key] = self.plan(query, use_core=use_core)
            planning_seconds[key] = time.perf_counter() - planning_started
        items = list(representatives.items())
        tasks = [
            RuntimeTask(
                task, query, database,
                use_core=use_core, force_strategy=plans[key].strategy,
                label=f"class:{first_index[key]}",
            )
            for key, query in items
        ]
        plan_of = {id(item): plans[key] for item, (key, _) in zip(tasks, items)}

        def run_local(item: RuntimeTask):
            return self._run(
                item.task, item.query, item.database, plan_of[id(item)], False
            ).value

        if cancel is None:
            outcomes = resolved.run(tasks, run_local, parallel=parallel)
        else:
            outcomes = resolved.run(tasks, run_local, parallel=parallel, cancel=cancel)
            cancel.raise_if_cancelled()
        results: dict = {}
        for (key, query), outcome in zip(items, outcomes):
            result = EvalResult(task=task, plan=plans[key])
            if task == TASK_ANSWER:
                result.rows = outcome.value
            elif task == TASK_SATISFIABLE:
                result.satisfiable = outcome.value
            else:
                result.count = outcome.value
            result.timings = {
                "planning_seconds": planning_seconds[key],
                "execution_seconds": outcome.seconds,
                "total_seconds": planning_seconds[key] + outcome.seconds,
                "runtime": {"name": resolved.name, "worker": outcome.worker},
            }
            results[key] = result
        with self._lock:
            self.runtime_tasks += len(tasks)
            self.runtime_calls[resolved.name] = (
                self.runtime_calls.get(resolved.name, 0) + 1
            )
            self.runtime_workers.update(outcome.worker for outcome in outcomes)
        return [
            results[key]
            if index == first_index[key]
            else self._dedup_copy(results[key], first_index[key])
            for index, key in enumerate(keys)
        ]

    @staticmethod
    def _dedup_copy(representative: EvalResult, representative_index: int) -> EvalResult:
        """A duplicate's result: the representative's payload in a fresh
        object.  The answer set is copied (a frozen scalar payload is shared)
        so a caller mutating one result's ``rows`` cannot corrupt the class
        siblings, and the timings say what this query actually cost — nothing
        was executed for it — plus where its payload came from."""
        return EvalResult(
            task=representative.task,
            plan=representative.plan,
            rows=set(representative.rows) if representative.rows is not None else None,
            satisfiable=representative.satisfiable,
            count=representative.count,
            timings={
                "planning_seconds": 0.0,
                "execution_seconds": 0.0,
                "total_seconds": 0.0,
                "dedup_of": representative_index,
            },
        )

    @staticmethod
    def _check_parallel(parallel) -> None:
        # Validated on every call — including the unsharded fast path, so an
        # invalid argument cannot be masked by an unrelated shards value.
        if parallel is not None and parallel < 1:
            raise ValueError("parallel must be >= 1")

    @staticmethod
    def _checked_query(query) -> ConjunctiveQuery:
        if not isinstance(query, ConjunctiveQuery):
            raise TypeError(
                f"answer_many expects ConjunctiveQuery items, got {type(query).__name__}"
            )
        return query

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One dict of every session counter (cache hit rates, dedup,
        batches, plus where fan-out work ran: tasks dispatched per runtime,
        workers observed, and the sharding-ladder rungs taken)."""
        with self._lock:
            return {
                "analysis_cache": self.cache.info(),
                "core_cache": self.core_cache.info(),
                "plan_cache": self.plan_cache.info(),
                "partition_cache": self._partition_cache.info(),
                "columnar_view_cache": self._columnar_stats(),
                "dedup_hits": self.dedup_hits,
                "batches": self.batches,
                "runtime": {
                    "tasks_dispatched": self.runtime_tasks,
                    "calls_by_runtime": dict(self.runtime_calls),
                    "workers_used": sorted(self.runtime_workers),
                    # Each resolved runtime's own counters — for the process
                    # runtime: shipments, shipment_bytes, per-worker
                    # resident-piece counts, restarts.
                    "by_runtime": {
                        name: instance.stats()
                        for name, instance in self._runtimes_used.items()
                    },
                },
                "sharding": {
                    "calls": self.sharded_calls,
                    "by_mode": dict(self.sharding_modes),
                },
                "incremental_views": self.incremental_views,
                # Process-wide (not session-scoped): the columnar kernel's
                # bounded derived-key memos and the join-ordering ledger.
                "columnar_memo": memo_counters(),
                "join_ordering": ledger_snapshot(),
            }

    def _columnar_stats(self) -> dict:
        """Aggregate columnar-view cache counters across every live database
        this session has served (the stores live on the databases — see
        ``Database.columnar_view`` — not on the session; resident shards
        inside process workers tally in the worker's own session)."""
        report = {
            "databases": 0, "interned": 0, "views": 0,
            "hits": 0, "misses": 0, "dictionary_size": 0,
        }
        for database in self._live_served_databases():
            report["databases"] += 1
            store = database.columnar_cache
            if store is None:
                continue
            info = store.info()
            report["interned"] += 1
            report["views"] += info["size"]
            report["hits"] += info["hits"]
            report["misses"] += info["misses"]
            report["dictionary_size"] += info["dictionary_size"]
        return report

    def clear_cache(self) -> None:
        """Drop every session cache (analysis, core, plan, partitions, and
        the columnar stores of every database this session has served).

        Also zeroes the hit/miss counters of each cache
        (:meth:`LRUCache.clear`): a cleared session restarts cold, and its
        post-clear hit rates must describe the fresh caches, not the
        discarded ones.
        """
        super().clear_cache()
        self.core_cache.clear()
        self.plan_cache.clear()
        for database in self._live_served_databases():
            database.drop_columnar()
            database.drop_statistics()
        with self._lock:
            self._partition_cache.clear()
            self._served_databases.clear()


# ----------------------------------------------------------------------
# The process-default session behind the module-level API
# ----------------------------------------------------------------------
_default_session: EngineSession | None = None
_default_session_lock = threading.Lock()


def default_session() -> EngineSession:
    """The lazily created session behind ``repro.engine.answer`` & friends."""
    global _default_session
    with _default_session_lock:
        if _default_session is None:
            _default_session = EngineSession()
        return _default_session


def set_default_session(session: EngineSession | None) -> EngineSession | None:
    """Replace the process-default session; returns the previous one.

    Passing ``None`` resets to "create a fresh default on next use".
    """
    global _default_session
    with _default_session_lock:
        previous = _default_session
        _default_session = session
        return previous


def restore_default_session(expected: EngineSession, previous) -> bool:
    """Compare-and-swap restore: reinstate ``previous`` only if the current
    default is still ``expected``.  Returns whether the swap happened.

    This is the exit path of :func:`isolated_session`: an unconditional
    restore would clobber a default installed *during* the block — by the
    block's own body, or by another thread — silently reviving a session
    the process had already moved away from.
    """
    global _default_session
    with _default_session_lock:
        if _default_session is not expected:
            return False
        _default_session = previous
        return True


@contextmanager
def isolated_session(**session_kwargs):
    """Run a block against a fresh default session (cache-state isolation).

    On exit the previous default comes back **only if the block's session
    is still the default** (see :func:`restore_default_session`): a default
    swapped mid-block — by the body itself or by a concurrent thread — is
    deliberately left in place rather than clobbered.

    >>> with isolated_session() as session:          # doctest: +SKIP
    ...     repro.engine.answer(query, database)     # uses `session`
    """
    session = EngineSession(**session_kwargs)
    previous = set_default_session(session)
    try:
        yield session
    finally:
        restore_default_session(session, previous)


def answer_many(
    queries, database, parallel: int = 1, use_core: bool = False, session=None,
    runtime=None,
) -> list[EvalResult]:
    """Batch ``q(D)`` through the default session (see
    :meth:`EngineSession.answer_many`)."""
    return (session or default_session()).answer_many(
        queries, database, parallel=parallel, use_core=use_core, runtime=runtime
    )
