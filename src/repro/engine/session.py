"""Engine sessions: batched evaluation over shared, session-scoped caches.

An :class:`EngineSession` is an :class:`~repro.engine.executor.Engine` that
additionally owns a **plan cache** and exposes a **batch API** —
:meth:`EngineSession.answer_many` and friends.  A batch call

* **deduplicates structurally-isomorphic queries** before planning: two
  queries that coincide after a variable renaming (same relations, same term
  order, same free-variable order — see :func:`canonical_query_key`) have
  identical answer sets over any shared database, so only one representative
  per class is planned and executed;
* **reuses plans** across the batch and across batches through the
  session-scoped plan cache (keyed on the query, its free-variable *order*,
  and the planning options);
* **executes independent queries concurrently** via a thread pool when
  ``parallel > 1``.  Plans, relations, and the query/hypergraph objects are
  read-only at execution time; the lazily memoized structures they carry
  (tries, key indexes, incidence maps) are pure and assigned atomically
  under the GIL, so a duplicated computation is the worst a race can cost.

All caching is *session-scoped*: the analysis cache, the planner's core
cache, and the plan cache live on the session object, never at module level.
The module-level convenience API (``repro.engine.answer`` …) delegates to
one lazily created default session, which tests can swap out wholesale with
:func:`isolated_session` / :func:`set_default_session`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

from repro.cq.database import Database
from repro.cq.query import Constant, ConjunctiveQuery
from repro.engine.analysis import LRUCache
from repro.engine.executor import (
    Engine,
    EvalResult,
    TASK_ANSWER,
    TASK_COUNT,
    TASK_SATISFIABLE,
)
from repro.engine.planner import DEFAULT_MAX_GHD_WIDTH, Plan


def canonical_query_key(query: ConjunctiveQuery):
    """A hashable key under which two queries collide exactly when one is a
    variable renaming of the other.

    For **self-join-free** queries (every relation name appears in one atom)
    the key is a true canonical form: atoms are sorted by their unique
    relation name and variables renamed by first occurrence along that fixed
    order.  Equal keys then give a variable bijection preserving relation
    names, term positions, constants, and the free-variable order — so the
    answer sets over any one database are identical and the batch layer may
    evaluate a single representative.

    Queries with self-joins fall back to an exact key (atom *set* plus the
    ordered head): canonicalising them is graph canonisation, which the
    batch path does not attempt.  Exact duplicates still deduplicate.
    """
    if query.has_self_joins():
        return ("exact", frozenset(query.atoms), query.free_variables)
    rename: dict = {}

    def term_key(term):
        if isinstance(term, Constant):
            return ("c", term.value)
        if term not in rename:
            rename[term] = len(rename)
        return ("v", rename[term])

    body = tuple(
        (atom.relation, tuple(term_key(term) for term in atom.terms))
        for atom in sorted(query.atoms, key=lambda atom: atom.relation)
    )
    head = tuple(term_key(variable) for variable in query.free_variables)
    return ("iso", body, head)


class EngineSession(Engine):
    """An engine plus session-scoped plan cache, dedup, and batch execution.

    Sessions are cheap to construct and own *all* their cache state (analysis
    cache, core cache, plan cache) — constructing a fresh session is complete
    cache isolation.  A session is safe to share across threads as long as
    evaluation goes through the session API (``plan`` / ``answer*`` /
    ``*_many``): every cache mutation happens inside :meth:`plan`, which
    serializes on the session lock, and execution only reads plans and
    relations.  (Calling the inherited :meth:`Engine.analyze` directly from
    multiple threads bypasses that lock.)
    """

    def __init__(
        self,
        max_ghd_width: int = DEFAULT_MAX_GHD_WIDTH,
        cache_size: int = 256,
        core_cache_size: int = 256,
        plan_cache_size: int = 512,
    ) -> None:
        super().__init__(
            max_ghd_width=max_ghd_width,
            cache_size=cache_size,
            core_cache_size=core_cache_size,
        )
        self.plan_cache = LRUCache(plan_cache_size)
        self._lock = threading.RLock()
        self.dedup_hits = 0
        self.batches = 0

    # ------------------------------------------------------------------
    def plan(
        self,
        query: ConjunctiveQuery,
        use_core: bool = False,
        force_strategy: str | None = None,
    ) -> Plan:
        """Plan ``query``, serving repeats from the session's plan cache.

        The key includes the free-variable *order* (answer-tuple column
        order, which ``ConjunctiveQuery.__eq__`` ignores) and both planning
        options, so a cached plan is only ever replayed for calls that would
        have produced it.

        The whole call runs under the session lock — including a miss's
        ``super().plan(...)``, which mutates the (unsynchronized) analysis
        and core caches.  Planning therefore serializes across threads; only
        execution runs concurrently, which is where the time goes.
        """
        key = (query, query.free_variables, use_core, force_strategy)
        with self._lock:
            plan = self.plan_cache.get(key)
            if plan is None:
                plan = super().plan(
                    query, use_core=use_core, force_strategy=force_strategy
                )
                self.plan_cache.put(key, plan)
            return plan

    # ------------------------------------------------------------------
    def answer_many(
        self,
        queries,
        database: Database,
        parallel: int = 1,
        use_core: bool = False,
    ) -> list[EvalResult]:
        """Answer a batch of queries over one database (see :meth:`_run_many`)."""
        return self._run_many(TASK_ANSWER, queries, database, parallel, use_core)

    def is_satisfiable_many(
        self, queries, database, parallel: int = 1, use_core: bool = False
    ) -> list[EvalResult]:
        """BCQ over a batch of queries."""
        return self._run_many(TASK_SATISFIABLE, queries, database, parallel, use_core)

    def count_many(
        self, queries, database, parallel: int = 1, use_core: bool = False
    ) -> list[EvalResult]:
        """#CQ over a batch of queries."""
        return self._run_many(TASK_COUNT, queries, database, parallel, use_core)

    def _run_many(
        self,
        task: str,
        queries,
        database: Database,
        parallel: int,
        use_core: bool,
    ) -> list[EvalResult]:
        """The batch pipeline: dedup → plan once per class → execute.

        Returns one :class:`EvalResult` per input query, in input order.
        Queries in the same isomorphism class share a single result object
        (same rows/count and the representative's plan) — the whole point of
        the dedup pass is to not evaluate them twice.
        """
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        queries = [self._checked_query(query) for query in queries]
        keys = [canonical_query_key(query) for query in queries]
        representatives: dict = {}
        for key, query in zip(keys, queries):
            representatives.setdefault(key, query)
        with self._lock:
            self.batches += 1
            self.dedup_hits += len(queries) - len(representatives)
        # Planning stays sequential: it is cache-bound and mutates the
        # session caches, and one plan per *class* is already the cheap part.
        plans = {
            key: self.plan(query, use_core=use_core)
            for key, query in representatives.items()
        }

        def execute(item) -> tuple:
            key, query = item
            return key, self._run(task, query, database, plans[key], False)

        items = list(representatives.items())
        if parallel > 1 and len(items) > 1:
            with ThreadPoolExecutor(max_workers=min(parallel, len(items))) as pool:
                results = dict(pool.map(execute, items))
        else:
            results = dict(execute(item) for item in items)
        return [results[key] for key in keys]

    @staticmethod
    def _checked_query(query) -> ConjunctiveQuery:
        if not isinstance(query, ConjunctiveQuery):
            raise TypeError(
                f"answer_many expects ConjunctiveQuery items, got {type(query).__name__}"
            )
        return query

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One dict of every session counter (cache hit rates, dedup, batches)."""
        return {
            "analysis_cache": self.cache.info(),
            "core_cache": self.core_cache.info(),
            "plan_cache": self.plan_cache.info(),
            "dedup_hits": self.dedup_hits,
            "batches": self.batches,
        }

    def clear_cache(self) -> None:
        """Drop every session cache (analysis, core, and plan)."""
        super().clear_cache()
        self.core_cache.clear()
        self.plan_cache.clear()


# ----------------------------------------------------------------------
# The process-default session behind the module-level API
# ----------------------------------------------------------------------
_default_session: EngineSession | None = None
_default_session_lock = threading.Lock()


def default_session() -> EngineSession:
    """The lazily created session behind ``repro.engine.answer`` & friends."""
    global _default_session
    with _default_session_lock:
        if _default_session is None:
            _default_session = EngineSession()
        return _default_session


def set_default_session(session: EngineSession | None) -> EngineSession | None:
    """Replace the process-default session; returns the previous one.

    Passing ``None`` resets to "create a fresh default on next use".
    """
    global _default_session
    with _default_session_lock:
        previous = _default_session
        _default_session = session
        return previous


@contextmanager
def isolated_session(**session_kwargs):
    """Run a block against a fresh default session (cache-state isolation).

    >>> with isolated_session() as session:          # doctest: +SKIP
    ...     repro.engine.answer(query, database)     # uses `session`
    """
    session = EngineSession(**session_kwargs)
    previous = set_default_session(session)
    try:
        yield session
    finally:
        set_default_session(previous)


def answer_many(
    queries, database, parallel: int = 1, use_core: bool = False, session=None
) -> list[EvalResult]:
    """Batch ``q(D)`` through the default session (see
    :meth:`EngineSession.answer_many`)."""
    return (session or default_session()).answer_many(
        queries, database, parallel=parallel, use_core=use_core
    )
