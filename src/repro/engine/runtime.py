"""Pluggable execution runtimes: where the engine's fan-out work runs.

The session's scaling paths — sharded single-query execution and the batch
pipeline — both end in the same shape of work: a list of *independent tasks*
(evaluate this query over this piece of data) whose results are combined
exactly.  This module owns the question of **where those tasks run**:

* :class:`InlineRuntime` — sequentially, on the calling thread.  Zero
  overhead, zero parallelism; the baseline every other runtime is measured
  against.
* :class:`ThreadRuntime` — on a per-call thread pool.  This is the engine's
  historical behaviour, extracted from :class:`~repro.engine.session
  .EngineSession`: cheap, shares all in-process caches, but the GIL
  serializes CPU-bound evaluation, so within one process it is a scale-out
  seam rather than a speedup.
* :class:`ProcessRuntime` — on **owner-routed persistent workers**: one
  single-process executor per worker index, so the coordinator controls
  exactly which worker runs which task.  Workers sidestep the GIL and keep
  warm state between calls: a per-worker
  :class:`~repro.engine.session.EngineSession` (analysis/plan caches) and a
  bounded cache of **resident databases** — shard pieces shipped once, then
  referenced by token, with their atom views and key indexes memoized via
  :meth:`~repro.cq.database.Database.enable_atom_cache`.  A repeated
  sharded query therefore pays join work plus a small IPC envelope, not
  re-partitioning, re-scanning, or re-indexing.

Owner routing (why pool memory is O(db), not O(workers x db)):

* every dataset token is deterministically assigned an **owning worker**
  (:func:`repro.engine.sharding.assign_pieces` — rendezvous hashing with
  exact ±1 balance), and every task for that token is routed to its owner,
  so a piece becomes resident on exactly one worker instead of drifting
  onto all of them;
* the first submission for a token **push-ships** the piece with the task
  (the old need-data round-trip survives only as a recovery path: a worker
  that lost its residency — restart, cache eviction — answers
  ``need-data`` and the coordinator re-ships to it);
* a *batch* workload (many tasks over ONE token) would serialize on the
  owner, so multi-task tokens fan out round-robin over the token's top-k
  rendezvous-ranked workers (k = number of tasks, capped by the pool) —
  deliberate replication for parallelism, never accidental drift;
* on worker death only that worker's state is lost: the dead worker's
  tokens are reassigned across the survivors
  (:func:`repro.engine.sharding.reassign_pieces` — minimal movement) and
  only those pieces re-ship; every other worker's residency is untouched.

Serialization contract (what crosses the process boundary):

* **tasks** ship as ``(token, payload, task, query, use_core,
  force_strategy)`` tuples.  ``query`` is the
  :class:`~repro.cq.query.ConjunctiveQuery` itself (compact, pickles
  cleanly); the *plan* is deliberately NOT shipped — the worker re-plans
  from the same inputs through its warm session, which is cheaper than
  pickling a plan's decomposition and reproduces the coordinator's plan
  exactly because planning is deterministic.  Plans whose strategy the
  planner cannot reproduce (hand-built plans for unregistered strategies)
  are rejected by the worker rather than silently re-routed.
* **data** ships as the compact columnar wire form: ``payload`` is either
  ``None`` (steady state), ``("full", bytes)`` — a pre-pickled
  :class:`~repro.cq.columnar.DatabaseWire` (interned-id columns + one
  shared value dictionary — see
  :func:`repro.cq.columnar.encode_database`), which the worker decodes
  straight into a database with a **warm**
  :class:`~repro.cq.columnar.ColumnarStore` — or ``("delta", bytes)`` — a
  pickled :class:`~repro.cq.columnar.DatabaseDelta` carrying only the
  rows appended since the worker's copy was last synced, which the worker
  applies to its resident piece through the versioned storage API (so the
  piece's caches extend in place).  The coordinator pickles the payloads
  itself, so ``shipment_bytes`` / ``delta_bytes`` account the exact cost
  and replicas reuse one encoding.
* **results** return as ``(value, seconds, pid)`` — the answer payload
  (rows / bool / count), the worker-side execution time, and the worker
  identity for the ``timings["runtime"]`` record.

Runtimes are pluggable the same way strategy backends are: third-party
runtimes register through :func:`register_runtime` and become addressable
by name in ``EngineSession.answer(..., runtime="...")``.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.cq.columnar import DeltaMismatchError, encode_delta
from repro.cq.database import Database
from repro.cq.query import ConjunctiveQuery
from repro.engine.sharding import assign_pieces, reassign_pieces, rendezvous_rank

RUNTIME_INLINE = "inline"
RUNTIME_THREAD = "thread"
RUNTIME_PROCESS = "process"

#: Upper bound on the threads one fan-out call uses by default: shard counts
#: are a data-layout choice, not a parallelism dial, so a 64-shard call must
#: not spawn 64 threads.
DEFAULT_THREAD_WORKERS = 8

#: How often a cancellable fan-out loop re-checks its token while waiting on
#: futures.  Only paid when a caller actually passes ``cancel=`` — plain
#: calls keep the zero-polling blocking waits.
_CANCEL_POLL_SECONDS = 0.02


class RunCancelled(RuntimeError):
    """A fan-out call was abandoned because its cancellation token fired.

    Raised *by the runtime* between tasks (a task already executing on a
    worker runs to completion — pure-Python evaluation has no preemption
    points — but its result is discarded and nothing after it starts).  The
    session lets this propagate to the caller, so a serving layer enforcing
    request deadlines sees exactly one exception type for "gave up".
    """


class CancellationToken:
    """A thread-safe, one-shot "stop now" flag threaded through fan-out.

    The serving layer creates one per request and passes it down
    ``EngineSession.answer(..., cancel=token)``; when the request's deadline
    expires it calls :meth:`cancel` from any thread, and the runtime's
    collection loop aborts the remaining tasks (cancelling queued futures,
    draining the ones already on workers) instead of running the fan-out to
    completion for a caller that stopped listening.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise RunCancelled("fan-out cancelled by its cancellation token")

    def __repr__(self) -> str:
        return f"CancellationToken(cancelled={self.cancelled})"


@dataclass(frozen=True, eq=False)
class RuntimeTask:
    """One independent unit of fan-out work: a query task over one piece.

    ``task`` is the executor task constant (answer / satisfiable / count) to
    run **on this piece** — for sharded counting the session may hand the
    pieces the *answer* task and count the union itself.  ``use_core`` and
    ``force_strategy`` pin down planning so any runtime (in-process or
    remote) reproduces exactly the plan the session would execute.
    """

    task: str
    query: ConjunctiveQuery
    database: Database
    use_core: bool = False
    force_strategy: str | None = None
    label: str = ""


@dataclass
class TaskOutcome:
    """What one task produced, where, and how long it took."""

    value: object
    seconds: float
    worker: str


class ExecutionRuntime:
    """Interface every execution runtime implements.

    ``run`` executes every task and returns one :class:`TaskOutcome` per
    task, in task order.  ``run_local`` is the session's in-process
    evaluator (``task -> payload value``) — the inline and thread runtimes
    call it directly; distributed runtimes may ignore it and evaluate from
    the task's self-contained description instead.  ``parallel`` is the
    caller's per-call worker cap (``None`` = the runtime's default).
    ``cancel`` is an optional :class:`CancellationToken`: when it fires
    mid-call, ``run`` must stop starting tasks, leave no orphaned futures
    behind (cancel the queued ones, drain the running ones), and raise
    :class:`RunCancelled`.

    ``close`` permanently retires the instance: it sets :attr:`closed`,
    which the shared registry (:func:`runtime_for`) checks so a closed
    runtime is never handed out again.
    """

    name = "abstract"
    #: Sticky "this instance was retired" flag — see :meth:`close`.
    closed = False

    def run(
        self,
        tasks,
        run_local,
        parallel: int | None = None,
        cancel: CancellationToken | None = None,
    ) -> list[TaskOutcome]:
        raise NotImplementedError

    def stats(self) -> dict:
        """Operator-facing counters (shape varies per runtime)."""
        return {"name": self.name}

    def close(self) -> None:
        """Release any held resources (worker processes, resident data)."""
        self.closed = True

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    @staticmethod
    def _timed(run_local, task: RuntimeTask, worker: str) -> TaskOutcome:
        started = time.perf_counter()
        value = run_local(task)
        return TaskOutcome(value, time.perf_counter() - started, worker)


class InlineRuntime(ExecutionRuntime):
    """Sequential execution on the calling thread (no fan-out at all)."""

    name = RUNTIME_INLINE

    def run(
        self,
        tasks,
        run_local,
        parallel: int | None = None,
        cancel: CancellationToken | None = None,
    ) -> list[TaskOutcome]:
        outcomes = []
        for task in tasks:
            if cancel is not None:
                cancel.raise_if_cancelled()
            outcomes.append(self._timed(run_local, task, "inline"))
        return outcomes


class ThreadRuntime(ExecutionRuntime):
    """A per-call thread pool — the engine's historical fan-out behaviour.

    Shares every in-process cache and has near-zero dispatch cost, but the
    GIL serializes CPU-bound evaluation: use it for its cache locality and
    as the safe default, not for wall-clock speedups on pure-Python work.
    """

    name = RUNTIME_THREAD

    def __init__(self, max_workers: int = DEFAULT_THREAD_WORKERS) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(
        self,
        tasks,
        run_local,
        parallel: int | None = None,
        cancel: CancellationToken | None = None,
    ) -> list[TaskOutcome]:
        tasks = list(tasks)
        if cancel is not None:
            cancel.raise_if_cancelled()
        cap = self.max_workers if parallel is None else parallel
        workers = min(len(tasks), cap)
        if workers <= 1:
            outcomes = []
            for task in tasks:
                if cancel is not None:
                    cancel.raise_if_cancelled()
                outcomes.append(self._timed(run_local, task, "thread:main"))
            return outcomes

        def execute(task: RuntimeTask) -> TaskOutcome:
            # A task that reaches the front of the queue after cancellation
            # aborts before doing any evaluation work.
            if cancel is not None:
                cancel.raise_if_cancelled()
            # Label by the worker's index within its pool ("thread:0", ...)
            # rather than the pool-unique thread name: session stats
            # accumulate worker labels, and per-call pools would otherwise
            # grow that set without bound.
            name = threading.current_thread().name
            return self._timed(run_local, task, f"thread:{name.rsplit('_', 1)[-1]}")

        # The pool is per-call and shut down before returning (the context
        # manager waits), so whatever happens below — completion, a task
        # exception, cancellation — no future outlives the call.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(execute, task) for task in tasks]
            if cancel is None:
                return [future.result() for future in futures]
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done, timeout=_CANCEL_POLL_SECONDS
                )
                if cancel.cancelled and not_done:
                    for future in not_done:
                        future.cancel()
                    # Running tasks cannot be interrupted mid-evaluation;
                    # wait them out so the pool drains deterministically.
                    wait([f for f in not_done if not f.cancelled()])
                    raise RunCancelled(
                        f"thread fan-out cancelled with {len(not_done)} of "
                        f"{len(tasks)} tasks unfinished"
                    )
            # A worker that observed the token raises RunCancelled here.
            return [future.result() for future in futures]


# ----------------------------------------------------------------------
# The process runtime: persistent workers with resident, pre-indexed data
# ----------------------------------------------------------------------
# Worker-side globals (one copy per worker process).  The session is created
# lazily INSIDE the worker so fork never leaks the coordinator's caches, and
# the resident map is bounded so a long-lived worker cannot hoard every
# dataset it ever saw.
_WORKER_SESSION = None
_WORKER_RESIDENT: OrderedDict = OrderedDict()
#: Per-worker bound on resident pieces.  Sized well above the shard counts
#: the engine is exercised at (each piece is ~1/shards of its dataset, so
#: even at the cap this is a handful of full-database equivalents); a
#: workload that overflows it degrades to re-shipping, never to errors.
_WORKER_RESIDENT_CAP = 256

_REPLY_OK = "ok"
_REPLY_NEED_DATA = "need-data"

#: Payload kinds a task message can carry: ``None`` (token only), a full
#: :class:`~repro.cq.columnar.DatabaseWire`, or a
#: :class:`~repro.cq.columnar.DatabaseDelta` of just the appended rows.
_SHIP_FULL = "full"
_SHIP_DELTA = "delta"


def _worker_session():
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        # Imported here (not at module top) to keep the import graph acyclic:
        # session.py imports this module for its default runtime resolution.
        from repro.engine.session import EngineSession

        _WORKER_SESSION = EngineSession()
    return _WORKER_SESSION


def _worker_execute(message: tuple) -> tuple:
    """Run one task message inside a pool worker (module-level: must pickle).

    ``payload`` is either ``None`` (steady state: the token names a piece
    this worker already holds) or the pickled
    :class:`~repro.cq.columnar.DatabaseWire` bytes to decode and adopt.
    Returns ``(_REPLY_OK, value, seconds, pid)`` or — when the message named
    a dataset this worker does not hold and carried no payload —
    ``(_REPLY_NEED_DATA, token, pid)`` so the coordinator can re-ship to
    this worker (the recovery path: residency was lost to a restart or the
    worker-side cache bound).
    """
    token, payload, task, query, use_core, force_strategy = message
    database = _WORKER_RESIDENT.get(token)
    if database is None:
        if payload is None or payload[0] != _SHIP_FULL:
            # Nothing resident and no full payload: a bare token or a delta
            # cannot (re)build the piece — ask the coordinator to ship.
            return (_REPLY_NEED_DATA, token, os.getpid())
        database = pickle.loads(payload[1]).decode().enable_atom_cache()
        _WORKER_RESIDENT[token] = database
        while len(_WORKER_RESIDENT) > _WORKER_RESIDENT_CAP:
            _WORKER_RESIDENT.popitem(last=False)
    else:
        _WORKER_RESIDENT.move_to_end(token)
        if payload is not None:
            if payload[0] == _SHIP_FULL:
                # The coordinator chose a full re-ship (e.g. recovery after
                # a need-data reply): replace the resident piece outright.
                database = pickle.loads(payload[1]).decode().enable_atom_cache()
                _WORKER_RESIDENT[token] = database
            else:
                delta = pickle.loads(payload[1])
                try:
                    delta.apply(database)
                except DeltaMismatchError:
                    # The resident copy is not at the delta's base version —
                    # drop it and ask for a full ship rather than diverge.
                    del _WORKER_RESIDENT[token]
                    return (_REPLY_NEED_DATA, token, os.getpid())
    session = _worker_session()
    started = time.perf_counter()
    plan = session.plan(query, use_core=use_core, force_strategy=force_strategy)
    result = session._run(task, query, database, plan, False)
    return (_REPLY_OK, result.value, time.perf_counter() - started, os.getpid())


@dataclass
class _WorkerSlot:
    """One addressable worker: a single-process executor plus the
    coordinator's book-keeping about it.

    ``resident`` is the coordinator's view of what the worker holds: a map
    ``token -> {relation name: version}`` recording the storage versions
    the piece was last synced to on that worker (marked at submit time —
    submissions to one slot execute FIFO, so a later token-only task can
    never overtake the shipment in front of it).  A database whose versions
    moved past the recorded map ships only a
    :class:`~repro.cq.columnar.DatabaseDelta` of the appended rows.
    ``generation`` makes recovery idempotent: every future remembers the
    generation it was submitted against, and only the first failure
    observer actually replaces the slot.
    """

    index: int
    pool: ProcessPoolExecutor
    resident: dict = field(default_factory=dict)
    generation: int = 0
    pid: int | None = None


class ProcessRuntime(ExecutionRuntime):
    """Owner-routed persistent workers with warm caches and resident shards.

    Parameters
    ----------
    max_workers:
        Worker count; defaults to ``os.cpu_count()``.  Each worker is its
        own single-process executor, so the coordinator — not the pool's
        scheduler — decides placement.  On a single-core host this
        degenerates to one worker; sharded calls still win by executing
        against resident, pre-indexed shards.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (fast startup, inherits loaded modules), ``"spawn"``
        elsewhere.
    max_datasets:
        Coordinator-side bound on tracked resident *pieces*, dropped
        least-recently-used together with their ownership and residency
        records.  Must comfortably exceed ``concurrent datasets x shards``
        — a sharded call whose pieces overflow the bound re-mints tokens
        every call and re-ships every piece, silently losing the steady
        state this runtime exists for.  The default (256) covers every
        engine workload; raise it for wider fan-outs.

    Dataset identity: a piece is resident under a token minted for the
    database *object* (checked by identity through a weakref).  Growth
    through the versioned storage API (``add_fact`` / ``Relation.add`` —
    the only mutators; there is no removal API) keeps the token: the
    coordinator records the relation versions each worker's copy was last
    synced to, and a grown piece ships a
    :class:`~repro.cq.columnar.DatabaseDelta` of just its appended rows to
    the owning worker instead of re-shipping the piece (counted by
    ``delta_shipments`` / ``delta_bytes`` in the ledger).  A worker whose
    resident copy cannot accept a delta (it desynced, restarted, or aged
    the piece out) answers need-data and gets a full re-ship.  Callers
    mutating ``Relation.tuples`` directly are off-API and on their own.

    The token map holds each served database through a **weak** reference:
    a long-lived runtime must not keep up to ``max_datasets`` large
    databases alive after every caller dropped them (the map used to pin
    them, a real leak for a serving process cycling tenants).  The id-reuse
    hazard that pinning papered over is guarded explicitly instead: a
    token is only ever served back when the stored weakref still yields
    *the same object* — a recycled ``id()`` finds a dead (or differing)
    entry, retires its token and its routing/residency records, and mints
    a fresh one, so a worker can never be asked to serve a stale resident
    piece for a new database that happens to reuse an address.

    Placement: tokens are assigned owning workers by
    :func:`~repro.engine.sharding.assign_pieces` over the worker indexes
    (deterministic, exactly ±1 balanced per call), and the piece ships —
    as pickled :class:`~repro.cq.columnar.DatabaseWire` bytes — together
    with the first task routed to the owner.  In steady state a piece is
    resident on exactly one worker and a message carries a token, not data.
    """

    name = RUNTIME_PROCESS

    #: Submit-time attempts before giving up on a task (each failed attempt
    #: replaces the broken worker, so >1 only loses to repeated crashes).
    _SUBMIT_ATTEMPTS = 3

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        max_datasets: int = 256,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or max(1, os.cpu_count() or 1)
        self._start_method = start_method
        self._slots: list[_WorkerSlot] | None = None
        self._lock = threading.Lock()
        self._datasets: OrderedDict = OrderedDict()
        self._max_datasets = max_datasets
        self._next_token = 0
        #: token -> owning worker index (the routing table).
        self._owner: dict[str, int] = {}
        self.tasks_dispatched = 0
        self.tasks_owner_routed = 0
        self.tasks_replica_routed = 0
        self.tasks_cancelled = 0
        self.shipments = 0
        self.shipment_bytes = 0
        self.delta_shipments = 0
        self.delta_bytes = 0
        self.tokens_retired = 0
        self.recovery_reships = 0
        self.worker_restarts = 0

    # -- pool lifecycle -------------------------------------------------
    def _context(self):
        import multiprocessing

        method = self._start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        return multiprocessing.get_context(method)

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=1, mp_context=self._context())

    def _ensure_slots_locked(self) -> list[_WorkerSlot]:
        if self._slots is None:
            self._slots = [
                _WorkerSlot(index, self._new_pool())
                for index in range(self.max_workers)
            ]
        return self._slots

    def _recover_worker(self, slot_index: int, generation: int) -> None:
        """Replace ONE dead worker; reassign and forget only its pieces.

        Idempotent per generation: concurrent failure observers (several
        futures of one broken worker) all call in, only the first acts.
        The dead worker's tokens move to the survivors with minimal
        movement (:func:`~repro.engine.sharding.reassign_pieces`); every
        other worker keeps its residency, so recovery re-ships exactly the
        dead worker's pieces.  With one worker there are no survivors: the
        replacement keeps the ownership and the pieces simply re-ship to it.
        """
        with self._lock:
            slots = self._slots
            if slots is None:
                return
            slot = slots[slot_index]
            if slot.generation != generation:
                return
            old_pool = slot.pool
            slots[slot_index] = _WorkerSlot(
                slot_index, self._new_pool(), generation=generation + 1
            )
            self.worker_restarts += 1
            if self.max_workers > 1 and any(
                owner == slot_index for owner in self._owner.values()
            ):
                self._owner = reassign_pieces(
                    self._owner, slot_index, range(self.max_workers)
                )
        old_pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        with self._lock:
            self.closed = True
            slots, self._slots = self._slots, None
            self._datasets.clear()
            self._owner.clear()
        for slot in slots or ():
            slot.pool.shutdown(wait=True, cancel_futures=True)

    # -- dataset residency ----------------------------------------------
    @staticmethod
    def _versions(database: Database) -> dict:
        """The database's per-relation version map — what the shipping
        ledger records per worker so appends ship as deltas."""
        return {
            name: relation.version
            for name, relation in database.relations.items()
        }

    def _token_for(self, database: Database) -> str:
        """The stable token for ``database``, minted on first sight and
        **kept across appends** (versions are tracked per worker in the
        residency map, not in the token).

        The map holds only a weakref to the database (callers dropping a
        dataset must actually free it — the runtime's own call frames keep
        it alive for the duration of a ``run``).  Because the key is
        ``id(database)``, a dead entry's key can be *reached again* by a new
        database that recycles the address; the identity check below catches
        exactly that and retires the dead entry's token instead of aliasing
        it onto the newcomer.
        """
        key = id(database)
        with self._lock:
            entry = self._datasets.get(key)
            if entry is not None:
                token, ref = entry
                if ref() is database:
                    self._datasets.move_to_end(key)
                    return token
                # id reuse (or a dead ref): this is a different database
                # wearing a recycled address — never serve the old token.
                del self._datasets[key]
                self._drop_token_records_locked(token)
            token = f"ds{self._next_token}"
            self._next_token += 1
            self._datasets[key] = (token, weakref.ref(database))
            while len(self._datasets) > self._max_datasets:
                _, (evicted, _) = self._datasets.popitem(last=False)
                self._drop_token_records_locked(evicted)
            return token

    def _drop_token_records_locked(self, token: str) -> None:
        # Tokens are never reused (monotonic counter), so dropping the
        # routing and residency records is enough: a worker still holding
        # the piece ages it out of its own LRU.  ``tokens_retired`` keeps
        # the shipping ledger reconcilable: a retired token's shipments
        # stay counted after its residency records are gone.
        self.tokens_retired += 1
        self._owner.pop(token, None)
        for slot in self._slots or ():
            slot.resident.pop(token, None)

    # -- routing ---------------------------------------------------------
    def _route(self, tokens: list[str], parallel: int | None) -> list[int]:
        """The target worker index for each task, under the ownership rule.

        Single-task tokens go to their owner.  A token with ``m > 1`` tasks
        in this call (the batch pipeline: many queries over one database)
        fans out round-robin over its top-``min(m, workers)``
        rendezvous-ranked workers — owner first — trading replication for
        parallelism *explicitly*; a sharded call (one task per piece) never
        replicates.
        """
        with self._lock:
            self._ensure_slots_locked()
            fresh = sorted({t for t in tokens if t not in self._owner})
            if fresh:
                self._owner.update(
                    assign_pieces(fresh, range(self.max_workers))
                )
            by_token: dict[str, list[int]] = {}
            for index, token in enumerate(tokens):
                by_token.setdefault(token, []).append(index)
            targets = [0] * len(tokens)
            for token, indexes in by_token.items():
                owner = self._owner[token]
                if len(indexes) == 1:
                    targets[indexes[0]] = owner
                    continue
                cap = min(len(indexes), self.max_workers)
                if parallel is not None:
                    cap = max(1, min(cap, parallel))
                replicas = [owner] + [
                    worker
                    for worker in rendezvous_rank(token, range(self.max_workers))
                    if worker != owner
                ]
                replicas = replicas[:cap]
                for position, index in enumerate(indexes):
                    targets[index] = replicas[position % len(replicas)]
        return targets

    # -- execution -------------------------------------------------------
    def run(
        self,
        tasks,
        run_local,
        parallel: int | None = None,
        cancel: CancellationToken | None = None,
    ) -> list[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        if cancel is not None:
            cancel.raise_if_cancelled()
        tokens = [self._token_for(task.database) for task in tasks]
        targets = self._route(tokens, parallel)
        # One wire encoding per token per call, shared by every shipment of
        # the piece in this call (replicas, recovery retries).  Delta blobs
        # memoize per (token, base versions): workers synced at the same
        # point share one encoding.
        blobs: dict[str, bytes] = {}
        delta_blobs: dict[tuple, bytes] = {}

        def blob_for(token: str, database: Database) -> bytes:
            blob = blobs.get(token)
            if blob is None:
                blob = pickle.dumps(
                    database.to_wire(), protocol=pickle.HIGHEST_PROTOCOL
                )
                blobs[token] = blob
            return blob

        def delta_blob_for(token: str, database: Database, since: dict) -> bytes:
            key = (token, tuple(sorted(since.items())))
            blob = delta_blobs.get(key)
            if blob is None:
                blob = pickle.dumps(
                    encode_delta(database, since),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                delta_blobs[key] = blob
            return blob

        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        #: future -> (task index, slot index, generation, token)
        pending: dict = {}
        for index, (task, token, target) in enumerate(zip(tasks, tokens, targets)):
            future, meta = self._submit(
                index, task, token, target, False, blob_for, delta_blob_for
            )
            pending[future] = meta
        # Collect with a FIRST_COMPLETED loop — never in submission order —
        # so a need-data re-shipment or a death retry launches the moment
        # its reply arrives instead of queueing behind a slow unrelated
        # task's result.  With a cancellation token the wait becomes a
        # short poll so a fired token aborts within one poll interval.
        while pending:
            done, _ = wait(
                list(pending),
                return_when=FIRST_COMPLETED,
                timeout=None if cancel is None else _CANCEL_POLL_SECONDS,
            )
            if cancel is not None and cancel.cancelled:
                self._abandon(pending)
                raise RunCancelled(
                    f"process fan-out cancelled with {len(pending)} of "
                    f"{len(tasks)} tasks unfinished"
                )
            for future in done:
                index, slot_index, generation, token = pending.pop(future)
                try:
                    reply = future.result()
                except (BrokenProcessPool, CancelledError):
                    # This worker died mid-task.  Replace it (idempotently),
                    # reroute to the token's current owner — recovery may
                    # have just moved it — and re-ship there if needed.
                    self._recover_worker(slot_index, generation)
                    retry_target = self._owner_of(token, slot_index)
                    future, meta = self._submit(
                        index, tasks[index], token, retry_target, False,
                        blob_for, delta_blob_for,
                    )
                    pending[future] = meta
                    continue
                if reply[0] == _REPLY_NEED_DATA:
                    # Recovery path: the worker lost the piece (restart or
                    # its own cache bound).  Re-ship to the same worker.
                    with self._lock:
                        self.recovery_reships += 1
                    future, meta = self._submit(
                        index, tasks[index], token, slot_index, True,
                        blob_for, delta_blob_for,
                    )
                    pending[future] = meta
                    continue
                _, value, seconds, pid = reply
                outcomes[index] = TaskOutcome(value, seconds, f"pid:{pid}")
                with self._lock:
                    if self._slots is not None:
                        slot = self._slots[slot_index]
                        if slot.generation == generation:
                            slot.pid = pid
        with self._lock:
            self.tasks_dispatched += len(tasks)
            for token, target in zip(tokens, targets):
                if target == self._owner.get(token, target):
                    self.tasks_owner_routed += 1
                else:
                    self.tasks_replica_routed += 1
        return outcomes  # type: ignore[return-value]

    def _abandon(self, pending: dict) -> None:
        """Settle every outstanding future of a cancelled call.

        Queued futures cancel outright (single-worker pools execute FIFO, so
        a cancelled future never starts); a future already executing on a
        worker cannot be interrupted, so it is drained — the worker finishes,
        the result is discarded — which keeps the pools clean for the next
        call and leaves nothing orphaned.
        """
        for future in pending:
            future.cancel()
        running = [f for f in pending if not f.cancelled()]
        if running:
            wait(running)
            for future in running:
                # Retrieve outcomes so abandoned failures don't warn at gc.
                if not future.cancelled():
                    future.exception()
        with self._lock:
            self.tasks_cancelled += len(pending)

    def _owner_of(self, token: str, fallback: int) -> int:
        with self._lock:
            return self._owner.get(token, fallback)

    def _submit(
        self,
        index: int,
        task: RuntimeTask,
        token: str,
        target: int,
        force_ship: bool,
        blob_for,
        delta_blob_for,
    ) -> tuple:
        """Submit one task to one worker, shipping what the worker's copy is
        missing: the full wire form when the coordinator does not believe
        the piece resident there (or when ``force_ship`` says the worker
        just told us otherwise), only a :class:`~repro.cq.columnar
        .DatabaseDelta` of the appended rows when the copy is resident but
        its synced versions lag the database, and nothing in steady state.
        A broken worker at submit time is replaced and the task rerouted, a
        bounded number of times."""
        for attempt in range(self._SUBMIT_ATTEMPTS):
            current = self._versions(task.database)
            with self._lock:
                slots = self._ensure_slots_locked()
                slot = slots[target]
                generation = slot.generation
                synced = None if force_ship else slot.resident.get(token)
            if synced is None:
                kind = _SHIP_FULL
                payload = (_SHIP_FULL, blob_for(token, task.database))
            elif synced != current:
                kind = _SHIP_DELTA
                payload = (
                    _SHIP_DELTA,
                    delta_blob_for(token, task.database, synced),
                )
            else:
                kind = None
                payload = None
            message = (
                token, payload, task.task, task.query,
                task.use_core, task.force_strategy,
            )
            try:
                with self._lock:
                    slot = slots[target]
                    if slot.generation != generation:
                        # Lost a race with recovery: re-evaluate shipping
                        # against the fresh (empty-residency) slot.
                        generation = slot.generation
                        if kind != _SHIP_FULL and token not in slot.resident:
                            kind = _SHIP_FULL
                            payload = (_SHIP_FULL, blob_for(token, task.database))
                            message = message[:1] + (payload,) + message[2:]
                    future = slot.pool.submit(_worker_execute, message)
                    if kind is not None:
                        slot.resident[token] = current
                        if kind == _SHIP_FULL:
                            self.shipments += 1
                            self.shipment_bytes += len(payload[1])
                        else:
                            self.delta_shipments += 1
                            self.delta_bytes += len(payload[1])
                return future, (index, target, generation, token)
            except BrokenProcessPool:
                self._recover_worker(target, generation)
                target = self._owner_of(token, target)
                force_ship = False
        raise BrokenProcessPool(
            f"worker for task {index} kept dying across "
            f"{self._SUBMIT_ATTEMPTS} submission attempts"
        )

    # -- introspection ---------------------------------------------------
    def routing(self) -> dict:
        """Snapshot of the ownership table: ``token -> worker index``."""
        with self._lock:
            return dict(self._owner)

    def residency(self) -> dict:
        """Snapshot of coordinator-side residency: ``worker index ->
        frozenset of resident tokens``."""
        with self._lock:
            return {
                slot.index: frozenset(slot.resident)
                for slot in self._slots or ()
            }

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "max_workers": self.max_workers,
                "pool_live": self._slots is not None,
                "resident_datasets": len(self._datasets),
                "tasks_dispatched": self.tasks_dispatched,
                "tasks_owner_routed": self.tasks_owner_routed,
                "tasks_replica_routed": self.tasks_replica_routed,
                "tasks_cancelled": self.tasks_cancelled,
                "shipments": self.shipments,
                "shipment_bytes": self.shipment_bytes,
                "delta_shipments": self.delta_shipments,
                "delta_bytes": self.delta_bytes,
                "tokens_retired": self.tokens_retired,
                "recovery_reships": self.recovery_reships,
                "worker_restarts": self.worker_restarts,
                "resident_by_worker": {
                    slot.index: len(slot.resident)
                    for slot in self._slots or ()
                },
                "worker_pids": {
                    slot.index: slot.pid for slot in self._slots or ()
                },
            }


# ----------------------------------------------------------------------
# Runtime registry: named, pluggable, with shared lazily-created defaults
# ----------------------------------------------------------------------
_FACTORIES: dict = {
    RUNTIME_INLINE: InlineRuntime,
    RUNTIME_THREAD: ThreadRuntime,
    RUNTIME_PROCESS: ProcessRuntime,
}
_SHARED: dict[str, ExecutionRuntime] = {}
_registry_lock = threading.Lock()


def register_runtime(name: str, factory, replace: bool = False) -> None:
    """Register a runtime factory under ``name`` (mirrors the backend
    registry: :func:`repro.engine.backends.register_backend`)."""
    with _registry_lock:
        if name in _FACTORIES and not replace:
            raise ValueError(
                f"a runtime named {name!r} is already registered "
                "(pass replace=True to substitute it)"
            )
        _FACTORIES[name] = factory
        _SHARED.pop(name, None)


def registered_runtimes() -> tuple:
    """The names every session resolves ``runtime="..."`` against."""
    with _registry_lock:
        return tuple(sorted(_FACTORIES))


def runtime_for(spec) -> ExecutionRuntime:
    """Resolve a runtime argument: an instance passes through; a name maps
    to one shared, lazily created instance per process (worker pools are
    expensive — sessions share them); ``None`` means the default
    :class:`ThreadRuntime`.

    A shared instance that was **closed** — directly by a caller, or by the
    :func:`shutdown_runtimes` atexit hook firing early in a long-lived
    embedder — is lazily replaced with a fresh instance rather than handed
    out dead: ``close()`` marks the instance (:attr:`ExecutionRuntime
    .closed`) and resolution never returns a marked one.
    """
    if isinstance(spec, ExecutionRuntime):
        return spec
    if spec is None:
        spec = RUNTIME_THREAD
    with _registry_lock:
        if spec not in _FACTORIES:
            raise ValueError(
                f"unknown runtime {spec!r}; registered: {sorted(_FACTORIES)}"
            )
        runtime = _SHARED.get(spec)
        if runtime is None or runtime.closed:
            runtime = _FACTORIES[spec]()
            _SHARED[spec] = runtime
        return runtime


def shutdown_runtimes() -> None:
    """Close every shared runtime (atexit hook; also used by tests)."""
    with _registry_lock:
        shared = dict(_SHARED)
        _SHARED.clear()
    for runtime in shared.values():
        runtime.close()


atexit.register(shutdown_runtimes)
