"""Pluggable execution runtimes: where the engine's fan-out work runs.

The session's scaling paths — sharded single-query execution and the batch
pipeline — both end in the same shape of work: a list of *independent tasks*
(evaluate this query over this piece of data) whose results are combined
exactly.  This module owns the question of **where those tasks run**:

* :class:`InlineRuntime` — sequentially, on the calling thread.  Zero
  overhead, zero parallelism; the baseline every other runtime is measured
  against.
* :class:`ThreadRuntime` — on a per-call thread pool.  This is the engine's
  historical behaviour, extracted from :class:`~repro.engine.session
  .EngineSession`: cheap, shares all in-process caches, but the GIL
  serializes CPU-bound evaluation, so within one process it is a scale-out
  seam rather than a speedup.
* :class:`ProcessRuntime` — on a :class:`~concurrent.futures
  .ProcessPoolExecutor` of **persistent workers**.  Workers sidestep the
  GIL and keep warm state between calls: a per-worker
  :class:`~repro.engine.session.EngineSession` (analysis/plan caches) and a
  bounded cache of **resident databases** — shard pieces shipped once, then
  referenced by token, with their atom views and key indexes memoized via
  :meth:`~repro.cq.database.Database.enable_atom_cache`.  A repeated
  sharded query therefore pays join work plus a small IPC envelope, not
  re-partitioning, re-scanning, or re-indexing.

Serialization contract (what crosses the process boundary):

* **tasks** ship as ``(token, payload, task, query, use_core,
  force_strategy)`` tuples.  ``query`` is the
  :class:`~repro.cq.query.ConjunctiveQuery` itself (compact, pickles
  cleanly); the *plan* is deliberately NOT shipped — the worker re-plans
  from the same inputs through its warm session, which is cheaper than
  pickling a plan's decomposition and reproduces the coordinator's plan
  exactly because planning is deterministic.  Plans whose strategy the
  planner cannot reproduce (hand-built plans for unregistered strategies)
  are rejected by the worker rather than silently re-routed.
* **data** ships lazily: the first message for a token carries no payload;
  a worker that does not hold the token answers ``need-data`` and the
  coordinator re-submits with the piece attached.  Steady state ships
  tokens only.  ``Database.__getstate__`` / ``NamedRelation.__getstate__``
  /  ``Hypergraph.__getstate__`` drop every memoized index and cache, so
  pieces cross the boundary as raw tuples and re-index on the worker.
* **results** return as ``(value, seconds, pid)`` — the answer payload
  (rows / bool / count), the worker-side execution time, and the worker
  identity for the ``timings["runtime"]`` record.

Runtimes are pluggable the same way strategy backends are: third-party
runtimes register through :func:`register_runtime` and become addressable
by name in ``EngineSession.answer(..., runtime="...")``.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.cq.database import Database
from repro.cq.query import ConjunctiveQuery

RUNTIME_INLINE = "inline"
RUNTIME_THREAD = "thread"
RUNTIME_PROCESS = "process"

#: Upper bound on the threads one fan-out call uses by default: shard counts
#: are a data-layout choice, not a parallelism dial, so a 64-shard call must
#: not spawn 64 threads.
DEFAULT_THREAD_WORKERS = 8


@dataclass(frozen=True, eq=False)
class RuntimeTask:
    """One independent unit of fan-out work: a query task over one piece.

    ``task`` is the executor task constant (answer / satisfiable / count) to
    run **on this piece** — for sharded counting the session may hand the
    pieces the *answer* task and count the union itself.  ``use_core`` and
    ``force_strategy`` pin down planning so any runtime (in-process or
    remote) reproduces exactly the plan the session would execute.
    """

    task: str
    query: ConjunctiveQuery
    database: Database
    use_core: bool = False
    force_strategy: str | None = None
    label: str = ""


@dataclass
class TaskOutcome:
    """What one task produced, where, and how long it took."""

    value: object
    seconds: float
    worker: str


class ExecutionRuntime:
    """Interface every execution runtime implements.

    ``run`` executes every task and returns one :class:`TaskOutcome` per
    task, in task order.  ``run_local`` is the session's in-process
    evaluator (``task -> payload value``) — the inline and thread runtimes
    call it directly; distributed runtimes may ignore it and evaluate from
    the task's self-contained description instead.  ``parallel`` is the
    caller's per-call worker cap (``None`` = the runtime's default).
    """

    name = "abstract"

    def run(self, tasks, run_local, parallel: int | None = None) -> list[TaskOutcome]:
        raise NotImplementedError

    def stats(self) -> dict:
        """Operator-facing counters (shape varies per runtime)."""
        return {"name": self.name}

    def close(self) -> None:
        """Release any held resources (worker processes, resident data)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    @staticmethod
    def _timed(run_local, task: RuntimeTask, worker: str) -> TaskOutcome:
        started = time.perf_counter()
        value = run_local(task)
        return TaskOutcome(value, time.perf_counter() - started, worker)


class InlineRuntime(ExecutionRuntime):
    """Sequential execution on the calling thread (no fan-out at all)."""

    name = RUNTIME_INLINE

    def run(self, tasks, run_local, parallel: int | None = None) -> list[TaskOutcome]:
        return [self._timed(run_local, task, "inline") for task in tasks]


class ThreadRuntime(ExecutionRuntime):
    """A per-call thread pool — the engine's historical fan-out behaviour.

    Shares every in-process cache and has near-zero dispatch cost, but the
    GIL serializes CPU-bound evaluation: use it for its cache locality and
    as the safe default, not for wall-clock speedups on pure-Python work.
    """

    name = RUNTIME_THREAD

    def __init__(self, max_workers: int = DEFAULT_THREAD_WORKERS) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(self, tasks, run_local, parallel: int | None = None) -> list[TaskOutcome]:
        tasks = list(tasks)
        cap = self.max_workers if parallel is None else parallel
        workers = min(len(tasks), cap)
        if workers <= 1:
            return [self._timed(run_local, task, "thread:main") for task in tasks]

        def execute(task: RuntimeTask) -> TaskOutcome:
            # Label by the worker's index within its pool ("thread:0", ...)
            # rather than the pool-unique thread name: session stats
            # accumulate worker labels, and per-call pools would otherwise
            # grow that set without bound.
            name = threading.current_thread().name
            return self._timed(run_local, task, f"thread:{name.rsplit('_', 1)[-1]}")

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute, tasks))


# ----------------------------------------------------------------------
# The process runtime: persistent workers with resident, pre-indexed data
# ----------------------------------------------------------------------
# Worker-side globals (one copy per worker process).  The session is created
# lazily INSIDE the worker so fork never leaks the coordinator's caches, and
# the resident map is bounded so a long-lived worker cannot hoard every
# dataset it ever saw.
_WORKER_SESSION = None
_WORKER_RESIDENT: OrderedDict = OrderedDict()
#: Per-worker bound on resident pieces.  Sized well above the shard counts
#: the engine is exercised at (each piece is ~1/shards of its dataset, so
#: even at the cap this is a handful of full-database equivalents); a
#: workload that overflows it degrades to re-shipping, never to errors.
_WORKER_RESIDENT_CAP = 256

_REPLY_OK = "ok"
_REPLY_NEED_DATA = "need-data"


def _worker_session():
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        # Imported here (not at module top) to keep the import graph acyclic:
        # session.py imports this module for its default runtime resolution.
        from repro.engine.session import EngineSession

        _WORKER_SESSION = EngineSession()
    return _WORKER_SESSION


def _worker_execute(message: tuple) -> tuple:
    """Run one task message inside a pool worker (module-level: must pickle).

    Returns ``(_REPLY_OK, value, seconds, pid)`` or — when the message named
    a dataset this worker does not hold and carried no payload —
    ``(_REPLY_NEED_DATA, token, pid)`` so the coordinator can re-submit with
    the data attached.
    """
    token, payload, task, query, use_core, force_strategy = message
    database = _WORKER_RESIDENT.get(token)
    if database is None:
        if payload is None:
            return (_REPLY_NEED_DATA, token, os.getpid())
        database = payload.enable_atom_cache()
        _WORKER_RESIDENT[token] = database
        while len(_WORKER_RESIDENT) > _WORKER_RESIDENT_CAP:
            _WORKER_RESIDENT.popitem(last=False)
    else:
        _WORKER_RESIDENT.move_to_end(token)
    session = _worker_session()
    started = time.perf_counter()
    plan = session.plan(query, use_core=use_core, force_strategy=force_strategy)
    result = session._run(task, query, database, plan, False)
    return (_REPLY_OK, result.value, time.perf_counter() - started, os.getpid())


class ProcessRuntime(ExecutionRuntime):
    """Persistent worker processes with warm caches and resident datasets.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  On a single-core host
        the pool degenerates to one worker — sharded calls still win by
        executing against resident, pre-indexed shards, and scale out on
        real cores without any code change.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (fast startup, inherits loaded modules), ``"spawn"``
        elsewhere.
    max_datasets:
        Coordinator-side bound on tracked resident *pieces*.  Each entry
        pins its database object (so Python cannot recycle its ``id`` while
        workers hold the token) and is dropped least-recently-used.  Must
        comfortably exceed ``concurrent datasets x shards`` — a sharded
        call whose pieces overflow the bound re-mints tokens every call and
        re-ships every piece, silently losing the steady state this runtime
        exists for.  The default (256) covers every engine workload; raise
        it for wider fan-outs.

    Dataset identity: a piece is resident under a token minted for
    ``(id(piece), relation cardinalities)``.  The cardinality fingerprint
    makes any growth through the storage API (``add_fact`` /
    ``Relation.add`` — the only mutators; there is no removal API) mint a
    fresh token, so workers can never serve a stale shard for a database
    that changed shape.  Callers mutating ``Relation.tuples`` directly are
    off-API and on their own.
    """

    name = RUNTIME_PROCESS

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        max_datasets: int = 256,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or max(1, os.cpu_count() or 1)
        self._start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._datasets: OrderedDict = OrderedDict()
        self._max_datasets = max_datasets
        self._next_token = 0
        self.tasks_dispatched = 0
        self.shipments = 0
        self.pool_restarts = 0

    # -- pool lifecycle -------------------------------------------------
    def _context(self):
        import multiprocessing

        method = self._start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        return multiprocessing.get_context(method)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=self._context()
                )
            return self._pool

    def _reset_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self.pool_restarts += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._datasets.clear()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- dataset residency ----------------------------------------------
    @staticmethod
    def _fingerprint(database: Database) -> tuple:
        return tuple(
            sorted(
                (name, len(relation.tuples))
                for name, relation in database.relations.items()
            )
        )

    def _token_for(self, database: Database) -> str:
        key = (id(database), self._fingerprint(database))
        with self._lock:
            entry = self._datasets.get(key)
            if entry is not None and entry[1] is database:
                self._datasets.move_to_end(key)
                return entry[0]
            token = f"ds{self._next_token}"
            self._next_token += 1
            self._datasets[key] = (token, database)
            while len(self._datasets) > self._max_datasets:
                self._datasets.popitem(last=False)
            return token

    def _encode(self, task: RuntimeTask, include_payload: bool) -> tuple:
        return (
            self._token_for(task.database),
            task.database if include_payload else None,
            task.task,
            task.query,
            task.use_core,
            task.force_strategy,
        )

    # -- execution -------------------------------------------------------
    def run(self, tasks, run_local, parallel: int | None = None) -> list[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        try:
            return self._run_once(tasks)
        except BrokenProcessPool:
            # A worker died (OOM, kill): restart the pool and retry once.
            # Workers lose their resident data, which the need-data protocol
            # re-ships transparently.
            self._reset_pool()
            return self._run_once(tasks)

    def _run_once(self, tasks: list[RuntimeTask]) -> list[TaskOutcome]:
        pool = self._ensure_pool()
        futures = [
            pool.submit(_worker_execute, self._encode(task, include_payload=False))
            for task in tasks
        ]
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        # Collect every first-round reply before resolving any retry, and
        # submit ALL need-data re-shipments before blocking on the first:
        # cold-start shipments then overlap across the pool instead of
        # serializing one pickle+execute round-trip at a time.
        retries: list[tuple[int, object]] = []
        for index, future in enumerate(futures):
            reply = future.result()
            if reply[0] == _REPLY_NEED_DATA:
                with self._lock:
                    self.shipments += 1
                retries.append(
                    (
                        index,
                        pool.submit(
                            _worker_execute,
                            self._encode(tasks[index], include_payload=True),
                        ),
                    )
                )
                continue
            _, value, seconds, pid = reply
            outcomes[index] = TaskOutcome(value, seconds, f"pid:{pid}")
        for index, retry in retries:
            _, value, seconds, pid = retry.result()
            outcomes[index] = TaskOutcome(value, seconds, f"pid:{pid}")
        with self._lock:
            self.tasks_dispatched += len(tasks)
        return outcomes  # type: ignore[return-value]

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "max_workers": self.max_workers,
                "pool_live": self._pool is not None,
                "resident_datasets": len(self._datasets),
                "tasks_dispatched": self.tasks_dispatched,
                "shipments": self.shipments,
                "pool_restarts": self.pool_restarts,
            }


# ----------------------------------------------------------------------
# Runtime registry: named, pluggable, with shared lazily-created defaults
# ----------------------------------------------------------------------
_FACTORIES: dict = {
    RUNTIME_INLINE: InlineRuntime,
    RUNTIME_THREAD: ThreadRuntime,
    RUNTIME_PROCESS: ProcessRuntime,
}
_SHARED: dict[str, ExecutionRuntime] = {}
_registry_lock = threading.Lock()


def register_runtime(name: str, factory, replace: bool = False) -> None:
    """Register a runtime factory under ``name`` (mirrors the backend
    registry: :func:`repro.engine.backends.register_backend`)."""
    with _registry_lock:
        if name in _FACTORIES and not replace:
            raise ValueError(
                f"a runtime named {name!r} is already registered "
                "(pass replace=True to substitute it)"
            )
        _FACTORIES[name] = factory
        _SHARED.pop(name, None)


def registered_runtimes() -> tuple:
    """The names every session resolves ``runtime="..."`` against."""
    with _registry_lock:
        return tuple(sorted(_FACTORIES))


def runtime_for(spec) -> ExecutionRuntime:
    """Resolve a runtime argument: an instance passes through; a name maps
    to one shared, lazily created instance per process (worker pools are
    expensive — sessions share them); ``None`` means the default
    :class:`ThreadRuntime`."""
    if isinstance(spec, ExecutionRuntime):
        return spec
    if spec is None:
        spec = RUNTIME_THREAD
    with _registry_lock:
        if spec not in _FACTORIES:
            raise ValueError(
                f"unknown runtime {spec!r}; registered: {sorted(_FACTORIES)}"
            )
        runtime = _SHARED.get(spec)
        if runtime is None:
            runtime = _FACTORIES[spec]()
            _SHARED[spec] = runtime
        return runtime


def shutdown_runtimes() -> None:
    """Close every shared runtime (atexit hook; also used by tests)."""
    with _registry_lock:
        shared = dict(_SHARED)
        _SHARED.clear()
    for runtime in shared.values():
        runtime.close()


atexit.register(shutdown_runtimes)
