"""The query planner: certified structure in, explainable execution plan out.

Dispatch mirrors how width-aware systems (HyperBench-style) pick evaluation
routes:

* **acyclic** query hypergraph (GYO join tree exists) — direct Yannakakis on
  the width-1 join tree; no decomposition search is ever invoked;
* **cyclic with certified ghw within the width limit** — GHD-guided
  evaluation (Proposition 2.2): bag materialisation costs
  ``O(||D||^k)`` for the certified width ``k``, then Yannakakis;
* otherwise — the indexed-backtracking solver
  (:mod:`repro.cq.homomorphism`), whose cost is not structure-bounded but
  whose constants are small.

Every :class:`Plan` carries the witnessing decomposition and a human-readable
cost rationale, so a caller can always ask *why* a strategy was chosen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.cq.query import ConjunctiveQuery
from repro.cq.statistics import ORDERING_COST, join_ordering
from repro.engine.analysis import LRUCache, QueryAnalysis
from repro.widths.ghd import GeneralizedHypertreeDecomposition

STRATEGY_TRIVIAL = "trivial"
STRATEGY_YANNAKAKIS = "direct-yannakakis"
STRATEGY_GHD = "ghd-guided"
STRATEGY_BACKTRACKING = "indexed-backtracking"

#: Widest GHD the planner will evaluate through by default: bag
#: materialisation costs ``O(||D||^k)``, so beyond a small ``k`` the indexed
#: backtracking solver is the safer default on real databases.
DEFAULT_MAX_GHD_WIDTH = 3


@dataclass
class Plan:
    """An explainable execution plan for one conjunctive query.

    ``query`` is the query the executor will actually run — normally the
    input query, but the core when semantic planning (``use_core=True``)
    found a strictly smaller equivalent.
    """

    strategy: str
    query: ConjunctiveQuery
    analysis: QueryAnalysis | None
    decomposition: GeneralizedHypertreeDecomposition | None
    width: int | None
    rationale: str
    planning_seconds: float = field(default=0.0, compare=False)
    #: The query plan() was called with (= ``query`` unless semantic planning
    #: substituted the core).  The executor uses it to reject a plan passed
    #: alongside a different query.  ``None`` for hand-built plans.
    source_query: ConjunctiveQuery | None = None

    def with_note(self, note: str) -> "Plan":
        """A copy of this plan with ``note`` appended to the rationale.

        Execution-time layers (the session's sharded path) use it to record
        decisions made *after* planning — e.g. which rung of the sharding
        fallback ladder ran — without mutating the cached plan object, which
        other threads may be reading concurrently.
        """
        return replace(self, rationale=f"{self.rationale}; {note}")

    def explain(self) -> str:
        """A human-readable account of the plan (strategy, witness, why)."""
        lines = [f"strategy: {self.strategy}"]
        if self.width is not None:
            lines.append(f"certified width: {self.width}")
        if self.decomposition is not None:
            lines.append(
                f"decomposition: {len(self.decomposition.bags)} bags, "
                f"width {self.decomposition.width()}"
            )
        lines.append(f"rationale: {self.rationale}")
        return "\n".join(lines)


class QueryPlanner:
    """Turns a query (via its memoized analysis) into a :class:`Plan`.

    Parameters
    ----------
    analyze:
        Callable mapping a hypergraph to a :class:`QueryAnalysis` (the
        engine's cached analysis pass).
    max_ghd_width:
        Largest certified ghw upper bound for which the GHD-guided strategy
        is preferred over indexed backtracking.
    core_cache:
        The :class:`~repro.engine.analysis.LRUCache` memoizing core
        minimisation — the expensive part of semantic planning (retraction
        searches).  Normally injected by the owning engine/session so cache
        state stays session-scoped; a private one is created if omitted.
    """

    def __init__(
        self,
        analyze,
        max_ghd_width: int = DEFAULT_MAX_GHD_WIDTH,
        core_cache: LRUCache | None = None,
    ) -> None:
        self._analyze = analyze
        self.max_ghd_width = max_ghd_width
        self._core_cache = core_cache if core_cache is not None else LRUCache(256)

    def plan(
        self,
        query: ConjunctiveQuery,
        use_core: bool = False,
        force_strategy: str | None = None,
    ) -> Plan:
        """Plan the evaluation of ``query``.

        ``use_core=True`` first minimises the query to its core (semantic
        width route, Section 4.3): the core is equivalent and fixes the free
        variables, so answers, satisfiability, and counts are unchanged while
        the structure — and hence the strategy — may improve.
        ``force_strategy`` bypasses dispatch (used by benchmarks and demos to
        compare strategies on the same instance).
        """
        start = time.perf_counter()
        target = query
        semantic_note = ""
        if use_core and query.atoms:
            core = self._core_of(query)
            if len(core.atoms) < len(query.atoms):
                target = core
                semantic_note = (
                    f"; planning for the core ({len(core.atoms)} of "
                    f"{len(query.atoms)} atoms — equivalent, sem-ghw route)"
                )
        plan = self._dispatch(target, semantic_note, force_strategy)
        # Surface a non-default join-ordering mode (A/B benchmarks force the
        # historical static-greedy path) so explain() shows which ordering
        # the executor will use; the cost-based default stays unannotated.
        mode = join_ordering()
        if mode != ORDERING_COST:
            plan = plan.with_note(f"join ordering forced to {mode}")
        plan.planning_seconds = time.perf_counter() - start
        plan.source_query = query
        return plan

    def _core_of(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        # ConjunctiveQuery.__eq__ compares free variables as a *set*, but the
        # core inherits their *order* (answer-tuple column order): include the
        # ordered head in the key so reordered projections never share a core.
        key = (query, query.free_variables)
        core = self._core_cache.get(key)
        if core is None:
            from repro.cq.core import core_of

            core = core_of(query)
            self._core_cache.put(key, core)
        return core

    def _dispatch(
        self, query: ConjunctiveQuery, note: str, force_strategy: str | None
    ) -> Plan:
        if not query.atoms:
            if force_strategy is not None and force_strategy != STRATEGY_TRIVIAL:
                raise ValueError(
                    f"cannot force strategy {force_strategy!r} on an atom-less "
                    "query (only the trivial strategy applies)"
                )
            return Plan(
                STRATEGY_TRIVIAL, query, None, None, None,
                "no atoms: the empty conjunction is vacuously true" + note,
            )
        analysis = self._analyze(query.hypergraph())
        if force_strategy is not None:
            return self._forced(query, analysis, note, force_strategy)
        if analysis.join_tree is not None:
            return Plan(
                STRATEGY_YANNAKAKIS, query, analysis, analysis.join_tree, 1,
                "acyclic (GYO join tree exists): direct Yannakakis, "
                "no decomposition search needed" + note,
            )
        if analysis.is_acyclic:
            # Acyclic but no join tree: every hyperedge is empty (all atoms
            # constant-only), so there is nothing to decompose — the indexed
            # solver simply checks the facts.
            return Plan(
                STRATEGY_BACKTRACKING, query, analysis, None, None,
                "no non-empty edge (constant-only atoms): nothing to "
                "decompose, indexed backtracking checks the facts" + note,
            )
        if self.max_ghd_width < 2:
            # Cyclic means ghw >= 2: the search cannot produce a usable
            # decomposition, so skip it entirely.
            return Plan(
                STRATEGY_BACKTRACKING, query, analysis, None, None,
                f"cyclic (ghw >= 2) with width limit {self.max_ghd_width}: "
                "indexed-backtracking fallback, decomposition search skipped" + note,
            )
        # For wider limits the certified bound is only known after the search;
        # the result is memoized on the analysis, so a high-width structure
        # pays it once and forced-GHD plans reuse the witness.
        bounds = analysis.ghw_bounds
        if bounds.decomposition is not None and bounds.upper <= self.max_ghd_width:
            return Plan(
                STRATEGY_GHD, query, analysis, bounds.decomposition, bounds.upper,
                f"cyclic with certified ghw <= {bounds.upper} "
                f"(width limit {self.max_ghd_width}): GHD-guided evaluation, "
                f"bag materialisation in O(||D||^{bounds.upper}) (Prop. 2.2)" + note,
            )
        return Plan(
            STRATEGY_BACKTRACKING, query, analysis, None, None,
            f"no decomposition within the width limit {self.max_ghd_width} "
            f"(certified ghw upper bound {bounds.upper}): "
            "indexed-backtracking fallback" + note,
        )

    def _forced(
        self, query: ConjunctiveQuery, analysis: QueryAnalysis, note: str, strategy: str
    ) -> Plan:
        rationale = f"strategy forced by the caller{note}"
        if strategy == STRATEGY_TRIVIAL:
            raise ValueError(
                "the trivial strategy only applies to atom-less queries"
            )
        if strategy == STRATEGY_YANNAKAKIS:
            if analysis.join_tree is None:
                raise ValueError(
                    "cannot force direct Yannakakis: the query hypergraph is "
                    "not acyclic (no join tree exists)"
                )
            return Plan(strategy, query, analysis, analysis.join_tree, 1, rationale)
        if strategy == STRATEGY_GHD:
            decomposition = (
                analysis.join_tree
                if analysis.join_tree is not None
                else analysis.ghw_bounds.decomposition
            )
            if decomposition is None:
                raise ValueError("cannot force GHD evaluation: no decomposition found")
            return Plan(
                strategy, query, analysis, decomposition, decomposition.width(), rationale
            )
        if strategy == STRATEGY_BACKTRACKING:
            return Plan(strategy, query, analysis, None, None, rationale)
        raise ValueError(f"unknown strategy {strategy!r}")
