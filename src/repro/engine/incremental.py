"""Semi-naive incremental evaluation over the versioned storage layer.

A :class:`IncrementalView` is a *standing* conjunctive query over one
database: it remembers the answer set it last produced and the storage
version of every relation the query mentions.  After the database grows
(``add_fact`` — relations are append-only, so CQ answers are monotone),
:meth:`IncrementalView.refresh` brings the answer set up to date by joining
**only the appended tuples** against the resident full views, instead of
re-running the query from scratch:

    new = old  ∪  ⋃_i  π_free( Δview_i ⋈ view_1 ⋈ … ⋈ view_n )

one union term per atom ``i`` whose relation grew, where ``Δview_i`` is the
appended rows of atom ``i``'s relation run through the atom's selection
recipe (:func:`repro.cq.relational.atom_shape` — the same recipe the full
build uses) and every *other* atom contributes its full current view.  The
rule is exact for monotone queries: every genuinely new answer embeds at
least one appended tuple in at least one atom position, and the term for
that position covers it (the other positions use the full post-append
views, which contain both old and new rows, so Δ⋈old, old⋈Δ, and Δ⋈Δ
combinations are all swept up; the union dedups the overlap).

The full views come from the database's **atom-view cache**
(:meth:`~repro.cq.database.Database.enable_atom_cache`), which the view
enables on construction — so across refreshes the full-view side is
extended in place from the same delta log and its memoized join-key
indexes stay warm.  Refresh cost therefore scales with the delta, not the
database.

When the delta is a large fraction of the stored data (``threshold``,
default :data:`DEFAULT_REFRESH_THRESHOLD`), re-joining delta against full
views stops being cheaper than a fresh evaluation, so :meth:`refresh`
falls back to one exact full recompute through the owning session.  The
decision is recorded in the returned plan's rationale and in
``EvalResult.timings["incremental"]``.
"""

from __future__ import annotations

import threading
import time

from repro.cq.database import Database
from repro.cq.query import ConjunctiveQuery
from repro.cq.relational import (
    NamedRelation,
    atom_shape,
    filter_atom_rows,
    from_atom,
)
from repro.engine.executor import TASK_ANSWER, EvalResult

#: Delta fraction (appended rows / total stored rows over the query's
#: relations) above which :meth:`IncrementalView.refresh` abandons the
#: semi-naive path for one exact full recompute.  Past roughly a quarter
#: of the data, the delta joins touch most of what a fresh evaluation
#: would anyway — but pay it once per delta atom.
DEFAULT_REFRESH_THRESHOLD = 0.25

#: ``mode`` values recorded in ``EvalResult.timings["incremental"]``.
MODE_INITIAL = "initial"
MODE_NOOP = "noop"
MODE_INCREMENTAL = "incremental"
MODE_FULL = "full"


class IncrementalView:
    """A standing query whose answer set refreshes in delta time.

    Construct one via :meth:`EngineSession.incremental_view` (or directly);
    call :meth:`refresh` after appends.  Every refresh returns a normal
    :class:`~repro.engine.executor.EvalResult` for the ``answer`` task whose
    ``timings["incremental"]`` records how the refresh ran: ``mode``
    (``initial`` / ``noop`` / ``incremental`` / ``full``), ``delta_rows``
    (stored rows folded in), ``delta_fraction``, ``new_answers``, and
    ``refresh_seconds``.

    The maintained answer set is exact after every refresh — the
    differential harness (``tests/engine/test_differential.py``) pins it
    against a from-scratch ``answer()`` across workload regimes — and only
    ever grows, so :attr:`satisfiable` and :attr:`count` read straight off
    it.  A view is safe to refresh from multiple threads (refreshes
    serialize on an internal lock), but appends racing a refresh land in
    the *next* refresh: versions are captured before evaluation.
    """

    def __init__(
        self,
        session,
        query: ConjunctiveQuery,
        database: Database,
        threshold: float = DEFAULT_REFRESH_THRESHOLD,
    ) -> None:
        if not isinstance(query, ConjunctiveQuery):
            raise TypeError(f"expected a ConjunctiveQuery, got {type(query).__name__}")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold!r}")
        self.session = session
        self.query = query
        self.database = database
        self.threshold = threshold
        #: The maintained answer set (tuples over ``query.free_variables``).
        self.rows: set = set()
        #: Relation name -> storage version the answer set reflects
        #: (0 for relations the database does not hold yet).
        self.versions: dict = {
            name: 0 for name in query.relation_names()
        }
        self.refreshes = 0
        self.refresh_modes: dict = {}
        self._plan = None
        self._initialized = False
        self._lock = threading.Lock()
        # Full views are served (and extended in place) by the atom-view
        # cache, so repeated refreshes keep their memoized join keys warm.
        database.enable_atom_cache()

    # ------------------------------------------------------------------
    @property
    def satisfiable(self) -> bool:
        """BCQ reading of the maintained answers (refresh first)."""
        return bool(self.rows)

    @property
    def count(self) -> int:
        """#CQ reading of the maintained answers (refresh first)."""
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    def refresh(self) -> EvalResult:
        """Bring the answer set up to date with the database; see the
        module docstring for the semi-naive rule and the fallback ladder."""
        with self._lock:
            started = time.perf_counter()
            if not self._initialized:
                return self._initial(started)
            current = self._current_versions()
            if current == self.versions:
                return self._result(MODE_NOOP, 0, 0.0, 0, started)
            delta_rows, total_rows = self._delta_size(current)
            fraction = (delta_rows / total_rows) if total_rows else 1.0
            if fraction > self.threshold:
                return self._full(current, delta_rows, fraction, started)
            return self._incremental(current, delta_rows, fraction, started)

    # ------------------------------------------------------------------
    def _current_versions(self) -> dict:
        database = self.database
        return {
            name: (database.relation(name).version if database.has_relation(name) else 0)
            for name in self.versions
        }

    def _delta_size(self, current: dict) -> tuple:
        """(appended rows since the last refresh, total stored rows) over
        the query's relations — the delta fraction the fallback keys on."""
        delta = 0
        total = 0
        for name, seen in self.versions.items():
            if not self.database.has_relation(name):
                continue
            relation = self.database.relation(name)
            total += len(relation.tuples)
            if current[name] != seen:
                delta += len(relation.delta_since(seen))
        return delta, total

    # ------------------------------------------------------------------
    def _initial(self, started: float) -> EvalResult:
        # Capture versions *before* evaluating: an append racing the
        # evaluation may or may not be reflected in the rows, and folding
        # it again on the next refresh is harmless (the union dedups).
        current = self._current_versions()
        result = self.session.answer(self.query, self.database)
        self.rows = set(result.rows)
        self.versions = current
        self._plan = result.plan
        self._initialized = True
        self._record(MODE_INITIAL)
        elapsed = time.perf_counter() - started
        result.plan = result.plan.with_note("incremental view: initial full evaluation")
        result.rows = set(self.rows)
        result.timings["incremental"] = {
            "mode": MODE_INITIAL,
            "delta_rows": sum(
                len(self.database.relation(n).tuples)
                for n in self.versions
                if self.database.has_relation(n)
            ),
            "delta_fraction": 1.0,
            "new_answers": len(self.rows),
            "refresh_seconds": elapsed,
        }
        return result

    def _full(self, current, delta_rows, fraction, started) -> EvalResult:
        result = self.session.answer(self.query, self.database)
        fresh = set(result.rows)
        new_answers = len(fresh - self.rows)
        self.rows |= fresh
        self.versions = current
        self._plan = result.plan
        self._record(MODE_FULL)
        elapsed = time.perf_counter() - started
        result.plan = result.plan.with_note(
            f"incremental view: delta fraction {fraction:.2f} > "
            f"threshold {self.threshold:.2f}, full recompute"
        )
        result.rows = set(self.rows)
        result.timings["incremental"] = {
            "mode": MODE_FULL,
            "delta_rows": delta_rows,
            "delta_fraction": fraction,
            "new_answers": new_answers,
            "refresh_seconds": elapsed,
        }
        return result

    def _incremental(self, current, delta_rows, fraction, started) -> EvalResult:
        new = self._semi_naive()
        new_answers = len(new - self.rows)
        self.rows |= new
        self.versions = current
        self._record(MODE_INCREMENTAL)
        elapsed = time.perf_counter() - started
        result = self._result(
            MODE_INCREMENTAL, delta_rows, fraction, new_answers, started,
            elapsed=elapsed,
        )
        return result

    def _result(
        self, mode, delta_rows, fraction, new_answers, started, elapsed=None,
    ) -> EvalResult:
        if elapsed is None:
            elapsed = time.perf_counter() - started
        plan = self._plan.with_note(f"incremental view: {mode} refresh")
        if mode == MODE_NOOP:
            self._record(MODE_NOOP)
        result = EvalResult(task=TASK_ANSWER, plan=plan, rows=set(self.rows))
        result.timings = {
            "planning_seconds": 0.0,
            "execution_seconds": elapsed,
            "total_seconds": elapsed,
            "incremental": {
                "mode": mode,
                "delta_rows": delta_rows,
                "delta_fraction": fraction,
                "new_answers": new_answers,
                "refresh_seconds": elapsed,
            },
        }
        return result

    def _record(self, mode: str) -> None:
        self.refreshes += 1
        self.refresh_modes[mode] = self.refresh_modes.get(mode, 0) + 1

    # ------------------------------------------------------------------
    def _semi_naive(self) -> set:
        """The new-answer union: one delta-first join chain per grown atom.

        The zero-atom query is vacuously true with the single empty-tuple
        answer and never reaches here (no versions can move); a query
        mentioning a relation the database still lacks has an empty view in
        every term, so the loop naturally contributes nothing for it.
        """
        query = self.query
        database = self.database
        atoms = query.atoms
        # Per-relation filtered deltas are computed once and shared by every
        # atom over that relation *pattern*; the full views come from the
        # atom cache, already extended to the current version by from_atom.
        raw_delta: dict = {}
        for name, seen in self.versions.items():
            if database.has_relation(name):
                relation = database.relation(name)
                if relation.version != seen:
                    raw_delta[name] = relation.delta_since(seen)
        if any(not database.has_relation(atom.relation) for atom in atoms):
            # A missing relation is empty, so the whole answer set is empty
            # now and stays empty until it appears — at which point its
            # tracked version 0 makes its entire contents the delta.
            return set()
        full_views = [from_atom(atom, database) for atom in atoms]
        new: set = set()
        free = query.free_variables
        for index, atom in enumerate(atoms):
            delta_source = raw_delta.get(atom.relation)
            if not delta_source:
                continue
            shape = atom_shape(atom)
            delta_rows = filter_atom_rows(delta_source, shape)
            if not delta_rows:
                continue
            delta_view = NamedRelation._trusted(shape[0], delta_rows)
            others = [view for j, view in enumerate(full_views) if j != index]
            joined = _join_chain(delta_view, others, free)
            new |= joined.project(free).rows
        return new


def _join_chain(start: NamedRelation, others: list, keep) -> NamedRelation:
    """Join ``start`` against every relation in ``others``, delta-first.

    Greedy order: always join next the relation sharing the most columns
    with the accumulated result (ties to the smaller relation), so the
    small delta side keeps pruning and the memoized key indexes on the
    resident full views get hit with selective probes.  When nothing
    overlaps (a disconnected query), the smallest remaining relation is
    folded in as a cross product.

    After every join the intermediate is projected onto ``keep`` (the
    query's free variables) plus the columns some remaining relation still
    joins on: a dropped column can never influence a later equality or the
    output, and the projection's dedup is what keeps delta-first
    intermediates bounded on dense instances — a cycle query would
    otherwise grow by a domain factor per joined atom before the closing
    join prunes it back.
    """
    current = start
    remaining = list(others)
    while remaining:
        bound = set(current.columns)
        best_index = 0
        best_key = None
        for i, candidate in enumerate(remaining):
            overlap = len(bound & set(candidate.columns))
            key = (-overlap, len(candidate))
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        current = current.natural_join(remaining.pop(best_index))
        needed = set(keep)
        for relation in remaining:
            needed.update(relation.columns)
        kept = [c for c in current.columns if c in needed]
        if len(kept) != len(current.columns):
            current = current.project(kept)
    return current
