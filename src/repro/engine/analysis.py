"""The structural analysis pass: certified facts per query hypergraph.

The planner never looks at a query directly — it looks at a
:class:`QueryAnalysis` of the query's hypergraph: acyclicity (with the
witnessing width-1 join tree), and certified ghw bounds with the witnessing
decomposition (reusing :mod:`repro.widths`).  Analyses are memoized in an
:class:`AnalysisCache` keyed on the hypergraph, so a repeated query — the
common case for a serving engine — skips re-decomposition entirely.

Cost discipline: the cheap facts (GYO acyclicity + join tree) are computed
eagerly on construction; the ghw decomposition search only runs on first
access to :attr:`QueryAnalysis.ghw_bounds` and is then memoized.  Acyclic
queries therefore never pay for a decomposition search —
:attr:`QueryAnalysis.searched_decomposition` stays ``False``, which the
planner dispatch tests assert.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.hypergraphs.hypergraph import Hypergraph
from repro.widths.acyclicity import join_tree_decomposition
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.ghw import GHWResult, ghw_upper_bound


class QueryAnalysis:
    """Memoized structural facts about one query hypergraph."""

    __slots__ = (
        "hypergraph",
        "is_acyclic",
        "join_tree",
        "_ghw_bounds",
        "searched_decomposition",
        "analysis_seconds",
    )

    def __init__(self, hypergraph: Hypergraph) -> None:
        start = time.perf_counter()
        self.hypergraph = hypergraph
        self.join_tree: GeneralizedHypertreeDecomposition | None = (
            join_tree_decomposition(hypergraph)
        )
        # join_tree_decomposition returns None exactly when the GYO reduction
        # fails (cyclic) or there is no non-empty edge (trivially acyclic, but
        # nothing to build a tree over) — so acyclicity needs no second GYO run.
        self.searched_decomposition = False
        self._ghw_bounds: GHWResult | None = None
        if self.join_tree is not None:
            self.is_acyclic = True
            self._ghw_bounds = GHWResult(1, 1, self.join_tree)
        elif not any(edge for edge in hypergraph.edges):
            # No non-empty edge: nothing to decompose (ghw 0 by convention).
            self.is_acyclic = True
            self._ghw_bounds = GHWResult(0, 0, None)
        else:
            self.is_acyclic = False
        self.analysis_seconds = time.perf_counter() - start

    @property
    def ghw_bounds(self) -> GHWResult:
        """Certified ghw bounds with the witnessing GHD (search runs once,
        lazily — acyclic hypergraphs answer from the join tree instead)."""
        if self._ghw_bounds is None:
            start = time.perf_counter()
            self._ghw_bounds = ghw_upper_bound(self.hypergraph)
            self.searched_decomposition = True
            self.analysis_seconds += time.perf_counter() - start
        return self._ghw_bounds

    @property
    def decomposition(self) -> GeneralizedHypertreeDecomposition | None:
        """The witnessing decomposition behind the ghw upper bound."""
        return self.ghw_bounds.decomposition

    @property
    def width_upper_bound(self) -> int:
        return self.ghw_bounds.upper

    def __repr__(self) -> str:
        width = "?" if self._ghw_bounds is None else self._ghw_bounds.upper
        return (
            f"QueryAnalysis({self.hypergraph!r}, acyclic={self.is_acyclic}, "
            f"ghw<={width})"
        )


class LRUCache:
    """The engine's cache primitive: a bounded LRU with hit/miss counters.

    Every memo the engine keeps — analyses, cores, plans — is an instance of
    this class *owned by a session* (or an :class:`~repro.engine.Engine`), so
    cache state is never process-global: tests isolate it by constructing a
    fresh session, and two sessions can never poison each other's entries.

    Instances are **thread-safe**: ``get``'s recency bump and ``put``'s
    eviction loop both mutate the underlying :class:`OrderedDict`, and a
    serving process drives shared caches from many threads at once —
    unlocked, concurrent calls could raise mid-``move_to_end`` or corrupt
    the LRU order.  Every public method serializes on one internal lock;
    the critical sections are dict operations, far cheaper than the work
    the cache memoizes.  (Compound operations such as
    :meth:`AnalysisCache.get_or_create` are *not* atomic: two threads
    missing simultaneously may both compute, and the second ``put`` wins —
    a duplicated pure computation, never corruption.)
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"{type(self).__name__} needs maxsize >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._cache_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        with self._cache_lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return default
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._cache_lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._cache_lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._cache_lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry *and* zero the hit/miss counters.

        A cleared cache restarts cold; counters surviving a clear used to
        make post-clear hit rates unreadable (hits from evicted state
        counted against the fresh cache's misses).
        """
        with self._cache_lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def snapshot(self) -> list:
        """A point-in-time ``[(key, value), ...]`` copy, oldest first."""
        with self._cache_lock:
            return list(self._entries.items())

    def info(self) -> dict:
        with self._cache_lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }

    def stats(self) -> dict:
        """Alias of :meth:`info`, matching ``EngineSession.stats()`` so every
        cache in the engine reports counters under one method name."""
        return self.info()


class AnalysisCache(LRUCache):
    """An LRU cache of :class:`QueryAnalysis`, keyed on the hypergraph.

    :class:`~repro.hypergraphs.hypergraph.Hypergraph` is immutable and hashes
    on its ``(vertices, edges)`` structure, so two structurally equal
    hypergraphs — even distinct objects rebuilt per request — share one
    analysis, while any copy-on-write derivative (``delete_vertex``,
    ``add_edge``, ``merge_on_vertex``, ...) differs structurally, hashes
    differently, and gets a fresh analysis: a derived query can never reuse a
    stale decomposition.
    """

    def get_or_create(self, hypergraph: Hypergraph) -> QueryAnalysis:
        analysis = self.get(hypergraph)
        if analysis is None:
            analysis = QueryAnalysis(hypergraph)
            self.put(hypergraph, analysis)
        return analysis
