"""Hash-sharded execution: partition-aware evaluation behind the session.

A query whose every atom contains one shared **shard variable** ``x`` can be
evaluated shard-at-a-time: hash-partition every relation on the column where
``x`` occurs, and any satisfying assignment ``a`` — which uses only facts
carrying the value ``a(x)`` in that column — is confined to the shard
``shard_of(a(x))``.  Hence

* ``answers(q, D) = union over s of answers(q, D_s)`` (exact for every
  query: the shard databases jointly contain every fact);
* when ``x`` is a *free* variable the per-shard answer sets are **disjoint**
  (the ``x`` column of an answer tuple determines its shard), so counts add:
  ``|q(D)| = sum over s of |q(D_s)|``;
* satisfiability is the disjunction of the per-shard questions.

Atoms that do *not* contain the shard variable are handled with the classic
**broadcast** fallback: their relations are replicated into every shard, so
the containment argument above still goes through (partitioned atoms pin the
assignment to ``shard_of(a(x))``; broadcast facts are available everywhere).
When no relation can be partitioned consistently, the ladder bottoms out at
**single-shard** execution — the unsharded plan, recorded as such.

The decision ladder is computed once per (query, shard variable, shard
count) as a :class:`ShardingSpec` and surfaced in the plan rationale and
``EvalResult.timings["sharding"]``, so a caller can always ask which mode
ran and why.  The executing layer lives on
:class:`~repro.engine.session.EngineSession` (``answer(..., shards=N)``);
this module is the pure decision + partitioning logic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.cq.database import Database, shard_of
from repro.cq.query import ConjunctiveQuery

SHARD_MODE_COPARTITIONED = "co-partitioned"
SHARD_MODE_BROADCAST = "broadcast"
SHARD_MODE_SINGLE = "single-shard"


# ----------------------------------------------------------------------
# Worker affinity: deterministic piece -> worker assignment
# ----------------------------------------------------------------------
# The process runtime routes every task for a resident piece to the one
# worker that *owns* the piece, so pool memory is O(db) instead of
# O(workers x db).  The ownership decision lives here, beside the sharding
# ladder, because it is the same kind of pure, replayable routing logic:
# no clock, no randomness, no runtime state — the same (tokens, workers)
# always produce the same assignment, so a coordinator restart or a
# differential-test replay reroutes identically.


def rendezvous_score(token: str, worker) -> int:
    """The rendezvous (highest-random-weight) score of ``worker`` for
    ``token``.

    CRC32 over the joint key for the same reason :func:`~repro.cq.database
    .shard_of` uses it: Python's builtin ``hash`` is salted per process, and
    routing must replay identically across runs.  Unlike modular hashing of
    the token alone, each (token, worker) pair scores independently — so
    removing one worker perturbs only the pieces that worker was winning.
    """
    return zlib.crc32(f"{token}\x1f{worker!r}".encode("utf-8"))


def rendezvous_rank(token: str, workers) -> list:
    """``workers`` ordered by descending preference for ``token`` (score
    desc, worker order as the deterministic tie-break)."""
    ordered = sorted(set(workers), key=repr)
    ordered.sort(key=lambda worker: rendezvous_score(token, worker), reverse=True)
    return ordered


def assign_pieces(tokens, workers) -> dict:
    """Deterministic, exactly-balanced piece -> worker assignment.

    Every token goes to its highest-preference worker (rendezvous order)
    that still has capacity, where capacity enforces **exact balance**: with
    ``n`` tokens over ``w`` workers, every worker ends up owning ``n // w``
    or ``n // w + 1`` pieces, with precisely ``n % w`` workers at the higher
    load.  Tokens are processed in sorted order, so the result is a pure
    function of the two *sets* — independent of iteration order, stable
    across runs, and mostly stable under pool-size changes (a token moves
    only when its preferred worker disappears or capacity shifts under it).

    The runtime calls this once per newly seen dataset (all pieces of one
    sharded call arrive together), so balance holds per dataset — which is
    the bound that matters for worker memory.
    """
    ordered_workers = sorted(set(workers), key=repr)
    if not ordered_workers:
        raise ValueError("assign_pieces needs at least one worker")
    ordered_tokens = sorted(set(tokens))
    floor_load = len(ordered_tokens) // len(ordered_workers)
    ceil_slots = len(ordered_tokens) % len(ordered_workers)
    load = {worker: 0 for worker in ordered_workers}
    assignment: dict = {}
    for token in ordered_tokens:
        for worker in rendezvous_rank(token, ordered_workers):
            if load[worker] < floor_load:
                break
            if load[worker] == floor_load and ceil_slots > 0:
                ceil_slots -= 1
                break
        else:  # pragma: no cover - capacity sums to len(tokens) exactly
            raise AssertionError("balanced assignment ran out of capacity")
        load[worker] += 1
        assignment[token] = worker
    return assignment


def reassign_pieces(assignment, dead, workers) -> dict:
    """Reassign **only** the dead worker's pieces; everything else stays put.

    Each of the dead worker's tokens (in sorted order) moves to the
    currently least-loaded survivor, preferring the survivor with the
    highest rendezvous score for that token among the least-loaded — so the
    move set is exactly the dead worker's pieces (minimal movement) and a
    ±1-balanced assignment stays ±1-balanced across the survivors.
    """
    survivors = sorted((set(workers) - {dead}), key=repr)
    if not survivors:
        raise ValueError("reassign_pieces needs at least one surviving worker")
    load = {worker: 0 for worker in survivors}
    for token, owner in assignment.items():
        if owner in load:
            load[owner] += 1
    reassigned = dict(assignment)
    for token in sorted(t for t, owner in assignment.items() if owner == dead):
        lightest = min(load[worker] for worker in survivors)
        chosen = max(
            (worker for worker in survivors if load[worker] == lightest),
            key=lambda worker: (rendezvous_score(token, worker), repr(worker)),
        )
        load[chosen] += 1
        reassigned[token] = chosen
    return reassigned


#: A candidate shard variable whose hottest value carries at least this
#: fraction of some pinned column's rows is hub-concentrated: hashing on it
#: would pile that mass onto one shard.
_HUB_FRACTION = 0.25

#: A partition-key value is spilled to broadcast only when its guaranteed
#: frequency tops fair share, twice the average per-value mass, *and* this
#: absolute floor — tiny relations never spill.
_HOT_KEY_MIN_ROWS = 4


def _variable_hot_fraction(query: ConjunctiveQuery, database, variable) -> float:
    """The worst top-value concentration over the stored columns where
    ``variable`` occurs: ``max(top guaranteed frequency / rows)`` across
    every (relation, position) the variable pins, from the Space-Saving
    summaries.  0.0 when nothing is known (missing/empty relations)."""
    worst = 0.0
    store = database.statistics()
    seen: set = set()
    for atom in query.atoms:
        for position, term in enumerate(atom.terms):
            if term != variable or (atom.relation, position) in seen:
                continue
            seen.add((atom.relation, position))
            if not database.has_relation(atom.relation):
                continue
            relation = database.relation(atom.relation)
            rows = len(relation)
            if not rows:
                continue
            guaranteed = store.column_sketch(relation, position).heavy.guaranteed()
            if guaranteed:
                worst = max(worst, max(guaranteed.values()) / rows)
    return worst


def choose_shard_variable(query: ConjunctiveQuery, database=None):
    """The default shard variable: the highest-frequency join variable,
    skew-checked against the data when a database is supplied.

    Picks the variable occurring in the most atoms (ties broken by ``repr``
    for determinism) — the variable most likely to co-partition every
    relation, and failing that, the one that minimises the broadcast set.
    With a ``database``, equally-frequent candidates are screened through
    the heavy-hitter summaries: when the default candidate is
    hub-concentrated (one value carrying ≥ 25% of a pinned column) and a
    peer is not, the cooler peer wins — hashing on a hub key piles its mass
    onto one shard no matter how good the column structure looks.  Returns
    ``None`` when the query has no variables (zero-atom or constants-only
    queries cannot shard).
    """
    occurrences: dict = {}
    for atom in query.atoms:
        for variable in atom.variable_set():
            occurrences[variable] = occurrences.get(variable, 0) + 1
    if not occurrences:
        return None
    best_count = max(occurrences.values())
    candidates = [v for v, count in occurrences.items() if count == best_count]
    default = max(candidates, key=repr)
    if database is None or len(candidates) == 1:
        return default
    hot = {v: _variable_hot_fraction(query, database, v) for v in candidates}
    if hot[default] < _HUB_FRACTION:
        return default
    cool = [v for v in candidates if hot[v] < _HUB_FRACTION]
    if cool:
        return max(cool, key=repr)
    # Everything is hub-heavy: keep the historical choice and let hot-key
    # spilling rebalance the partition instead.
    return default


@dataclass(frozen=True)
class ShardingSpec:
    """The sharding decision for one (query, shard variable, shard count).

    ``partition_columns`` maps each co-partitionable relation to the column
    shared by every atom over it where the shard variable occurs;
    ``broadcast_relations`` are replicated to every shard.  ``hot_keys``
    are detected heavy-hitter partition-key values spilled to broadcast by
    :meth:`~repro.cq.database.Database.partition` (rows carrying them are
    replicated instead of hashed, keeping shard balance near ±1 under
    Zipfian data — at the price of combining counts by union).  ``mode`` is
    the rung of the fallback ladder the decision landed on, and
    ``rationale`` says why in prose (it is appended to the plan rationale by
    the session).
    """

    shard_variable: object
    shards: int
    mode: str
    partition_columns: dict
    broadcast_relations: tuple
    rationale: str
    hot_keys: tuple = ()

    @property
    def is_sharded(self) -> bool:
        return self.mode != SHARD_MODE_SINGLE and self.shards > 1


def _detect_hot_keys(database, partition_columns: dict, shards: int) -> tuple:
    """Partition-key values whose frequency would overload their shard.

    A value is hot when its **guaranteed** Space-Saving frequency in some
    partitioned column exceeds fair share (``rows / shards``), twice the
    average per-value mass (so uniform small domains never trip), and an
    absolute floor.  Returned repr-sorted for determinism.
    """
    hot: set = set()
    store = database.statistics()
    for name, column in partition_columns.items():
        relation = database.relation(name)
        rows = len(relation)
        if not rows:
            continue
        sketch = store.column_sketch(relation, column)
        threshold = max(
            rows / shards,
            2.0 * rows / max(1.0, sketch.distinct),
            float(_HOT_KEY_MIN_ROWS),
        )
        for value, guaranteed in sketch.heavy.guaranteed().items():
            if guaranteed > threshold:
                hot.add(value)
    return tuple(sorted(hot, key=repr))


def sharding_spec(
    query: ConjunctiveQuery, shards: int, shard_variable=None, database=None
) -> ShardingSpec:
    """Walk the fallback ladder for ``query``: co-partitioned when every
    relation agrees on a shard column, broadcast when at least one does,
    single-shard otherwise.

    A relation is *co-partitionable* when every atom over it contains the
    shard variable at some common position (self-joins must agree on the
    column, otherwise one tuple would need to live in two shards).

    With a ``database``, the decision becomes skew-aware: the default shard
    variable avoids hub-concentrated keys (:func:`choose_shard_variable`),
    and detected hot partition-key values land in :attr:`ShardingSpec
    .hot_keys` for broadcast spilling at partition time.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shard_variable is None:
        shard_variable = choose_shard_variable(query, database=database)
    elif shard_variable not in query.variables:
        # Validated before any fallback so a typo'd variable raises on every
        # query shape (including zero-atom queries and shards=1).
        raise ValueError(
            f"shard variable {shard_variable!r} does not occur in the query"
        )
    if shards == 1 or shard_variable is None or not query.atoms:
        reason = (
            "one shard requested"
            if shards == 1
            else "no shard variable (query has no variables)"
        )
        return ShardingSpec(
            shard_variable, shards, SHARD_MODE_SINGLE, {}, (), reason
        )
    # Per relation: the intersection over its atoms of the positions where
    # the shard variable occurs.  Non-empty intersection => co-partitionable.
    shared_positions: dict = {}
    for atom in query.atoms:
        positions = frozenset(
            index
            for index, term in enumerate(atom.terms)
            if term == shard_variable
        )
        if atom.relation in shared_positions:
            shared_positions[atom.relation] &= positions
        else:
            shared_positions[atom.relation] = positions
    partition_columns = {
        relation: min(positions)
        for relation, positions in shared_positions.items()
        if positions
    }
    broadcast = tuple(
        sorted(relation for relation in shared_positions if relation not in partition_columns)
    )
    if not partition_columns:
        return ShardingSpec(
            shard_variable, shards, SHARD_MODE_SINGLE, {}, (),
            f"shard variable {shard_variable!r} pins no relation "
            "(absent or at inconsistent self-join positions): single-shard fallback",
        )
    hot_keys = ()
    hot_note = ""
    if database is not None:
        present = {
            name: column
            for name, column in partition_columns.items()
            if database.has_relation(name)
        }
        hot_keys = _detect_hot_keys(database, present, shards)
        if hot_keys:
            hot_note = (
                f"; {len(hot_keys)} hot key(s) spilled to broadcast "
                "(heavy hitters above fair share)"
            )
    if not broadcast:
        return ShardingSpec(
            shard_variable, shards, SHARD_MODE_COPARTITIONED,
            partition_columns, (),
            f"every atom contains {shard_variable!r}: all "
            f"{len(partition_columns)} relations hash-partitioned, "
            "shards answer-disjoint" + hot_note,
            hot_keys,
        )
    return ShardingSpec(
        shard_variable, shards, SHARD_MODE_BROADCAST,
        partition_columns, broadcast,
        f"{len(partition_columns)} relations hash-partitioned on "
        f"{shard_variable!r}, {len(broadcast)} without it broadcast to every shard"
        + hot_note,
        hot_keys,
    )


class ShardedDatabase:
    """A database hash-partitioned for one query's sharded execution.

    Holds the per-shard :class:`~repro.cq.database.Database` pieces plus the
    :class:`ShardingSpec` that produced them.  Only the relations the query
    mentions are materialised into the shards (a shared serving database may
    hold thousands of unrelated relations); a query relation missing from
    the source database stays missing in every shard, which the executor's
    missing-relation fast path already answers as empty.
    """

    def __init__(self, spec: ShardingSpec, shards: list[Database]) -> None:
        self.spec = spec
        self.shards = shards

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase(mode={self.spec.mode!r}, shards={len(self.shards)}, "
            f"variable={self.spec.shard_variable!r})"
        )

    @classmethod
    def partition(
        cls,
        database: Database,
        query: ConjunctiveQuery,
        shards: int,
        shard_variable=None,
        spec: ShardingSpec | None = None,
    ) -> "ShardedDatabase":
        """Partition ``database`` for ``query`` along the fallback ladder.

        On the single-shard rung the one "shard" is the database itself
        (no copy): sharded execution degrades gracefully to the plain path.
        A caller that already walked the ladder passes its ``spec`` to skip
        recomputing it (the session's sharded path does).
        """
        if spec is None:
            spec = sharding_spec(query, shards, shard_variable=shard_variable)
        if not spec.is_sharded:
            return cls(spec, [database])
        present = {
            name: column
            for name, column in spec.partition_columns.items()
            if database.has_relation(name)
        }
        broadcast = tuple(
            name for name in spec.broadcast_relations if database.has_relation(name)
        )
        pieces = database.partition(
            present, spec.shards, broadcast=broadcast, hot_keys=spec.hot_keys
        )
        return cls(spec, pieces)

    def total_tuples(self) -> int:
        return sum(piece.total_tuples() for piece in self.shards)

    def shard_for(self, value) -> Database:
        """The shard a given shard-variable value routes to."""
        return self.shards[shard_of(value, len(self.shards))]
