"""Strategy backends: the evaluators behind each plan strategy.

A backend answers the three query tasks — Boolean satisfiability, answer
enumeration, answer counting — for plans of one strategy.  The built-in
backends wrap the existing evaluators (:mod:`repro.cq.bags` +
:mod:`repro.cq.yannakakis` + :mod:`repro.cq.counting` for the decomposition
strategies, :mod:`repro.cq.homomorphism` for the generic fallback); new
strategies — a sharded evaluator, an async or multi-backend executor —
register through :func:`register_backend` and become dispatchable without
touching the executor.
"""

from __future__ import annotations

from repro.cq.database import Database
from repro.cq.decomposition_eval import (
    decomposition_boolean_answer,
    decomposition_count_answers,
    decomposition_enumerate_answers,
)
from repro.cq.homomorphism import boolean_answer, count_answers, enumerate_answers
from repro.cq.query import ConjunctiveQuery
from repro.engine.planner import (
    Plan,
    STRATEGY_BACKTRACKING,
    STRATEGY_GHD,
    STRATEGY_TRIVIAL,
    STRATEGY_YANNAKAKIS,
)


class EvaluationBackend:
    """Interface every strategy backend implements."""

    name = "abstract"

    def boolean(self, query: ConjunctiveQuery, database: Database, plan: Plan) -> bool:
        raise NotImplementedError

    def answers(self, query: ConjunctiveQuery, database: Database, plan: Plan) -> set[tuple]:
        raise NotImplementedError

    def count(self, query: ConjunctiveQuery, database: Database, plan: Plan) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class TrivialBackend(EvaluationBackend):
    """The empty conjunction: vacuously true, one (empty) answer."""

    name = STRATEGY_TRIVIAL

    def boolean(self, query, database, plan) -> bool:
        return True

    def answers(self, query, database, plan) -> set[tuple]:
        return {()}

    def count(self, query, database, plan) -> int:
        return 1


class DecompositionBackend(EvaluationBackend):
    """Bag materialisation along the plan's decomposition, then Yannakakis
    (or the join-tree counting DP).  Serves both the direct-Yannakakis
    strategy (width-1 join tree) and the GHD-guided strategy — the only
    difference is where the decomposition came from.  Evaluation delegates
    to :mod:`repro.cq.decomposition_eval` so there is exactly one copy of
    the build-tree → Yannakakis → projection logic."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _ghd(self, plan: Plan):
        if plan.decomposition is None:
            raise ValueError(
                f"plan for strategy {plan.strategy!r} carries no decomposition"
            )
        return plan.decomposition

    def boolean(self, query, database, plan) -> bool:
        return decomposition_boolean_answer(query, database, self._ghd(plan))

    def answers(self, query, database, plan) -> set[tuple]:
        return decomposition_enumerate_answers(query, database, self._ghd(plan))

    def count(self, query, database, plan) -> int:
        if query.is_full():
            # Proposition 4.14: the DP counts |q(D)| without materialising it.
            return decomposition_count_answers(query, database, self._ghd(plan))
        # Non-full queries count distinct projections; enumerate and count
        # (the DP would count assignments to the existential variables too).
        return len(self.answers(query, database, plan))


class ColumnarBackend(EvaluationBackend):
    """The decomposition strategies over the columnar kernel.

    Same contract as :class:`DecompositionBackend` — bag materialisation
    along the plan's decomposition, Yannakakis passes, factorized counting —
    but every relation is a :class:`~repro.cq.columnar.ColumnarRelation` of
    interned value ids: int-keyed hash joins and semijoins, column-wise
    gathers, and a single id→value decode at the answer boundary (see
    :mod:`repro.cq.columnar`).  The database interns itself on first use
    through ``Database.columnar_view``, memoized beside the atom-view cache.

    A tuple-set :class:`DecompositionBackend` is kept as ``fallback`` and
    the ``use_columnar`` toggle routes to it — benchmarks and differential
    tests flip it to compare kernels on identical plans.  ``columnar_runs``
    / ``fallback_runs`` count evaluations per kernel so coverage guards can
    assert the columnar path actually executed (counters are per-process:
    runtime workers tally in their own registry instances).
    """

    def __init__(self, name: str, fallback: EvaluationBackend | None = None) -> None:
        self.name = name
        self.fallback = fallback if fallback is not None else DecompositionBackend(name)
        self.use_columnar = True
        self.columnar_runs = 0
        self.fallback_runs = 0

    def _ghd(self, plan: Plan):
        if plan.decomposition is None:
            raise ValueError(
                f"plan for strategy {plan.strategy!r} carries no decomposition"
            )
        return plan.decomposition

    def boolean(self, query, database, plan) -> bool:
        if not self.use_columnar:
            self.fallback_runs += 1
            return self.fallback.boolean(query, database, plan)
        from repro.cq.columnar import columnar_boolean_answer

        self.columnar_runs += 1
        return columnar_boolean_answer(query, database, self._ghd(plan))

    def answers(self, query, database, plan) -> set[tuple]:
        if not self.use_columnar:
            self.fallback_runs += 1
            return self.fallback.answers(query, database, plan)
        from repro.cq.columnar import columnar_enumerate_answers

        self.columnar_runs += 1
        return columnar_enumerate_answers(query, database, self._ghd(plan))

    def count(self, query, database, plan) -> int:
        if not self.use_columnar:
            self.fallback_runs += 1
            return self.fallback.count(query, database, plan)
        from repro.cq.columnar import (
            build_columnar_bag_tree,
            columnar_count_answers,
        )
        from repro.cq.yannakakis import yannakakis_boolean, yannakakis_full

        self.columnar_runs += 1
        if query.is_full():
            # Proposition 4.14: the factorized DP counts |q(D)| over per-row
            # weight vectors — no result row is ever materialised.
            return columnar_count_answers(query, database, self._ghd(plan))
        # Non-full queries count distinct projections.  Stay in id space:
        # enumerate columnar-side and take the length — the decode step is
        # skipped entirely because the values never leave the kernel.
        if not query.atoms:
            return 1
        tree = build_columnar_bag_tree(query, database, self._ghd(plan))
        if not query.free_variables:
            return 1 if yannakakis_boolean(tree) else 0
        return len(yannakakis_full(tree, output_columns=query.free_variables))


class BacktrackingBackend(EvaluationBackend):
    """The structure-blind fallback: the hash-indexed backtracking solver."""

    name = STRATEGY_BACKTRACKING

    def boolean(self, query, database, plan) -> bool:
        return boolean_answer(query, database)

    def answers(self, query, database, plan) -> set[tuple]:
        return enumerate_answers(query, database)

    def count(self, query, database, plan) -> int:
        return count_answers(query, database)


_REGISTRY: dict[str, EvaluationBackend] = {}


def register_backend(strategy: str, backend: EvaluationBackend, replace: bool = False) -> None:
    """Register ``backend`` as the evaluator for plans of ``strategy``.

    Registration is global (module-level): every engine dispatches through
    the same registry.  Pass ``replace=True`` to swap a built-in out.
    """
    if strategy in _REGISTRY and not replace:
        raise ValueError(
            f"a backend for strategy {strategy!r} is already registered "
            "(pass replace=True to substitute it)"
        )
    _REGISTRY[strategy] = backend


def unregister_backend(strategy: str) -> None:
    """Remove a registered backend (tests and hot-swapping extensions)."""
    _REGISTRY.pop(strategy, None)


def backend_for(strategy: str) -> EvaluationBackend:
    try:
        return _REGISTRY[strategy]
    except KeyError:
        raise ValueError(
            f"no backend registered for strategy {strategy!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def registered_strategies() -> tuple:
    return tuple(sorted(_REGISTRY))


register_backend(STRATEGY_TRIVIAL, TrivialBackend())
# The decomposition strategies default to the columnar kernel (the database
# interns itself on first evaluation); each carries a tuple-set
# DecompositionBackend as its fallback, and register_backend(replace=True)
# still swaps either strategy wholesale.
register_backend(STRATEGY_YANNAKAKIS, ColumnarBackend(STRATEGY_YANNAKAKIS))
register_backend(STRATEGY_GHD, ColumnarBackend(STRATEGY_GHD))
register_backend(STRATEGY_BACKTRACKING, BacktrackingBackend())
