"""The executor: the engine's single public entry point.

``answer(query, db)``, ``is_satisfiable(query, db)``, and ``count(query,
db)`` run the full analysis → plan → execute pipeline and return a uniform
:class:`EvalResult` — the answer payload plus the plan that produced it and
per-stage timings.  A caller that wants control can plan once and execute
many times by passing ``plan=`` explicitly (the plan embeds the witnessing
decomposition, so re-execution skips analysis and planning entirely).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cq.database import Database
from repro.cq.query import ConjunctiveQuery
from repro.cq.statistics import ledger_delta, ledger_snapshot
from repro.engine.analysis import AnalysisCache, LRUCache, QueryAnalysis
from repro.engine.backends import backend_for
from repro.engine.planner import DEFAULT_MAX_GHD_WIDTH, Plan, QueryPlanner
from repro.hypergraphs.hypergraph import Hypergraph

TASK_ANSWER = "answer"
TASK_SATISFIABLE = "satisfiable"
TASK_COUNT = "count"


@dataclass
class EvalResult:
    """The uniform result of one engine call.

    Exactly one of ``rows`` / ``satisfiable`` / ``count`` is populated,
    matching ``task``; :attr:`value` returns it.  ``timings`` holds
    ``planning_seconds`` (the planning work done by *this call*: the cold
    analysis + planning cost on first sight of a query, near-zero on a
    session plan-cache hit, ``0.0`` when a pre-built plan was passed in),
    ``execution_seconds``, and ``total_seconds``.  Two optional entries are
    filled by the session's batch and sharded paths:

    * ``dedup_of`` — the batch index of the representative this result was
      deduplicated from (:meth:`EngineSession._run_many`); absent on results
      that were actually executed;
    * ``sharding`` — the sharded-execution record (mode, shard variable,
      shard count, per-shard seconds; see :attr:`sharding`);
    * ``runtime`` — where the fan-out work ran (runtime name, workers used,
      per-task worker timings; see :attr:`runtime`).
    """

    task: str
    plan: Plan
    rows: set | None = None
    satisfiable: bool | None = None
    count: int | None = None
    timings: dict = field(default_factory=dict)

    @property
    def value(self):
        if self.task == TASK_ANSWER:
            return self.rows
        if self.task == TASK_SATISFIABLE:
            return self.satisfiable
        return self.count

    @property
    def strategy(self) -> str:
        return self.plan.strategy

    @property
    def sharding(self) -> dict | None:
        """The sharded-execution record, or ``None`` for unsharded calls.

        Filled by :meth:`EngineSession.answer` & friends when called with
        ``shards > 1``: ``mode`` (the fallback-ladder rung that ran),
        ``shard_variable``, ``shards`` (executed), ``requested_shards``,
        ``per_shard_seconds``, ``broadcast_relations``, and — for counting
        with an existential shard variable — ``count_via="union"``.
        """
        return self.timings.get("sharding")

    @property
    def runtime(self) -> dict | None:
        """The execution-runtime record, or ``None`` for plain calls.

        Filled by the session's sharded and batch paths: ``name`` (the
        :mod:`~repro.engine.runtime` that executed the fan-out), plus —
        for sharded calls — ``tasks``, ``workers`` (labels of the threads
        or worker-process pids that ran them), and ``per_task_seconds``
        (worker-side execution time per task).
        """
        return self.timings.get("runtime")

    @property
    def stats(self) -> dict | None:
        """The statistics/ordering record, or ``None`` when nothing ran.

        Filled whenever the execution exercised the cost-based machinery of
        :mod:`repro.cq.statistics`: ``mode`` (the join-ordering mode),
        ``cost_joins`` / ``static_joins`` (pairwise join steps taken by each
        path), ``prefilter_passes`` / ``prefilter_rows_dropped`` (sideways
        information passing), ``reducer_orderings`` (selectivity-ordered
        semijoin sweeps), and ``estimated_rows`` / ``actual_rows`` (summed
        cardinality estimates vs. the joins they predicted).  Sharded calls
        additionally record ``hot_keys`` (the values spilled to broadcast).
        """
        return self.timings.get("stats")

    @property
    def incremental(self) -> dict | None:
        """The incremental-refresh record, or ``None`` for plain calls.

        Filled by :class:`repro.engine.incremental.IncrementalView`:
        ``mode`` (``initial`` / ``noop`` / ``incremental`` / ``full``),
        ``delta_rows`` (stored rows folded in), ``delta_fraction``,
        ``new_answers``, and ``refresh_seconds``.
        """
        return self.timings.get("incremental")

    def __repr__(self) -> str:
        return (
            f"EvalResult(task={self.task!r}, value={self.value!r}, "
            f"strategy={self.strategy!r})"
        )


class Engine:
    """The unified query engine: analysis → plan → execute.

    One engine owns its caches (the analysis cache and the planner's core
    cache) — no cache state is process-global.  The module-level helpers
    (:func:`answer` & friends) share the default
    :class:`~repro.engine.session.EngineSession`.  Engines are cheap —
    construct a private one to isolate cache state or change the width limit;
    construct an :class:`~repro.engine.session.EngineSession` to also get
    plan caching and the batch API.
    """

    def __init__(
        self,
        max_ghd_width: int = DEFAULT_MAX_GHD_WIDTH,
        cache_size: int = 256,
        core_cache_size: int = 256,
    ) -> None:
        self.cache = AnalysisCache(cache_size)
        self.core_cache = LRUCache(core_cache_size)
        self.planner = QueryPlanner(
            self.analyze, max_ghd_width=max_ghd_width, core_cache=self.core_cache
        )

    # ------------------------------------------------------------------
    def analyze(self, target: ConjunctiveQuery | Hypergraph) -> QueryAnalysis:
        """The (cached) structural analysis of a query or hypergraph."""
        hypergraph = target.hypergraph() if isinstance(target, ConjunctiveQuery) else target
        return self.cache.get_or_create(hypergraph)

    def plan(
        self,
        query: ConjunctiveQuery,
        use_core: bool = False,
        force_strategy: str | None = None,
    ) -> Plan:
        return self.planner.plan(query, use_core=use_core, force_strategy=force_strategy)

    def cache_info(self) -> dict:
        return self.cache.info()

    def clear_cache(self) -> None:
        self.cache.clear()

    # ------------------------------------------------------------------
    def answer(self, query, database, plan=None, use_core=False) -> EvalResult:
        """The answer set ``q(D)`` (tuples over the free variables)."""
        return self._run(TASK_ANSWER, query, database, plan, use_core)

    def is_satisfiable(self, query, database, plan=None, use_core=False) -> EvalResult:
        """BCQ: is the answer set non-empty?"""
        return self._run(TASK_SATISFIABLE, query, database, plan, use_core)

    def count(self, query, database, plan=None, use_core=False) -> EvalResult:
        """#CQ: ``|q(D)|`` for full queries, distinct projections otherwise."""
        return self._run(TASK_COUNT, query, database, plan, use_core)

    # ------------------------------------------------------------------
    def _run(
        self,
        task: str,
        query: ConjunctiveQuery,
        database: Database,
        plan: Plan | None,
        use_core: bool,
    ) -> EvalResult:
        reused_plan = plan is not None
        if reused_plan and use_core:
            raise ValueError(
                "use_core applies at planning time; pass it to plan() "
                "(or omit plan=) instead of combining it with a pre-built plan"
            )
        planning = 0.0
        if plan is None:
            # Clock the planning work *this call* did: the cold analysis +
            # planning cost on first sight of a query, near-zero when a
            # session serves the plan from its cache (the plan object's own
            # planning_seconds keeps the one-off cold cost).
            planning_started = time.perf_counter()
            plan = self.plan(query, use_core=use_core)
            planning = time.perf_counter() - planning_started
        elif plan.source_query is not None and (
            plan.source_query != query
            # __eq__ compares free variables as a set; answer tuples follow
            # their *order*, so a reordered projection is a different query.
            or plan.source_query.free_variables != query.free_variables
        ):
            # A plan built for a different query would silently return that
            # query's answers; hand-built plans (source_query=None) are exempt.
            raise ValueError(
                "the supplied plan was built for a different query; "
                "re-plan or pass the query it was planned for"
            )
        backend = backend_for(plan.strategy)
        target = plan.query
        result = EvalResult(task=task, plan=plan)
        ledger_before = ledger_snapshot()
        start = time.perf_counter()
        # Solver semantics: a relation absent from the database is empty, so
        # a query mentioning it has no answers.  The ``target.atoms`` guard
        # deliberately exempts the zero-atom query — the empty conjunction
        # mentions no relation, is vacuously true, and must keep its single
        # empty-tuple answer ({()} / count 1 / satisfiable) on ANY database;
        # constants-only atoms take the normal path, where the backend checks
        # the facts.  Pinned by tests/engine/test_executor.py::TestTrivialEdgeCases.
        empty = bool(target.atoms) and any(
            not database.has_relation(atom.relation) for atom in target.atoms
        )
        if task == TASK_ANSWER:
            result.rows = set() if empty else backend.answers(target, database, plan)
        elif task == TASK_SATISFIABLE:
            result.satisfiable = False if empty else backend.boolean(target, database, plan)
        elif task == TASK_COUNT:
            result.count = 0 if empty else backend.count(target, database, plan)
        else:
            raise ValueError(f"unknown task {task!r}")
        execution = time.perf_counter() - start
        result.timings = {
            "planning_seconds": planning,
            "execution_seconds": execution,
            "total_seconds": planning + execution,
        }
        ledger_after = ledger_snapshot()
        stats_record = ledger_delta(ledger_before, ledger_after)
        if any(stats_record.values()):
            stats_record["mode"] = ledger_after["mode"]
            result.timings["stats"] = stats_record
        return result


def _default():
    # The default engine is the process-default *session*
    # (:mod:`repro.engine.session`); resolved lazily on every call so
    # ``isolated_session()`` / ``set_default_session()`` take effect, and
    # imported locally because session.py builds on this module.
    from repro.engine.session import default_session

    return default_session()


def answer(query, database, plan=None, use_core=False, engine=None) -> EvalResult:
    """``q(D)`` through the default session (see :class:`Engine.answer`)."""
    return (engine or _default()).answer(query, database, plan=plan, use_core=use_core)


def is_satisfiable(query, database, plan=None, use_core=False, engine=None) -> EvalResult:
    """BCQ through the default session."""
    return (engine or _default()).is_satisfiable(
        query, database, plan=plan, use_core=use_core
    )


def count(query, database, plan=None, use_core=False, engine=None) -> EvalResult:
    """#CQ through the default session."""
    return (engine or _default()).count(query, database, plan=plan, use_core=use_core)


def plan_query(query, use_core=False, force_strategy=None, engine=None) -> Plan:
    """Plan without executing (inspect strategy, witness, rationale)."""
    return (engine or _default()).plan(
        query, use_core=use_core, force_strategy=force_strategy
    )


def analyze(target, engine=None) -> QueryAnalysis:
    """The cached structural analysis of a query or hypergraph."""
    return (engine or _default()).analyze(target)


def clear_analysis_cache(engine=None) -> None:
    (engine or _default()).clear_cache()
