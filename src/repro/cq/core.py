"""Query cores and query equivalence.

Two CQs are equivalent iff they are homomorphically equivalent (Chandra and
Merlin), and every CQ has a unique minimal equivalent subquery, its *core* —
the object through which semantic width parameters are defined:
``sem-ghw(q) = ghw(core(q))`` (Section 4.3).

The computation here is the textbook one: search for a proper retract
(an endomorphism onto a subset of atoms fixing the free variables) and repeat
until none exists.  It is exponential in the query size, which is fine for
the query sizes this reproduction works with.
"""

from __future__ import annotations

from itertools import product

from repro.cq.query import Atom, Constant, ConjunctiveQuery


def _apply_mapping(atom: Atom, mapping: dict) -> Atom:
    terms = []
    for term in atom.terms:
        if isinstance(term, Constant):
            terms.append(term)
        else:
            terms.append(mapping.get(term, term))
    return Atom(atom.relation, terms)


def find_homomorphism_between_queries(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> dict | None:
    """A homomorphism from ``source`` to ``target``: a mapping of the source
    variables to target terms that fixes free variables and sends every source
    atom to some target atom.  Returns the mapping or ``None``."""
    target_atoms = set(target.atoms)
    target_terms = list(dict.fromkeys(
        term for atom in target.atoms for term in atom.terms
    ))
    if not target_terms:
        target_terms = [Constant(0)]
    source_variables = list(source.variables)
    free = set(source.free_variables)

    # Candidate images per variable: free variables must map to themselves.
    candidates = {}
    for variable in source_variables:
        if variable in free:
            candidates[variable] = [variable]
        else:
            candidates[variable] = target_terms

    def consistent(mapping: dict) -> bool:
        for atom in source.atoms:
            if all(
                (isinstance(t, Constant) or t in mapping) for t in atom.terms
            ):
                if _apply_mapping(atom, mapping) not in target_atoms:
                    return False
        return True

    order = sorted(source_variables, key=lambda v: (len(candidates[v]), repr(v)))

    def backtrack(index: int, mapping: dict) -> dict | None:
        if index == len(order):
            return dict(mapping) if consistent(mapping) else None
        variable = order[index]
        for image in candidates[variable]:
            mapping[variable] = image
            if consistent(mapping):
                result = backtrack(index + 1, mapping)
                if result is not None:
                    return result
            del mapping[variable]
        return None

    return backtrack(0, {})


def queries_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """CQ equivalence via mutual homomorphisms (free variables must coincide)."""
    if set(first.free_variables) != set(second.free_variables):
        return False
    return (
        find_homomorphism_between_queries(first, second) is not None
        and find_homomorphism_between_queries(second, first) is not None
    )


def core_of(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of a CQ: a minimal equivalent subquery.

    Repeatedly looks for a retraction onto a proper subset of atoms; the
    result is unique up to isomorphism, and for our purposes any
    representative is sufficient.
    """
    current = query
    improved = True
    while improved:
        improved = False
        atoms = list(current.atoms)
        for drop_index in range(len(atoms)):
            candidate_atoms = tuple(a for i, a in enumerate(atoms) if i != drop_index)
            if not candidate_atoms:
                continue
            candidate = current.restrict_to_atoms(candidate_atoms)
            if set(candidate.free_variables) != set(current.free_variables):
                continue
            # current must map homomorphically into the candidate subquery
            # (the reverse direction is automatic for subqueries).
            if find_homomorphism_between_queries(current, candidate) is not None:
                current = candidate
                improved = True
                break
    return current


def semantic_core_hypergraph(query: ConjunctiveQuery):
    """The hypergraph of the query's core (used by semantic width)."""
    return core_of(query).hypergraph()


def product_query(first: ConjunctiveQuery, second: ConjunctiveQuery) -> ConjunctiveQuery:
    """A convenience combinator used by tests: the conjunction of two queries
    over disjoint variable namespaces (variables are tagged by side)."""
    def tag(atom: Atom, side: str) -> Atom:
        terms = [
            t if isinstance(t, Constant) else (side, t)
            for t in atom.terms
        ]
        return Atom(atom.relation, terms)

    atoms = [tag(a, "L") for a in first.atoms] + [tag(a, "R") for a in second.atoms]
    free = [("L", v) for v in first.free_variables] + [("R", v) for v in second.free_variables]
    return ConjunctiveQuery(atoms, free_variables=free)


def all_homomorphisms_between_queries(
    source: ConjunctiveQuery, target: ConjunctiveQuery, limit: int = 10_000
) -> list[dict]:
    """All homomorphisms from ``source`` to ``target`` (brute force; capped).

    Used by property tests for the equivalence machinery on tiny queries.
    """
    target_terms = list(dict.fromkeys(
        term for atom in target.atoms for term in atom.terms
    ))
    variables = list(source.variables)
    free = set(source.free_variables)
    results = []
    pools = [
        [v] if v in free else target_terms
        for v in variables
    ]
    target_atoms = set(target.atoms)
    for combination in product(*pools):
        mapping = dict(zip(variables, combination))
        if all(_apply_mapping(a, mapping) in target_atoms for a in source.atoms):
            results.append(mapping)
            if len(results) >= limit:
                break
    return results
