"""Databases as sets of ground atoms, organised into named relations.

Following the paper, a database is a finite set of ground relational atoms in
the standard "succinct" representation — lists of tuples per relation symbol —
as opposed to the truth-table encoding discussed in the related-work section.
``Database.size()`` is the ``||D||`` measure used in the Theorem 3.4 size
bounds: the total number of cells (tuples times arity) plus the number of
relations.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

Value = Hashable


class Relation:
    """A named relation: a set of equal-length tuples."""

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple] = ()) -> None:
        self.name = name
        self.arity = arity
        self.tuples: set[tuple] = set()
        for row in tuples:
            self.add(row)

    def add(self, row: Iterable[Value]) -> None:
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name!r} has arity {self.arity}, got tuple of length {len(row)}"
            )
        self.tuples.add(row)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(sorted(self.tuples, key=repr))

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.arity == other.arity and self.tuples == other.tuples

    def size(self) -> int:
        """Number of cells stored in the relation."""
        return len(self.tuples) * max(1, self.arity)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, tuples={len(self.tuples)})"


class Database:
    """A database: a mapping from relation names to :class:`Relation` objects."""

    def __init__(self, relations: Mapping[str, Relation] | Iterable[Relation] = ()) -> None:
        self.relations: dict[str, Relation] = {}
        if isinstance(relations, Mapping):
            iterable = relations.values()
        else:
            iterable = relations
        for relation in iterable:
            self.add_relation(relation)

    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        if relation.name in self.relations:
            raise ValueError(f"relation {relation.name!r} already present")
        self.relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        if name not in self.relations:
            raise KeyError(f"relation {name!r} not in database")
        return self.relations[name]

    def has_relation(self, name: str) -> bool:
        return name in self.relations

    def add_fact(self, name: str, row: Iterable[Value]) -> None:
        row = tuple(row)
        if name not in self.relations:
            self.relations[name] = Relation(name, len(row))
        self.relations[name].add(row)

    # ------------------------------------------------------------------
    def active_domain(self) -> frozenset:
        domain: set = set()
        for relation in self.relations.values():
            for row in relation.tuples:
                domain.update(row)
        return frozenset(domain)

    def size(self) -> int:
        """``||D||``: total cells plus number of relations."""
        return sum(r.size() for r in self.relations.values()) + len(self.relations)

    def total_tuples(self) -> int:
        return sum(len(r) for r in self.relations.values())

    def copy(self) -> "Database":
        clone = Database()
        for relation in self.relations.values():
            clone.add_relation(Relation(relation.name, relation.arity, relation.tuples))
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.relations == other.relations

    def __repr__(self) -> str:
        return (
            f"Database(relations={len(self.relations)}, tuples={self.total_tuples()}, "
            f"size={self.size()})"
        )
