"""Databases as sets of ground atoms, organised into named relations.

Following the paper, a database is a finite set of ground relational atoms in
the standard "succinct" representation — lists of tuples per relation symbol —
as opposed to the truth-table encoding discussed in the related-work section.
``Database.size()`` is the ``||D||`` measure used in the Theorem 3.4 size
bounds: the total number of cells (tuples times arity) plus the number of
relations.
"""

from __future__ import annotations

import decimal
import numbers
import zlib
from collections.abc import Hashable, Iterable, Mapping

Value = Hashable


def _shard_key(value: Hashable):
    """A representative of ``value``'s equality class, safe to ``repr``.

    Sharding is only correct when **equal values land in the same shard**
    (the disjointness argument routes every fact of a satisfying assignment
    by one shared value).  Python equality crosses types — ``True == 1 ==
    1.0 == Decimal(1)`` — but their reprs differ, so numbers are normalised
    to a canonical member of the class (int when integral, float otherwise)
    before hashing, mirroring the guarantee the builtin ``hash`` gives.
    Containers that compare by content are canonalised recursively, with
    frozensets ordered (their iteration order is salt-dependent for string
    elements).  Unequal values may still *collide* into one repr — that only
    costs shard balance, never correctness.  Custom value types are required
    to define ``__repr__`` consistently with ``__eq__`` (equal values, equal
    reprs); values stuck with the identity-based default repr are rejected
    loudly rather than silently misrouted.
    """
    if isinstance(value, str):
        # Plain strings pass through; str subclasses (str-mixin Enums) that
        # compare equal to the underlying string are flattened onto it.
        # str.__str__ directly, because subclasses override __str__ (an
        # enum's str() is its member name on Python >= 3.11).
        return str.__str__(value)
    if isinstance(value, numbers.Integral):  # includes bool and IntEnum
        return int(value)
    if isinstance(value, numbers.Rational) and value.denominator == 1:
        # Exact, NOT through float: Fraction(10**30) == 10**30 but
        # float() would round one and not the other.
        return int(value.numerator)
    if isinstance(value, numbers.Real):
        try:
            as_float = float(value)
        except (OverflowError, ValueError):
            # No float equals this value (an equal float would BE its own
            # float()), so staying un-normalised cannot split an equality
            # class across shards.
            return value
        return int(as_float) if as_float.is_integer() else as_float
    if isinstance(value, numbers.Complex) and value.imag == 0:
        return _shard_key(value.real)
    if isinstance(value, decimal.Decimal):
        # Decimal deliberately stays outside the numbers tower, but it DOES
        # compare equal across it (Decimal(1) == 1, Decimal("0.5") == 0.5).
        if value.is_finite() and value == value.to_integral_value():
            return int(value)
        try:
            return float(value)
        except (OverflowError, ValueError):
            return value
    if isinstance(value, tuple):
        return tuple(_shard_key(item) for item in value)
    if isinstance(value, frozenset):
        return "fs{" + ",".join(sorted(repr(_shard_key(item)) for item in value)) + "}"
    if isinstance(value, bytes):
        return bytes(value)
    if isinstance(value, range):
        # range compares as a sequence: range(0) == range(5, 5), and the
        # step is irrelevant below two elements.
        return (
            "range",
            len(value),
            value[0] if len(value) else None,
            value.step if len(value) > 1 else None,
        )
    if type(value).__repr__ is object.__repr__:
        # The default repr embeds the memory address: equal instances would
        # route to different shards (silently losing answers) and routing
        # would change between runs.  Refusing loudly beats wrong results.
        raise TypeError(
            f"cannot shard a value of type {type(value).__name__}: its "
            "identity-based default repr is not stable across equal "
            "instances or runs; define __repr__ consistently with __eq__"
        )
    return value


def shard_of(value: Hashable, shards: int) -> int:
    """The shard (``0 <= shard < shards``) a domain value hashes to.

    Deliberately *not* Python's builtin ``hash``: that is salted per process
    (``PYTHONHASHSEED``), and shard assignment must be reproducible across
    runs so a benchmark or a failing differential seed replays identically.
    CRC32 of the canonical repr (see :func:`_shard_key`) is stable, cheap,
    and spreads the small integer domains the generators use.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards == 1:
        return 0
    return zlib.crc32(repr(_shard_key(value)).encode("utf-8")) % shards


class Relation:
    """A named relation: a set of equal-length tuples with a version seam.

    Mutation is append-only and *versioned*: every distinct row appended
    through :meth:`add` lands in an insertion-ordered log and bumps
    :attr:`version` (the log length).  Cache layers key on
    ``(relation, version)`` instead of cardinality fingerprints, and
    incremental consumers ask :meth:`delta_since` for exactly the rows that
    arrived after the version they last saw.  Duplicate appends are no-ops —
    they change neither the set, the log, nor the version.
    """

    def __init__(self, name: str, arity: int, tuples: Iterable[tuple] = ()) -> None:
        self.name = name
        self.arity = arity
        self.tuples: set[tuple] = set()
        #: Insertion-ordered append log; ``version == len(_log)`` always.
        self._log: list[tuple] = []
        self._sorted: list[tuple] | None = None
        self._sorted_version = -1
        for row in tuples:
            self.add(row)

    @property
    def version(self) -> int:
        """Monotone mutation counter: the number of distinct rows ever
        appended.  Equal to ``len(self.tuples)`` as long as all mutation
        goes through :meth:`add`."""
        return len(self._log)

    def add(self, row: Iterable[Value]) -> None:
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name!r} has arity {self.arity}, got tuple of length {len(row)}"
            )
        if row not in self.tuples:
            self.tuples.add(row)
            self._log.append(row)

    def delta_since(self, version: int) -> tuple:
        """The rows appended after ``version``, in insertion order.

        ``delta_since(0)`` is every row; ``delta_since(self.version)`` is
        empty.  The contract behind semi-naive refresh: a consumer that saw
        the relation at version ``v`` catches up by processing exactly these
        rows.
        """
        if not 0 <= version <= len(self._log):
            raise ValueError(
                f"relation {self.name!r} is at version {len(self._log)}; "
                f"cannot compute delta since {version}"
            )
        return tuple(self._log[version:])

    @classmethod
    def _trusted(cls, name: str, arity: int, rows: Iterable[tuple]) -> "Relation":
        """Bulk-load pre-validated, distinct tuples without per-row checks
        (partitioning, wire decode, copies).  Version state is coherent: the
        log holds every row, so ``delta_since`` and the version counter
        behave exactly as if the rows had been appended one by one."""
        relation = cls.__new__(cls)
        relation.name = name
        relation.arity = arity
        relation._log = list(rows)
        relation.tuples = set(relation._log)
        relation._sorted = None
        relation._sorted_version = -1
        return relation

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        # Deterministic scan order, computed once per version: the sorted
        # order is cached and invalidated by the version counter, so the
        # naive solver's repeated scans stop paying the n·log(n) re-sort.
        if self._sorted is None or self._sorted_version != len(self._log):
            self._sorted = sorted(self.tuples, key=repr)
            self._sorted_version = len(self._log)
        return iter(self._sorted)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.arity == other.arity and self.tuples == other.tuples

    def __getstate__(self):
        # The log alone reconstructs the tuple set (it holds every distinct
        # row in insertion order), so pickles ship one sequence instead of
        # set + log + sort cache.
        return (self.name, self.arity, self._log)

    def __setstate__(self, state) -> None:
        self.name, self.arity, log = state
        self._log = list(log)
        self.tuples = set(self._log)
        self._sorted = None
        self._sorted_version = -1

    def size(self) -> int:
        """Number of cells stored in the relation."""
        return len(self.tuples) * max(1, self.arity)

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, arity={self.arity}, "
            f"tuples={len(self.tuples)}, version={len(self._log)})"
        )


class Database:
    """A database: a mapping from relation names to :class:`Relation` objects."""

    def __init__(self, relations: Mapping[str, Relation] | Iterable[Relation] = ()) -> None:
        self.relations: dict[str, Relation] = {}
        #: Opt-in memo of atom views (see :meth:`enable_atom_cache`).
        self._atom_cache: dict | None = None
        #: Lazily created columnar store (see :meth:`columnar_view`).
        self._columnar = None
        #: Lazily created per-relation statistics (see :meth:`statistics`).
        self._statistics = None
        #: Memoized active domain (see :meth:`active_domain`).
        self._domain_values: set | None = None
        self._domain_frozen: frozenset | None = None
        self._domain_versions: dict[str, int] = {}
        if isinstance(relations, Mapping):
            iterable = relations.values()
        else:
            iterable = relations
        for relation in iterable:
            self.add_relation(relation)

    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        if relation.name in self.relations:
            raise ValueError(f"relation {relation.name!r} already present")
        self.relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        if name not in self.relations:
            raise KeyError(f"relation {name!r} not in database")
        return self.relations[name]

    def has_relation(self, name: str) -> bool:
        return name in self.relations

    def add_fact(self, name: str, row: Iterable[Value]) -> None:
        row = tuple(row)
        if name not in self.relations:
            self.relations[name] = Relation(name, len(row))
        self.relations[name].add(row)

    @property
    def version(self) -> int:
        """Monotone database-level version: total appended rows plus the
        number of relations.  Bumps on every ``add_fact`` of a new row and on
        every ``add_relation``, so any ``(id(db), db.version)`` key is safe
        to memoize on — growth anywhere in the database changes it."""
        return len(self.relations) + sum(
            relation.version for relation in self.relations.values()
        )

    # ------------------------------------------------------------------
    @property
    def atom_cache(self) -> dict | None:
        """The atom-view memo consulted by :func:`repro.cq.relational.from_atom`
        (``None`` unless :meth:`enable_atom_cache` was called)."""
        return self._atom_cache

    def enable_atom_cache(self) -> "Database":
        """Turn on atom-view memoization for this database; returns ``self``.

        Intended for **resident** databases — shards held by a runtime worker
        or the session's partition cache — that are evaluated repeatedly:
        ``from_atom`` then reuses one :class:`~repro.cq.relational.NamedRelation`
        per (relation, term pattern), together with whatever key indexes
        later joins memoized on it, instead of rescanning and re-indexing the
        stored tuples on every call.  Correctness relies on the storage
        layer's versioned append-only API: cache keys carry the relation's
        :attr:`Relation.version`, every ``add`` of a new row bumps it, and no
        removal API exists — so a stale view can only be served to code that
        mutates ``Relation.tuples`` directly, which is off-API.  On a version
        miss the cached view is *extended* with ``delta_since`` rows rather
        than rebuilt.
        """
        if self._atom_cache is None:
            self._atom_cache = {}
        return self

    # ------------------------------------------------------------------
    @property
    def columnar_cache(self):
        """The lazily created :class:`~repro.cq.columnar.ColumnarStore`
        (``None`` until :meth:`columnar_view` is first used)."""
        return self._columnar

    def columnar_store(self):
        """This database's columnar store, created on first use: one value
        interner plus the memoized columnar atom views."""
        if self._columnar is None:
            from repro.cq.columnar import ColumnarStore

            self._columnar = ColumnarStore()
        return self._columnar

    def columnar_view(self, atom):
        """The memoized :class:`~repro.cq.columnar.ColumnarRelation` view of
        ``atom`` over this database's interner.

        Sits beside the atom-view cache with the same invalidation contract:
        keys carry the relation's version, so growth through the append-only
        storage API misses — and the store extends the stale view in place
        with the ``delta_since`` rows instead of rebuilding it.  Stale views
        are only possible through off-API mutation of ``Relation.tuples``.
        """
        return self.columnar_store().view(atom, self.relation(atom.relation))

    def drop_columnar(self) -> None:
        """Drop the columnar store (views *and* interned dictionary)."""
        self._columnar = None

    # ------------------------------------------------------------------
    def statistics(self):
        """This database's :class:`~repro.cq.statistics.StatisticsStore`,
        created on first use.  Sketches are maintained incrementally on the
        version seam — appends fold ``delta_since`` rows into the existing
        per-column summaries instead of rebuilding them."""
        if self._statistics is None:
            from repro.cq.statistics import StatisticsStore

            self._statistics = StatisticsStore()
        return self._statistics

    def drop_statistics(self) -> None:
        """Drop the statistics store (it rebuilds lazily on next use)."""
        self._statistics = None

    def attach_columnar_store(self, store) -> "Database":
        """Adopt a pre-built :class:`~repro.cq.columnar.ColumnarStore` as
        this database's columnar cache (the wire-decode path); returns
        ``self``.  The caller owns the invariant that the store's base
        columns describe this database's relations."""
        self._columnar = store
        return self

    # ------------------------------------------------------------------
    def to_wire(self):
        """Encode into the compact :class:`~repro.cq.columnar.DatabaseWire`
        form (interned-id columns + one shared dictionary) — what the
        process runtime ships instead of pickling the tuple sets."""
        from repro.cq.columnar import encode_database

        return encode_database(self)

    @staticmethod
    def from_wire(wire) -> "Database":
        """Decode a :class:`~repro.cq.columnar.DatabaseWire` back into a
        database with a warm columnar store."""
        return wire.decode()

    def __getstate__(self) -> dict:
        # Shards ship as raw tuples: the atom-view cache (and the key indexes
        # memoized on its NamedRelations) and the columnar store are derived
        # data that the receiving worker rebuilds against its own access
        # pattern (each worker interns into its own dictionary).
        state = self.__dict__.copy()
        state["_atom_cache"] = None
        state["_columnar"] = None
        state["_statistics"] = None
        state["_domain_values"] = None
        state["_domain_frozen"] = None
        state["_domain_versions"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._atom_cache = None
        self._columnar = None
        self._statistics = None
        self._domain_values = None
        self._domain_frozen = None
        self._domain_versions = {}

    # ------------------------------------------------------------------
    def active_domain(self) -> frozenset:
        """The set of values appearing anywhere in the database, memoized
        behind the version seam: the first call scans everything, later
        calls fold in only the ``delta_since`` rows of relations whose
        version moved (and values from newly added relations)."""
        if self._domain_values is None:
            self._domain_values = set()
            self._domain_versions = {}
            self._domain_frozen = None
        before = len(self._domain_values)
        for name, relation in self.relations.items():
            seen = self._domain_versions.get(name, 0)
            version = relation.version
            if version > seen:
                for row in relation.delta_since(seen):
                    self._domain_values.update(row)
                self._domain_versions[name] = version
        if self._domain_frozen is None or len(self._domain_values) != before:
            self._domain_frozen = frozenset(self._domain_values)
        return self._domain_frozen

    def size(self) -> int:
        """``||D||``: total cells plus number of relations."""
        return sum(r.size() for r in self.relations.values()) + len(self.relations)

    def total_tuples(self) -> int:
        return sum(len(r) for r in self.relations.values())

    def copy(self) -> "Database":
        clone = Database()
        for relation in self.relations.values():
            clone.add_relation(
                Relation._trusted(relation.name, relation.arity, relation._log)
            )
        return clone

    # ------------------------------------------------------------------
    def partition(
        self,
        key_columns: Mapping[str, int],
        shards: int,
        broadcast: Iterable[str] = (),
        hot_keys: Iterable[Value] = (),
    ) -> list["Database"]:
        """Hash-partition the database into ``shards`` disjoint-plus-broadcast
        pieces.

        ``key_columns`` maps relation names to the column to partition on:
        each tuple of such a relation lands in exactly one shard, chosen by
        :func:`shard_of` on the value in that column.  Relations named in
        ``broadcast`` are replicated into every shard.  Relations in neither
        collection are omitted — the caller decides what the shards need
        (the engine passes exactly the relations of the query being sharded).

        ``hot_keys`` is a set of detected **hot** partition-key values
        (heavy hitters whose mass would overload their hash shard under
        Zipfian data): rows carrying a hot value in their partition column
        are *spilled to broadcast* — replicated into every shard instead of
        concentrated in one — so the per-shard load of the remaining hashed
        rows stays near ±1 of fair share.  Spilling is sound for answer and
        satisfiability combination (every piece remains a subset of the
        original, and any satisfying assignment still finds all its facts in
        at least one shard); it deliberately breaks the count-by-disjoint-sum
        shortcut, so callers that spilled hot keys must combine counts by
        union (see ``EngineSession._run_sharded``).

        Without hot keys, the partitioned relations reconstruct the original
        exactly: every tuple appears in precisely one shard, so the shard
        databases are a partition of the partitioned relations and a
        replication of the broadcast ones.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        broadcast = tuple(broadcast)
        hot = set(hot_keys)
        overlap = set(key_columns) & set(broadcast)
        if overlap:
            raise ValueError(
                f"relations {sorted(overlap)} cannot be both partitioned and broadcast"
            )
        for name in list(key_columns) + list(broadcast):
            if name not in self.relations:
                raise KeyError(f"relation {name!r} not in database")
        for name, column in key_columns.items():
            arity = self.relations[name].arity
            if not 0 <= column < arity:
                raise ValueError(
                    f"partition column {column} out of range for relation "
                    f"{name!r} (arity {arity})"
                )
        pieces = [Database() for _ in range(shards)]
        for name, column in key_columns.items():
            relation = self.relations[name]
            buckets: list[list[tuple]] = [[] for _ in range(shards)]
            if hot:
                for row in relation._log:
                    if row[column] in hot:
                        for bucket in buckets:
                            bucket.append(row)
                    else:
                        buckets[shard_of(row[column], shards)].append(row)
            else:
                for row in relation._log:
                    buckets[shard_of(row[column], shards)].append(row)
            for piece, bucket in zip(pieces, buckets):
                piece.add_relation(Relation._trusted(name, relation.arity, bucket))
        for name in broadcast:
            relation = self.relations[name]
            for piece in pieces:
                piece.add_relation(
                    Relation._trusted(name, relation.arity, relation._log)
                )
        return pieces

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.relations == other.relations

    def __repr__(self) -> str:
        return (
            f"Database(relations={len(self.relations)}, tuples={self.total_tuples()}, "
            f"size={self.size()})"
        )
