"""#CQ for full conjunctive queries via join-tree dynamic programming.

Proposition 4.14 (Pichler and Skritek): for classes of full CQs with bounded
ghw, counting answers is in FP.  The algorithm behind the bound is the
classic dynamic program on a join tree: process the tree bottom-up and give
every row of a node's relation a weight equal to the product over children of
the summed weights of the child rows compatible with it; the total count is
the sum of weights at the root.

The correctness of the product step relies on the running-intersection
property of the join tree (different subtrees only interact through the
parent bag), which holds for join trees built from tree decompositions /
GHDs.

The unified engine (:mod:`repro.engine`) routes ``count()`` on full queries
through this DP whenever the plan carries a decomposition; non-full queries
fall back to enumeration, because with existential variables the DP would
count assignments rather than projections.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.cq.relational import NamedRelation
from repro.cq.yannakakis import JoinTree

Node = Hashable


def count_answers_via_join_tree(tree: JoinTree) -> int:
    """The number of assignments to *all* join-tree variables consistent with
    every node relation (equals ``|q(D)|`` for a full CQ).

    For every (parent, child) edge the child weights are grouped by the shared
    key *once* (``_weights_by_key``), so scoring a parent row is a dict lookup
    per child instead of a scan over the whole child relation.
    """
    weights: dict[Node, dict[tuple, int]] = {}
    order = tree.topological_order()
    for node in reversed(order):
        relation = tree.relations[node]
        child_summaries = [
            _weights_by_key(relation, tree.relations[child], weights[child])
            for child in tree.children[node]
        ]
        node_weights: dict[tuple, int] = {}
        for row in relation.rows:
            weight = 1
            for parent_key_indexes, grouped in child_summaries:
                weight *= grouped.get(tuple(row[i] for i in parent_key_indexes), 0)
                if weight == 0:
                    break
            node_weights[row] = weight
        weights[node] = node_weights
    return sum(weights[tree.root].values())


def _weights_by_key(
    parent_relation: NamedRelation,
    child_relation: NamedRelation,
    child_weights: dict[tuple, int],
) -> tuple[list[int], dict[tuple, int]]:
    """Group the child-row weights by the shared-column key.

    Returns the parent-side key positions plus ``key -> summed weight``, the
    per-edge summary the DP probes once per parent row.
    """
    shared = [c for c in parent_relation.columns if c in child_relation.columns]
    parent_key_indexes = [parent_relation.column_index(c) for c in shared]
    child_indexes = [child_relation.column_index(c) for c in shared]
    grouped: dict[tuple, int] = {}
    for row, weight in child_weights.items():
        key = tuple(row[i] for i in child_indexes)
        grouped[key] = grouped.get(key, 0) + weight
    return parent_key_indexes, grouped


def naive_count(tree: JoinTree) -> int:
    """Reference implementation: materialise the full join and count rows."""
    from repro.cq.yannakakis import yannakakis_full

    return len(yannakakis_full(tree))
