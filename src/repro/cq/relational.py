"""A zero-copy, hash-indexed relational-algebra kernel over named columns.

The decomposition-guided evaluators (Yannakakis, GHD evaluation, counting)
work on *named relations*: a :class:`NamedRelation` is a set of rows over an
ordered tuple of column names (query variables).  Joins and semijoins are
hash-based, so a single join costs time proportional to the sizes of the
inputs plus the output — which is what makes the Proposition 2.2 upper bound
(polynomial-time BCQ for bounded ghw) come out in the experiments.

Three engineering rules keep the constant factors down:

* **cached column positions** — ``column_index`` is a dict lookup, never a
  ``tuple.index`` scan;
* **memoized key indexes** — the hash index a join or semijoin builds over a
  key-column set is cached on the relation and reused by every later
  operation over the same key (the Yannakakis passes hit the same parent
  relation once per child); any mutation invalidates the caches;
* **zero-copy results** — operations that cannot change the row set
  (projection onto all columns, a semijoin that filters nothing, a rename)
  return ``self`` or share the underlying row set instead of copying it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

Value = Hashable

_ALL_ROWS = object()  # sentinel index key for the trivial (no-column) key


class NamedRelation:
    """An in-memory relation with named columns."""

    __slots__ = ("columns", "rows", "_positions", "_indexes")

    def __init__(self, columns: Sequence[Hashable], rows: Iterable[tuple] = ()) -> None:
        self.columns: tuple = tuple(columns)
        self._positions: dict = {c: i for i, c in enumerate(self.columns)}
        if len(self._positions) != len(self.columns):
            raise ValueError(f"duplicate column names: {self.columns!r}")
        self.rows: set[tuple] = set()
        self._indexes: dict = {}
        width = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ValueError(f"row {row!r} does not match columns {self.columns!r}")
            self.rows.add(row)

    @classmethod
    def _trusted(cls, columns: tuple, rows: set) -> "NamedRelation":
        """Internal constructor: adopt an already-validated row set without
        re-checking widths (and without copying)."""
        relation = object.__new__(cls)
        relation.columns = columns
        relation._positions = {c: i for i, c in enumerate(columns)}
        relation.rows = rows
        relation._indexes = {}
        return relation

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NamedRelation):
            return NotImplemented
        if self.columns == other.columns:
            return self.rows == other.rows
        if set(self.columns) != set(other.columns):
            return False
        if len(self.rows) != len(other.rows):
            return False
        # Column-permutation index mapping: remap each row of ``other`` into
        # this relation's column order and test membership — no materialised
        # projections.
        mapping = tuple(other._positions[c] for c in self.columns)
        return all(
            tuple(row[i] for i in mapping) in self.rows for row in other.rows
        )

    def __repr__(self) -> str:
        return f"NamedRelation(columns={self.columns!r}, rows={len(self.rows)})"

    def column_index(self, column: Hashable) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise ValueError(f"{column!r} is not a column of {self.columns!r}") from None

    # ------------------------------------------------------------------
    # Key indexes (memoized)
    # ------------------------------------------------------------------
    def key_index(self, columns: Sequence[Hashable]) -> dict:
        """The hash index ``key tuple -> tuple of rows`` over the given key
        columns, built once and cached until the relation is mutated."""
        positions = tuple(self._positions[c] for c in columns)
        cache_key = positions if positions else _ALL_ROWS
        index = self._indexes.get(cache_key)
        if index is None:
            index = {}
            for row in self.rows:
                index.setdefault(tuple(row[i] for i in positions), []).append(row)
            self._indexes[cache_key] = index
        return index

    def invalidate_indexes(self) -> None:
        """Drop the memoized key indexes (call after any direct mutation of
        ``rows``; the in-place operations below do it automatically)."""
        self._indexes.clear()

    @property
    def cached_index_keys(self) -> tuple:
        """The key-column position tuples currently memoized (for tests)."""
        return tuple(k for k in self._indexes if k is not _ALL_ROWS)

    # ------------------------------------------------------------------
    def project(self, columns: Sequence[Hashable]) -> "NamedRelation":
        """Projection onto the given columns (duplicates collapse)."""
        columns = tuple(columns)
        if columns == self.columns:
            return self
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names: {columns!r}")
        indexes = [self.column_index(c) for c in columns]
        projected = {tuple(row[i] for i in indexes) for row in self.rows}
        return NamedRelation._trusted(columns, projected)

    def select_equal(self, column: Hashable, value: Value) -> "NamedRelation":
        index = self.column_index(column)
        return NamedRelation._trusted(
            self.columns, {row for row in self.rows if row[index] == value}
        )

    def rename(self, mapping: dict) -> "NamedRelation":
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        if len(set(new_columns)) != len(new_columns):
            raise ValueError(f"duplicate column names: {new_columns!r}")
        if new_columns == self.columns:
            return self
        # Rows are shared (never mutated through a renamed view): in-place
        # operations rebind ``rows`` to a fresh set instead of mutating it.
        return NamedRelation._trusted(new_columns, self.rows)

    # ------------------------------------------------------------------
    def natural_join(self, other: "NamedRelation") -> "NamedRelation":
        """Hash-based natural join on the shared columns (reusing the cached
        key index of ``other`` when one exists)."""
        shared = [c for c in self.columns if c in other._positions]
        other_only = [c for c in other.columns if c not in self._positions]
        result_columns = self.columns + tuple(other_only)
        if not shared:
            other_only_indexes = [other._positions[c] for c in other_only]
            rows = {
                left + tuple(right[i] for i in other_only_indexes)
                for left in self.rows
                for right in other.rows
            }
            return NamedRelation._trusted(result_columns, rows)
        left_key_indexes = [self._positions[c] for c in shared]
        other_only_indexes = [other._positions[c] for c in other_only]
        buckets = other.key_index(shared)
        rows = set()
        for left in self.rows:
            key = tuple(left[i] for i in left_key_indexes)
            for right in buckets.get(key, ()):
                rows.add(left + tuple(right[i] for i in other_only_indexes))
        return NamedRelation._trusted(result_columns, rows)

    def semijoin(self, other: "NamedRelation") -> "NamedRelation":
        """Keep the rows of ``self`` that join with at least one row of
        ``other`` (the Yannakakis filtering primitive).  Returns ``self``
        unchanged (no copy) when nothing is filtered out."""
        rows = self._semijoin_rows(other)
        if rows is self.rows:
            return self
        return NamedRelation._trusted(self.columns, rows)

    def semijoin_inplace(self, other: "NamedRelation") -> "NamedRelation":
        """Like :meth:`semijoin` but updates this relation, invalidating its
        cached indexes only when rows were actually removed.  Returns ``self``
        for chaining."""
        rows = self._semijoin_rows(other)
        if rows is not self.rows:
            self.rows = rows
            self.invalidate_indexes()
        return self

    def _semijoin_rows(self, other: "NamedRelation") -> set:
        """The surviving row set of a semijoin; returns ``self.rows`` (the
        very object) when every row survives."""
        shared = [c for c in self.columns if c in other._positions]
        if not shared:
            return self.rows if other.rows else set()
        left_key_indexes = [self._positions[c] for c in shared]
        right_keys = other.key_index(shared)
        rows = {
            row for row in self.rows
            if tuple(row[i] for i in left_key_indexes) in right_keys
        }
        if len(rows) == len(self.rows):
            return self.rows
        return rows

    def cross_product(self, other: "NamedRelation") -> "NamedRelation":
        if set(self.columns) & set(other.columns):
            raise ValueError("cross product requires disjoint columns")
        return self.natural_join(other)


def natural_join_all(relations: Sequence[NamedRelation]) -> NamedRelation:
    """Multi-way natural join with a cardinality-ordered greedy plan.

    At every step the two cheapest joinable relations in the pool (preferring
    pairs that share columns, so cross products are a last resort) are joined
    and the intermediate result re-enters the pool — i.e. the plan re-sorts by
    *intermediate* cardinality after each join instead of fixing an order
    upfront.
    """
    pool = list(relations)
    if not pool:
        raise ValueError("natural_join_all requires at least one relation")
    while len(pool) > 1:
        pool.sort(key=len)
        # Smallest *connected* pair first; only when no two relations in the
        # pool share a column does a cross product become unavoidable.
        pair = None
        for i in range(len(pool)):
            columns_i = set(pool[i].columns)
            for j in range(i + 1, len(pool)):
                if columns_i & set(pool[j].columns):
                    pair = (i, j)
                    break
            if pair is not None:
                break
        if pair is None:
            pair = (0, 1)
        i, j = pair
        right = pool.pop(j)
        left = pool.pop(i)
        pool.append(left.natural_join(right))
    return pool[0]


def intersect_all(relations: Sequence[NamedRelation]) -> NamedRelation:
    """Natural join of a sequence of relations (greedy smallest-first on the
    current intermediate result)."""
    return natural_join_all(relations)


def from_atom(atom, database) -> NamedRelation:
    """The named relation induced by a query atom over a database.

    Handles constants (selection) and repeated variables (equality selection)
    so the rest of the evaluators can assume clean named columns.  All
    selections and the projection run in a single pass over the stored rows.
    """
    from repro.cq.query import Constant

    relation = database.relation(atom.relation)
    columns: list = []
    keep_indexes: list[int] = []
    constant_checks: list[tuple[int, object]] = []
    equality_checks: list[tuple[int, int]] = []
    first_position: dict = {}
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constant_checks.append((index, term.value))
        elif term in first_position:
            equality_checks.append((index, first_position[term]))
        else:
            first_position[term] = index
            keep_indexes.append(index)
            columns.append(term)
    rows = set()
    for row in relation.tuples:
        if any(row[i] != value for i, value in constant_checks):
            continue
        if any(row[i] != row[anchor] for i, anchor in equality_checks):
            continue
        rows.add(tuple(row[i] for i in keep_indexes))
    return NamedRelation._trusted(tuple(columns), rows)
