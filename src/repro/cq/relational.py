"""A zero-copy, hash-indexed relational-algebra kernel over named columns.

The decomposition-guided evaluators (Yannakakis, GHD evaluation, counting)
work on *named relations*: a :class:`NamedRelation` is a set of rows over an
ordered tuple of column names (query variables).  Joins and semijoins are
hash-based, so a single join costs time proportional to the sizes of the
inputs plus the output — which is what makes the Proposition 2.2 upper bound
(polynomial-time BCQ for bounded ghw) come out in the experiments.

Three engineering rules keep the constant factors down:

* **cached column positions** — ``column_index`` is a dict lookup, never a
  ``tuple.index`` scan;
* **memoized key indexes** — the hash index a join or semijoin builds over a
  key-column set is cached on the relation and reused by every later
  operation over the same key (the Yannakakis passes hit the same parent
  relation once per child); any mutation invalidates the caches;
* **zero-copy results** — operations that cannot change the row set
  (projection onto all columns, a semijoin that filters nothing, a rename)
  return ``self`` or share the underlying row set instead of copying it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.cq.statistics import (
    ORDERING_COST,
    RelationStatistics,
    compose_join_statistics,
    estimate_join_rows,
    estimate_semijoin_fraction,
    join_ordering,
    record_cost_join,
    record_prefilter,
    record_static_join,
)

Value = Hashable

_ALL_ROWS = object()  # sentinel index key for the trivial (no-column) key

#: A pre-join semijoin filter is only worth its pass when the estimated
#: surviving fraction is at most this, over a relation at least this large.
#: The gate is deliberately strict: uniform workloads estimate ~0.7 and the
#: filter pass there costs more than the dropped rows save, while skewed
#: workloads — where the filter is decisive — estimate near zero.
_PREFILTER_MAX_FRACTION = 0.5
_PREFILTER_MIN_ROWS = 32

#: Join outputs at least this large adopt *composed* statistics (cardinality
#: propagation from the input sketches) instead of being re-scanned by the
#: next ordering decision.  The sketch build costs a few microseconds per
#: row-value, so even a ~300-row intermediate pays milliseconds per call;
#: composition is O(sketch capacity) per column regardless of rows.
_DERIVED_STATS_MIN_ROWS = 64


class NamedRelation:
    """An in-memory relation with named columns."""

    __slots__ = ("columns", "rows", "_positions", "_indexes", "_stats")

    def __init__(self, columns: Sequence[Hashable], rows: Iterable[tuple] = ()) -> None:
        self.columns: tuple = tuple(columns)
        self._positions: dict = {c: i for i, c in enumerate(self.columns)}
        if len(self._positions) != len(self.columns):
            raise ValueError(f"duplicate column names: {self.columns!r}")
        self.rows: set[tuple] = set()
        self._indexes: dict = {}
        self._stats = None
        width = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ValueError(f"row {row!r} does not match columns {self.columns!r}")
            self.rows.add(row)

    @classmethod
    def _trusted(cls, columns: tuple, rows: set) -> "NamedRelation":
        """Internal constructor: adopt an already-validated row set without
        re-checking widths (and without copying)."""
        relation = object.__new__(cls)
        relation.columns = columns
        relation._positions = {c: i for i, c in enumerate(columns)}
        relation.rows = rows
        relation._indexes = {}
        relation._stats = None
        return relation

    def __getstate__(self):
        # Serialization contract (process-runtime workers): ship columns and
        # raw rows only.  The memoized key indexes are derived data — often
        # larger than the rows themselves — and are rebuilt on the receiving
        # side on first use, against whatever operations actually run there.
        return (self.columns, self.rows)

    def __setstate__(self, state) -> None:
        columns, rows = state
        self.columns = columns
        self._positions = {c: i for i, c in enumerate(columns)}
        self.rows = rows
        self._indexes = {}
        self._stats = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, NamedRelation):
            return NotImplemented
        if self.columns == other.columns:
            # Identical column tuples: compare row sets directly, with an
            # identity short-circuit first — zero-copy operations (an
            # unfiltering semijoin, a no-op projection, a rename) share the
            # rows object, so no set comparison is needed at all.
            return self.rows is other.rows or self.rows == other.rows
        if set(self.columns) != set(other.columns):
            return False
        if len(self.rows) != len(other.rows):
            return False
        # Column-permutation index mapping: remap each row of ``other`` into
        # this relation's column order and test membership — no materialised
        # projections.
        mapping = tuple(other._positions[c] for c in self.columns)
        return all(
            tuple(row[i] for i in mapping) in self.rows for row in other.rows
        )

    def __repr__(self) -> str:
        return f"NamedRelation(columns={self.columns!r}, rows={len(self.rows)})"

    def column_index(self, column: Hashable) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise ValueError(f"{column!r} is not a column of {self.columns!r}") from None

    # ------------------------------------------------------------------
    # Key indexes (memoized)
    # ------------------------------------------------------------------
    def key_index(self, columns: Sequence[Hashable]) -> dict:
        """The hash index ``key tuple -> tuple of rows`` over the given key
        columns, built once and cached until the relation is mutated."""
        positions = tuple(self._positions[c] for c in columns)
        cache_key = positions if positions else _ALL_ROWS
        index = self._indexes.get(cache_key)
        if index is None:
            index = {}
            for row in self.rows:
                index.setdefault(tuple(row[i] for i in positions), []).append(row)
            self._indexes[cache_key] = index
        return index

    def invalidate_indexes(self) -> None:
        """Drop the memoized key indexes and statistics (call after any
        direct mutation of ``rows``; the in-place operations below do it
        automatically)."""
        self._indexes.clear()
        self._stats = None

    def extend_rows(self, new_rows: Iterable[tuple]) -> int:
        """Append rows in place, *patching* every memoized key index instead
        of dropping it: each genuinely new row is appended to its hash bucket
        in every cached index, so a resident view stays warm across appends.
        Duplicates are skipped (set semantics — a bucket must never hold the
        same row twice).  Returns the number of rows actually added.

        Only long-lived owners (the atom-view cache) may call this: it
        mutates ``rows`` in place, so it must never run on a relation whose
        row set is shared with derived per-evaluation relations that are
        still alive.
        """
        added = 0
        stats = self._stats
        for row in new_rows:
            if row in self.rows:
                continue
            self.rows.add(row)
            added += 1
            for cache_key, index in self._indexes.items():
                positions = () if cache_key is _ALL_ROWS else cache_key
                index.setdefault(tuple(row[i] for i in positions), []).append(row)
            if stats is not None:
                stats.extend_rows((row,))
        return added

    def statistics(self) -> RelationStatistics:
        """Per-column sketches of this relation, built once and memoized
        until a mutation; appends through :meth:`extend_rows` fold the new
        rows into the existing sketches instead of rebuilding."""
        stats = self._stats
        if stats is None:
            stats = RelationStatistics.from_rows(self.columns, self.rows)
            self._stats = stats
        return stats

    def adopt_statistics(self, stats: RelationStatistics) -> None:
        """Install externally composed statistics (cardinality propagation
        for large join outputs) so :meth:`statistics` never scans the rows.
        Any later mutation invalidates them like a built sketch."""
        self._stats = stats

    @property
    def cached_index_keys(self) -> tuple:
        """The key-column position tuples currently memoized (for tests)."""
        return tuple(k for k in self._indexes if k is not _ALL_ROWS)

    # ------------------------------------------------------------------
    def project(self, columns: Sequence[Hashable]) -> "NamedRelation":
        """Projection onto the given columns (duplicates collapse)."""
        columns = tuple(columns)
        if columns == self.columns:
            return self
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names: {columns!r}")
        indexes = [self.column_index(c) for c in columns]
        projected = {tuple(row[i] for i in indexes) for row in self.rows}
        return NamedRelation._trusted(columns, projected)

    def select_equal(self, column: Hashable, value: Value) -> "NamedRelation":
        index = self.column_index(column)
        return NamedRelation._trusted(
            self.columns, {row for row in self.rows if row[index] == value}
        )

    def rename(self, mapping: dict) -> "NamedRelation":
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        if len(set(new_columns)) != len(new_columns):
            raise ValueError(f"duplicate column names: {new_columns!r}")
        if new_columns == self.columns:
            return self
        # Rows are shared (never mutated through a renamed view): in-place
        # operations rebind ``rows`` to a fresh set instead of mutating it.
        return NamedRelation._trusted(new_columns, self.rows)

    # ------------------------------------------------------------------
    def natural_join(self, other: "NamedRelation") -> "NamedRelation":
        """Hash-based natural join on the shared columns (reusing the cached
        key index of ``other`` when one exists)."""
        shared = [c for c in self.columns if c in other._positions]
        other_only = [c for c in other.columns if c not in self._positions]
        result_columns = self.columns + tuple(other_only)
        if not shared:
            other_only_indexes = [other._positions[c] for c in other_only]
            rows = {
                left + tuple(right[i] for i in other_only_indexes)
                for left in self.rows
                for right in other.rows
            }
            return NamedRelation._trusted(result_columns, rows)
        left_key_indexes = [self._positions[c] for c in shared]
        other_only_indexes = [other._positions[c] for c in other_only]
        buckets = other.key_index(shared)
        rows = set()
        for left in self.rows:
            key = tuple(left[i] for i in left_key_indexes)
            for right in buckets.get(key, ()):
                rows.add(left + tuple(right[i] for i in other_only_indexes))
        return NamedRelation._trusted(result_columns, rows)

    def semijoin(self, other: "NamedRelation") -> "NamedRelation":
        """Keep the rows of ``self`` that join with at least one row of
        ``other`` (the Yannakakis filtering primitive).  Returns ``self``
        unchanged (no copy) when nothing is filtered out."""
        rows = self._semijoin_rows(other)
        if rows is self.rows:
            return self
        return NamedRelation._trusted(self.columns, rows)

    def semijoin_inplace(self, other: "NamedRelation") -> "NamedRelation":
        """Like :meth:`semijoin` but updates this relation, invalidating its
        cached indexes only when rows were actually removed.  Returns ``self``
        for chaining."""
        rows = self._semijoin_rows(other)
        if rows is not self.rows:
            self.rows = rows
            self.invalidate_indexes()
        return self

    def _semijoin_rows(self, other: "NamedRelation") -> set:
        """The surviving row set of a semijoin; returns ``self.rows`` (the
        very object) when every row survives."""
        shared = [c for c in self.columns if c in other._positions]
        if not shared:
            return self.rows if other.rows else set()
        left_key_indexes = [self._positions[c] for c in shared]
        right_keys = other.key_index(shared)
        rows = {
            row for row in self.rows
            if tuple(row[i] for i in left_key_indexes) in right_keys
        }
        if len(rows) == len(self.rows):
            return self.rows
        return rows

    def cross_product(self, other: "NamedRelation") -> "NamedRelation":
        if set(self.columns) & set(other.columns):
            raise ValueError("cross product requires disjoint columns")
        return self.natural_join(other)


def natural_join_all(
    relations: Sequence[NamedRelation], trace: list | None = None
) -> NamedRelation:
    """Multi-way natural join, cost-ordered where ordering has leverage.

    **Static order** (the historical behaviour, and still the path for pools
    of two — where there is no ordering decision to make): greedy
    overlap-first pair selection.  At every step the pool pair sharing the
    **most columns** is joined (ties broken by the smaller combined
    cardinality) and the intermediate result re-enters the pool; cross
    products are a last resort, taken only when no two relations share a
    column.  Preferring overlap over raw size matters twice: a pair agreeing
    on two columns is quadratically more selective than a pair agreeing on
    one (hub-and-spoke bags: joining two spokes on the hub alone
    materialises ~``n^2/d`` rows where the two-column pair stays
    near-linear), and the *primary* criterion is pure column structure — so
    wherever the maximum overlap is unique, hash-sharded execution picks the
    same join shape in every shard as the unsharded plan does, and per-shard
    intermediates partition the unsharded ones.  (Pure cardinality-based
    selection used to flip the one-column/two-column choice on per-shard
    size jitter, blowing intermediates up by the domain factor.)

    **Cost-based order** (the default mode, for pools of three or more):
    pick the overlapping pair with the smallest *estimated* output, using
    the per-column sketches (:meth:`NamedRelation.statistics`) and the
    heavy-hitter-corrected independence estimate — the structure-only
    static heuristic is exactly what Zipfian data defeats, since "most
    shared columns" says nothing about a hub value carrying a third of a
    column's mass.  Ties in the estimate fall back to the static criteria
    (more shared columns, then smaller combined size), so uniform data
    where the estimates genuinely tie keeps the historical shape.  Before
    the chosen join runs, a **sideways-information-passing** step semijoins
    each input against the other when the sketches predict a meaningful
    reduction — the compact key-set filter trims the probe side before any
    bucket is built, the predicate-transfer/Bloom-join move.  Every
    decision records its estimate against the actual output in the
    process-wide statistics ledger (`EvalResult.timings["stats"]`).

    Both kernels (tuple-set and columnar) flow through this one function;
    ``trace``, when given, receives the intermediate result size after each
    pairwise join (the regression harness compares orders with it).
    """
    pool = list(relations)
    if not pool:
        raise ValueError("natural_join_all requires at least one relation")
    cost_mode = len(pool) >= 3 and join_ordering() == ORDERING_COST
    while len(pool) > 1:
        if cost_mode:
            joined = _cost_join_step(pool)
        else:
            joined = _static_join_step(pool)
        pool.append(joined)
        if trace is not None:
            trace.append(len(joined))
    return pool[0]


def _static_join_step(pool: list) -> NamedRelation:
    """One overlap-greedy join step: pop the chosen pair, return the join."""
    pool.sort(key=len)
    pair = None
    best = None
    for i in range(len(pool)):
        columns_i = set(pool[i].columns)
        for j in range(i + 1, len(pool)):
            shared = len(columns_i & set(pool[j].columns))
            if not shared:
                continue
            score = (shared, -(len(pool[i]) + len(pool[j])))
            if best is None or score > best:
                best = score
                pair = (i, j)
    if pair is None:
        pair = (0, 1)
    i, j = pair
    right = pool.pop(j)
    left = pool.pop(i)
    record_static_join()
    return left.natural_join(right)


def _cost_join_step(pool: list) -> NamedRelation:
    """One cost-based join step: pop the pair with the smallest estimated
    output (sketch-driven), optionally semijoin-prefilter the inputs, join.

    Estimation only runs where there is a decision to make: with a single
    overlapping pair (the final step of every multi-way join, and forced
    chain tails) the sketches cannot change the outcome, so the step joins
    directly and records as static — that keeps the cost mode's overhead on
    uniform data down to the steps where ordering has leverage.
    """
    pool.sort(key=len)
    candidates = []
    for i in range(len(pool)):
        set_i = set(pool[i].columns)
        for j in range(i + 1, len(pool)):
            shared = [c for c in pool[j].columns if c in set_i]
            if shared:
                candidates.append((i, j, shared))
    if not candidates:
        # Cross product fallback: the two smallest relations (pool sorted).
        right = pool.pop(1)
        left = pool.pop(0)
        record_static_join()
        return left.natural_join(right)
    if len(candidates) == 1:
        i, j, _ = candidates[0]
        right = pool.pop(j)
        left = pool.pop(i)
        record_static_join()
        return left.natural_join(right)
    stats = [relation.statistics() for relation in pool]
    pair = None
    best = None
    for i, j, shared in candidates:
        estimate = estimate_join_rows(stats[i], stats[j], shared)
        # Estimate first; static criteria (overlap, combined size) break
        # genuine ties so uniform data keeps the historical join shape.
        score = (estimate, -len(shared), len(pool[i]) + len(pool[j]))
        if best is None or score < best:
            best = score
            pair = (i, j, shared, estimate)
    i, j, shared, estimate = pair
    left_stats = stats[i]
    right_stats = stats[j]
    right = pool.pop(j)
    left = pool.pop(i)
    left = _sip_prefilter(left, right, left_stats, right_stats)
    right = _sip_prefilter(right, left, right_stats, left_stats)
    joined = left.natural_join(right)
    record_cost_join(estimate, len(joined))
    if len(joined) >= _DERIVED_STATS_MIN_ROWS:
        # Large intermediates never get scanned for sketches: compose the
        # output statistics from the input sketches instead.  Prefilters may
        # have shrunk the inputs since the sketches were built, so the
        # composition errs toward overestimating — safe for ordering.
        joined.adopt_statistics(
            compose_join_statistics(
                left_stats, right_stats, shared, joined.columns, len(joined)
            )
        )
    return joined


def _sip_prefilter(target, source, target_stats=None, source_stats=None):
    """Sideways information passing: semijoin ``target`` against ``source``
    before the join when the sketches predict a worthwhile reduction.  The
    semijoin probes ``source``'s memoized key-set/index, so surviving rows
    reach the join's bucket build pre-trimmed; a filter that removes nothing
    returns ``target`` unchanged (zero-copy).

    Callers that already hold the relations' sketches pass them in so a
    freshly filtered relation (whose own sketches would need a scan) can be
    estimated from its pre-filter statistics — an overestimate of its key
    set, which only makes the gate more conservative."""
    if len(target) < _PREFILTER_MIN_ROWS:
        return target
    shared = [c for c in target.columns if c in set(source.columns)]
    if not shared:
        return target
    fraction = estimate_semijoin_fraction(
        target_stats if target_stats is not None else target.statistics(),
        source_stats if source_stats is not None else source.statistics(),
        shared,
    )
    if fraction > _PREFILTER_MAX_FRACTION:
        return target
    before = len(target)
    filtered = target.semijoin(source)
    record_prefilter(before - len(filtered))
    return filtered


def intersect_all(relations: Sequence[NamedRelation]) -> NamedRelation:
    """Natural join of a sequence of relations (greedy smallest-first on the
    current intermediate result)."""
    return natural_join_all(relations)


def atom_shape(atom) -> tuple:
    """The selection/projection recipe an atom induces on its relation:
    ``(columns, keep_indexes, constant_checks, equality_checks)``.

    Shared by the full build, the incremental extension path, and the
    semi-naive delta evaluator, so every consumer filters appended rows
    through exactly the same recipe.
    """
    from repro.cq.query import Constant

    columns: list = []
    keep_indexes: list[int] = []
    constant_checks: list[tuple[int, object]] = []
    equality_checks: list[tuple[int, int]] = []
    first_position: dict = {}
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            constant_checks.append((index, term.value))
        elif term in first_position:
            equality_checks.append((index, first_position[term]))
        else:
            first_position[term] = index
            keep_indexes.append(index)
            columns.append(term)
    return (
        tuple(columns),
        tuple(keep_indexes),
        tuple(constant_checks),
        tuple(equality_checks),
    )


def filter_atom_rows(rows: Iterable[tuple], shape: tuple) -> set:
    """Run stored rows through an :func:`atom_shape` recipe: constant and
    repeated-variable selections, then projection onto the kept columns."""
    _, keep_indexes, constant_checks, equality_checks = shape
    out = set()
    for row in rows:
        if any(row[i] != value for i, value in constant_checks):
            continue
        if any(row[i] != row[anchor] for i, anchor in equality_checks):
            continue
        out.add(tuple(row[i] for i in keep_indexes))
    return out


def from_atom(atom, database) -> NamedRelation:
    """The named relation induced by a query atom over a database.

    Handles constants (selection) and repeated variables (equality selection)
    so the rest of the evaluators can assume clean named columns.  All
    selections and the projection run in a single pass over the stored rows.

    Databases with the **atom-view cache** enabled
    (:meth:`~repro.cq.database.Database.enable_atom_cache` — resident shards
    held by runtime workers and the session's partition cache) memoize the
    result per ``(relation, term pattern)`` together with the relation
    version it reflects.  A repeated query over a resident shard skips the
    scan entirely and reuses the cached view *and* the key indexes later
    operations memoized on it.  When the relation's version has moved, the
    cached view is **extended in place**: only the ``delta_since`` rows run
    through the atom's selection recipe, and surviving rows patch the
    memoized key-index buckets (see :meth:`NamedRelation.extend_rows`) —
    refresh cost scales with the delta, not the relation.
    """
    relation = database.relation(atom.relation)
    cache = database.atom_cache
    cache_key = None
    if cache is not None:
        cache_key = (atom.relation, atom.terms)
        entry = cache.get(cache_key)
        if entry is not None:
            seen, view, shape = entry
            version = relation.version
            if version != seen:
                view.extend_rows(
                    filter_atom_rows(relation.delta_since(seen), shape)
                )
                cache[cache_key] = (version, view, shape)
            return view
    shape = atom_shape(atom)
    version = relation.version
    rows = filter_atom_rows(relation.tuples, shape)
    result = NamedRelation._trusted(shape[0], rows)
    if cache is not None:
        if len(cache) >= 256:
            # A resident shard serves a bounded set of atom patterns; a cap
            # this size only ever trips on pathological workloads, where
            # restarting the memo beats unbounded growth.
            cache.clear()
        cache[cache_key] = (version, result, shape)
    return result
