"""A small relational-algebra kernel over named columns.

The decomposition-guided evaluators (Yannakakis, GHD evaluation, counting)
work on *named relations*: a :class:`NamedRelation` is a set of rows over an
ordered tuple of column names (query variables).  Joins and semijoins are
hash-based, so a single join costs time proportional to the sizes of the
inputs plus the output — which is what makes the Proposition 2.2 upper bound
(polynomial-time BCQ for bounded ghw) come out in the experiments.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

Value = Hashable


class NamedRelation:
    """An in-memory relation with named columns."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[Hashable], rows: Iterable[tuple] = ()) -> None:
        self.columns: tuple = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names: {self.columns!r}")
        self.rows: set[tuple] = set()
        width = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ValueError(f"row {row!r} does not match columns {self.columns!r}")
            self.rows.add(row)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NamedRelation):
            return NotImplemented
        if set(self.columns) != set(other.columns):
            return False
        return self.project(sorted(self.columns, key=repr)).rows == other.project(
            sorted(other.columns, key=repr)
        ).rows

    def __repr__(self) -> str:
        return f"NamedRelation(columns={self.columns!r}, rows={len(self.rows)})"

    def column_index(self, column: Hashable) -> int:
        return self.columns.index(column)

    # ------------------------------------------------------------------
    def project(self, columns: Sequence[Hashable]) -> "NamedRelation":
        """Projection onto the given columns (duplicates collapse)."""
        columns = tuple(columns)
        indexes = [self.column_index(c) for c in columns]
        projected = {tuple(row[i] for i in indexes) for row in self.rows}
        return NamedRelation(columns, projected)

    def select_equal(self, column: Hashable, value: Value) -> "NamedRelation":
        index = self.column_index(column)
        return NamedRelation(self.columns, {row for row in self.rows if row[index] == value})

    def rename(self, mapping: dict) -> "NamedRelation":
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        return NamedRelation(new_columns, self.rows)

    # ------------------------------------------------------------------
    def natural_join(self, other: "NamedRelation") -> "NamedRelation":
        """Hash-based natural join on the shared columns."""
        shared = [c for c in self.columns if c in other.columns]
        other_only = [c for c in other.columns if c not in self.columns]
        result_columns = self.columns + tuple(other_only)
        if not shared:
            rows = {
                left + tuple(right[other.column_index(c)] for c in other_only)
                for left in self.rows
                for right in other.rows
            }
            return NamedRelation(result_columns, rows)
        left_key_indexes = [self.column_index(c) for c in shared]
        right_key_indexes = [other.column_index(c) for c in shared]
        other_only_indexes = [other.column_index(c) for c in other_only]
        buckets: dict[tuple, list[tuple]] = {}
        for right in other.rows:
            key = tuple(right[i] for i in right_key_indexes)
            buckets.setdefault(key, []).append(right)
        rows = set()
        for left in self.rows:
            key = tuple(left[i] for i in left_key_indexes)
            for right in buckets.get(key, ()):
                rows.add(left + tuple(right[i] for i in other_only_indexes))
        return NamedRelation(result_columns, rows)

    def semijoin(self, other: "NamedRelation") -> "NamedRelation":
        """Keep the rows of ``self`` that join with at least one row of
        ``other`` (the Yannakakis filtering primitive)."""
        shared = [c for c in self.columns if c in other.columns]
        if not shared:
            return self if other.rows else NamedRelation(self.columns, set())
        left_key_indexes = [self.column_index(c) for c in shared]
        right_keys = {
            tuple(row[other.column_index(c)] for c in shared) for row in other.rows
        }
        rows = {
            row for row in self.rows
            if tuple(row[i] for i in left_key_indexes) in right_keys
        }
        return NamedRelation(self.columns, rows)

    def cross_product(self, other: "NamedRelation") -> "NamedRelation":
        if set(self.columns) & set(other.columns):
            raise ValueError("cross product requires disjoint columns")
        return self.natural_join(other)


def intersect_all(relations: Sequence[NamedRelation]) -> NamedRelation:
    """Natural join of a sequence of relations (smallest first)."""
    if not relations:
        raise ValueError("intersect_all requires at least one relation")
    ordered = sorted(relations, key=len)
    result = ordered[0]
    for relation in ordered[1:]:
        result = result.natural_join(relation)
    return result


def from_atom(atom, database) -> NamedRelation:
    """The named relation induced by a query atom over a database.

    Handles constants (selection) and repeated variables (equality selection)
    so the rest of the evaluators can assume clean named columns.
    """
    from repro.cq.query import Constant

    relation = database.relation(atom.relation)
    columns = []
    rows = set(relation.tuples)
    # First pass: selections for constants.
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            rows = {row for row in rows if row[index] == term.value}
    # Second pass: equality selections for repeated variables, then projection
    # onto one column per variable.
    first_position: dict = {}
    keep_indexes: list[int] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            continue
        if term in first_position:
            anchor = first_position[term]
            rows = {row for row in rows if row[index] == row[anchor]}
        else:
            first_position[term] = index
            keep_indexes.append(index)
            columns.append(term)
    projected = {tuple(row[i] for i in keep_indexes) for row in rows}
    return NamedRelation(columns, projected)
