"""The Yannakakis algorithm on join trees (alpha-acyclic queries).

Yannakakis' algorithm answers acyclic CQs in polynomial time: materialise one
relation per join-tree node, run an upward semijoin pass (bottom-up
filtering), a downward pass, and finally join along the tree.  Together with
join trees for width-1 GHDs it is the algorithmic core of Proposition 2.2's
upper bound; the GHD-guided evaluator in
:mod:`repro.cq.decomposition_eval` reduces bounded-ghw queries to exactly this
routine after materialising bag relations (:mod:`repro.cq.bags`).

Within the unified engine (:mod:`repro.engine`) this module is the execution
half of both decomposition strategies: the planner's ``direct-yannakakis``
and ``ghd-guided`` plans only differ in which decomposition feeds the bag
materialisation that ends here.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from repro.cq.relational import NamedRelation

Node = Hashable


class JoinTree:
    """A rooted join tree over arbitrary node identifiers.

    Parameters
    ----------
    relations:
        Mapping node -> :class:`NamedRelation`.
    parent:
        Mapping node -> parent node (``None`` for the root).  Exactly one root
        is required; forests should be connected beforehand (or evaluated per
        tree and combined by the caller).
    """

    def __init__(self, relations: Mapping[Node, NamedRelation], parent: Mapping[Node, Node | None]) -> None:
        self.relations: dict[Node, NamedRelation] = dict(relations)
        self.parent: dict[Node, Node | None] = dict(parent)
        roots = [n for n, p in self.parent.items() if p is None]
        if len(roots) != 1:
            raise ValueError(f"a join tree needs exactly one root, found {len(roots)}")
        self.root = roots[0]
        self.children: dict[Node, list[Node]] = {n: [] for n in self.relations}
        for node, parent_node in self.parent.items():
            if parent_node is not None:
                self.children[parent_node].append(node)

    def topological_order(self) -> list[Node]:
        """Nodes ordered root-first (parents before children)."""
        order = [self.root]
        frontier = [self.root]
        while frontier:
            current = frontier.pop()
            for child in self.children[current]:
                order.append(child)
                frontier.append(child)
        return order


def semijoin_reduce(tree: JoinTree) -> dict[Node, NamedRelation]:
    """The two semijoin passes of Yannakakis; returns the reduced relations.

    After reduction every remaining row participates in at least one global
    solution (the *global consistency* property of acyclic instances).
    """
    relations = dict(tree.relations)
    order = tree.topological_order()
    # Relations we created ourselves (not the caller's) may be filtered in
    # place; the caller's relations are only replaced, never mutated.  Either
    # way the semijoins reuse the key indexes cached on the probe side — the
    # downward pass hits each parent's index once per child.
    owned: set = set()

    def filter_node(node: Node, against: Node) -> None:
        current = relations[node]
        if node in owned:
            current.semijoin_inplace(relations[against])
            return
        filtered = current.semijoin(relations[against])
        if filtered is not current:
            relations[node] = filtered
            owned.add(node)

    # Upward pass (leaves to root): filter parents by children.
    for node in reversed(order):
        parent = tree.parent[node]
        if parent is None:
            continue
        filter_node(parent, node)
    # Downward pass (root to leaves): filter children by parents.
    for node in order:
        for child in tree.children[node]:
            filter_node(child, node)
    return relations


def yannakakis_boolean(tree: JoinTree) -> bool:
    """BCQ via Yannakakis: after the upward pass, the query is satisfiable iff
    the root relation (and every other) is non-empty."""
    relations = dict(tree.relations)
    if any(len(r) == 0 for r in relations.values()):
        return False
    order = tree.topological_order()
    for node in reversed(order):
        parent = tree.parent[node]
        if parent is None:
            continue
        relations[parent] = relations[parent].semijoin(relations[node])
        if not relations[parent]:
            return False
    return bool(relations[tree.root])


def yannakakis_full(tree: JoinTree, output_columns: Sequence[Hashable] | None = None) -> NamedRelation:
    """Full enumeration via Yannakakis: semijoin-reduce, then join bottom-up,
    projecting intermediate results onto the columns still needed above.

    ``output_columns`` defaults to the union of all columns (the full CQ
    case); supplying a subset yields the projection of the answers.
    """
    reduced = semijoin_reduce(tree)
    all_columns: list = []
    for relation in tree.relations.values():
        for column in relation.columns:
            if column not in all_columns:
                all_columns.append(column)
    if output_columns is None:
        output_columns = tuple(all_columns)
    else:
        output_columns = tuple(output_columns)

    needed_above: dict[Node, set] = {}

    def columns_needed(node: Node) -> set:
        # Columns that must survive when node's result is handed to its parent:
        # output columns plus columns shared with anything outside the subtree.
        subtree_nodes = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            subtree_nodes.add(current)
            frontier.extend(tree.children[current])
        outside_columns: set = set()
        for other, relation in tree.relations.items():
            if other not in subtree_nodes:
                outside_columns.update(relation.columns)
        own_columns: set = set()
        for member in subtree_nodes:
            own_columns.update(tree.relations[member].columns)
        return own_columns & (outside_columns | set(output_columns))

    for node in tree.relations:
        needed_above[node] = columns_needed(node)

    def evaluate(node: Node) -> NamedRelation:
        result = reduced[node]
        for child in tree.children[node]:
            child_result = evaluate(child)
            result = result.natural_join(child_result)
        keep = [c for c in result.columns if c in needed_above[node] or node == tree.root]
        if node == tree.root:
            keep = [c for c in result.columns if c in set(output_columns)] or list(result.columns)
        return result.project(keep)

    final = evaluate(tree.root)
    missing = [c for c in output_columns if c not in final.columns]
    if missing:
        raise ValueError(f"output columns {missing!r} do not occur in the join tree")
    return final.project(output_columns)
