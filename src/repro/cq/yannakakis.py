"""The Yannakakis algorithm on join trees (alpha-acyclic queries).

Yannakakis' algorithm answers acyclic CQs in polynomial time: materialise one
relation per join-tree node, run an upward semijoin pass (bottom-up
filtering), a downward pass, and finally join along the tree.  Together with
join trees for width-1 GHDs it is the algorithmic core of Proposition 2.2's
upper bound; the GHD-guided evaluator in
:mod:`repro.cq.decomposition_eval` reduces bounded-ghw queries to exactly this
routine after materialising bag relations (:mod:`repro.cq.bags`).

Within the unified engine (:mod:`repro.engine`) this module is the execution
half of both decomposition strategies: the planner's ``direct-yannakakis``
and ``ghd-guided`` plans only differ in which decomposition feeds the bag
materialisation that ends here.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from repro.cq.relational import NamedRelation
from repro.cq.statistics import (
    ORDERING_COST,
    estimate_semijoin_fraction,
    join_ordering,
    record_reducer_ordering,
)

Node = Hashable

#: A parent smaller than this is filtered in its children's given order —
#: estimating selectivities costs more than any misordering could save.
_REDUCER_MIN_ROWS = 64


class JoinTree:
    """A rooted join tree over arbitrary node identifiers.

    Parameters
    ----------
    relations:
        Mapping node -> :class:`NamedRelation`.
    parent:
        Mapping node -> parent node (``None`` for the root).  Exactly one root
        is required; forests should be connected beforehand (or evaluated per
        tree and combined by the caller).
    """

    def __init__(self, relations: Mapping[Node, NamedRelation], parent: Mapping[Node, Node | None]) -> None:
        self.relations: dict[Node, NamedRelation] = dict(relations)
        self.parent: dict[Node, Node | None] = dict(parent)
        roots = [n for n, p in self.parent.items() if p is None]
        if len(roots) != 1:
            raise ValueError(f"a join tree needs exactly one root, found {len(roots)}")
        self.root = roots[0]
        self.children: dict[Node, list[Node]] = {n: [] for n in self.relations}
        for node, parent_node in self.parent.items():
            if parent_node is not None:
                self.children[parent_node].append(node)

    def topological_order(self) -> list[Node]:
        """Nodes ordered root-first (parents before children)."""
        order = [self.root]
        frontier = [self.root]
        while frontier:
            current = frontier.pop()
            for child in self.children[current]:
                order.append(child)
                frontier.append(child)
        return order


def _ordered_children(relations, parent_relation, children: list) -> list:
    """The order in which a parent consumes its children's semijoin filters.

    The filters commute — the reduced parent is the rows matching *every*
    child, whatever the order — so ordering is purely a cost decision: apply
    the estimated-most-selective child first and the later (more expensive)
    probes scan an already-shrunk parent.  Only consulted in cost-based mode
    for parents large enough that the sketch lookups pay for themselves;
    ties keep the given order (``sorted`` is stable), so uniform data keeps
    the historical sweep.
    """
    if (
        len(children) < 2
        or len(parent_relation) < _REDUCER_MIN_ROWS
        or join_ordering() != ORDERING_COST
    ):
        return children
    parent_stats = parent_relation.statistics()
    parent_columns = set(parent_relation.columns)

    def fraction(child: Node) -> float:
        child_relation = relations[child]
        shared = [c for c in child_relation.columns if c in parent_columns]
        return estimate_semijoin_fraction(
            parent_stats, child_relation.statistics(), shared
        )

    record_reducer_ordering()
    return sorted(children, key=fraction)


def semijoin_reduce(tree: JoinTree) -> dict[Node, NamedRelation]:
    """The two semijoin passes of Yannakakis; returns the reduced relations.

    After reduction every remaining row participates in at least one global
    solution (the *global consistency* property of acyclic instances).

    The upward pass visits parents leaves-first and consumes each parent's
    children in selectivity order (:func:`_ordered_children`) — equivalent
    to the classic per-node sweep, since a node's children all precede it in
    the reversed topological order and semijoin filters commute.
    """
    relations = dict(tree.relations)
    order = tree.topological_order()
    # Relations we created ourselves (not the caller's) may be filtered in
    # place; the caller's relations are only replaced, never mutated.  Either
    # way the semijoins reuse the key indexes cached on the probe side — the
    # downward pass hits each parent's index once per child.
    owned: set = set()

    def filter_node(node: Node, against: Node) -> None:
        current = relations[node]
        if node in owned:
            current.semijoin_inplace(relations[against])
            return
        filtered = current.semijoin(relations[against])
        if filtered is not current:
            relations[node] = filtered
            owned.add(node)

    # Upward pass (leaves to root): filter parents by children.
    for node in reversed(order):
        children = tree.children[node]
        if not children:
            continue
        for child in _ordered_children(relations, relations[node], children):
            filter_node(node, child)
    # Downward pass (root to leaves): filter children by parents.
    for node in order:
        for child in tree.children[node]:
            filter_node(child, node)
    return relations


def yannakakis_boolean(tree: JoinTree) -> bool:
    """BCQ via Yannakakis: after the upward pass, the query is satisfiable iff
    the root relation (and every other) is non-empty."""
    relations = dict(tree.relations)
    if any(len(r) == 0 for r in relations.values()):
        return False
    order = tree.topological_order()
    for node in reversed(order):
        parent = tree.parent[node]
        if parent is None:
            continue
        relations[parent] = relations[parent].semijoin(relations[node])
        if not relations[parent]:
            return False
    return bool(relations[tree.root])


def yannakakis_full(tree: JoinTree, output_columns: Sequence[Hashable] | None = None) -> NamedRelation:
    """Full enumeration via Yannakakis: semijoin-reduce, then join bottom-up,
    projecting intermediate results onto the columns still needed above.

    ``output_columns`` defaults to the union of all columns (the full CQ
    case); supplying a subset yields the projection of the answers.
    """
    reduced = semijoin_reduce(tree)
    all_columns: list = []
    for relation in tree.relations.values():
        for column in relation.columns:
            if column not in all_columns:
                all_columns.append(column)
    if output_columns is None:
        output_columns = tuple(all_columns)
    else:
        output_columns = tuple(output_columns)

    needed_above: dict[Node, set] = {}

    def columns_needed(node: Node) -> set:
        # Columns that must survive when node's result is handed to its parent:
        # output columns plus columns shared with anything outside the subtree.
        subtree_nodes = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            subtree_nodes.add(current)
            frontier.extend(tree.children[current])
        outside_columns: set = set()
        for other, relation in tree.relations.items():
            if other not in subtree_nodes:
                outside_columns.update(relation.columns)
        own_columns: set = set()
        for member in subtree_nodes:
            own_columns.update(tree.relations[member].columns)
        return own_columns & (outside_columns | set(output_columns))

    for node in tree.relations:
        needed_above[node] = columns_needed(node)

    def evaluate(node: Node) -> NamedRelation:
        result = reduced[node]
        for child in tree.children[node]:
            child_result = evaluate(child)
            result = result.natural_join(child_result)
        keep = [c for c in result.columns if c in needed_above[node] or node == tree.root]
        if node == tree.root:
            keep = [c for c in result.columns if c in set(output_columns)] or list(result.columns)
        return result.project(keep)

    final = evaluate(tree.root)
    missing = [c for c in output_columns if c not in final.columns]
    if missing:
        raise ValueError(f"output columns {missing!r} do not occur in the join tree")
    return final.project(output_columns)
