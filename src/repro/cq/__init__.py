"""Conjunctive queries, databases, and query answering.

This subpackage is the query-answering substrate the paper's theorems are
about: Boolean conjunctive query answering (BCQ), answer enumeration, and
answer counting (#CQ), each available both through a generic backtracking
solver (the ground-truth baseline) and through decomposition-guided evaluation
(the Proposition 2.2 / 4.14 upper bounds that make bounded ghw classes
tractable).
"""

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.database import Database, Relation
from repro.cq.homomorphism import (
    boolean_answer,
    count_answers,
    enumerate_answers,
)
from repro.cq.yannakakis import yannakakis_boolean, yannakakis_full
from repro.cq.decomposition_eval import (
    decomposition_boolean_answer,
    decomposition_count_answers,
    decomposition_enumerate_answers,
)
from repro.cq.counting import count_answers_via_join_tree
from repro.cq.core import core_of, find_homomorphism_between_queries, queries_equivalent
from repro.cq.semantic_width import semantic_ghw
from repro.cq.bags import DecompositionMismatchError, build_bag_join_tree
from repro.cq import generators
from repro.cq import workloads

# The unified engine (analysis -> plan -> execute) is the documented public
# entry point; the per-strategy functions above remain as backends.  The
# engine sits *above* this package, so its names are re-exported lazily
# (PEP 562) — an eager import here would create a cq -> engine -> cq cycle.
_ENGINE_EXPORTS = frozenset(
    {"Engine", "EvalResult", "Plan", "answer", "count", "is_satisfiable", "plan_query"}
)


def __getattr__(name):
    if name in _ENGINE_EXPORTS:
        from repro import engine as _engine

        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Database",
    "Relation",
    "boolean_answer",
    "count_answers",
    "enumerate_answers",
    "yannakakis_boolean",
    "yannakakis_full",
    "decomposition_boolean_answer",
    "decomposition_count_answers",
    "decomposition_enumerate_answers",
    "count_answers_via_join_tree",
    "core_of",
    "find_homomorphism_between_queries",
    "queries_equivalent",
    "semantic_ghw",
    "DecompositionMismatchError",
    "build_bag_join_tree",
    "generators",
    "Engine",
    "EvalResult",
    "Plan",
    "answer",
    "count",
    "is_satisfiable",
    "plan_query",
]
