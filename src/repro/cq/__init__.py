"""Conjunctive queries, databases, and query answering.

This subpackage is the query-answering substrate the paper's theorems are
about: Boolean conjunctive query answering (BCQ), answer enumeration, and
answer counting (#CQ), each available both through a generic backtracking
solver (the ground-truth baseline) and through decomposition-guided evaluation
(the Proposition 2.2 / 4.14 upper bounds that make bounded ghw classes
tractable).
"""

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.database import Database, Relation
from repro.cq.homomorphism import (
    boolean_answer,
    count_answers,
    enumerate_answers,
)
from repro.cq.yannakakis import yannakakis_boolean, yannakakis_full
from repro.cq.decomposition_eval import (
    decomposition_boolean_answer,
    decomposition_count_answers,
    decomposition_enumerate_answers,
)
from repro.cq.counting import count_answers_via_join_tree
from repro.cq.core import core_of, find_homomorphism_between_queries, queries_equivalent
from repro.cq.semantic_width import semantic_ghw
from repro.cq import generators

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Database",
    "Relation",
    "boolean_answer",
    "count_answers",
    "enumerate_answers",
    "yannakakis_boolean",
    "yannakakis_full",
    "decomposition_boolean_answer",
    "decomposition_count_answers",
    "decomposition_enumerate_answers",
    "count_answers_via_join_tree",
    "core_of",
    "find_homomorphism_between_queries",
    "queries_equivalent",
    "semantic_ghw",
    "generators",
]
