"""Seeded scenario workloads spanning the paper's tractability regimes.

The tests, benchmarks, and examples all need the same thing: labelled
(query, database) suites that cover *every* dispatch route of the unified
engine, reproducibly from a seed.  One generator lives here so they stay in
sync.  Four regimes mirror the paper's complexity landscape:

* :data:`REGIME_ACYCLIC` — GYO-acyclic queries (chains, stars, random
  acyclic hypergraphs): the direct-Yannakakis route;
* :data:`REGIME_BOUNDED_GHW` — cyclic queries with small certified ghw
  (cycles, triangles, small jigsaws): the GHD-guided route (Prop. 2.2);
* :data:`REGIME_CORE_REDUCIBLE` — syntactically wide queries whose *core*
  is small (alternating-orientation cycles, redundant-atom folds): the
  semantic-width route (Section 4.3) — tractable despite their syntax;
* :data:`REGIME_HARD` — instances with no decomposition within the
  planner's width limit (wide cliques) or near-threshold random databases:
  the indexed-backtracking fallback, where no structure bound applies;
* :data:`REGIME_SHARDED` — queries built around a designated high-frequency
  join variable (``Scenario.shard_variable``): hub cycles and stars whose
  hub occurs in *every* atom (the co-partitioned rung of the sharding
  ladder) plus a hub-chain where it occurs in only some atoms (the
  broadcast rung).  The differential harness runs these — and every other
  regime — through the sharded execution path at several shard counts;
* :data:`REGIME_SKEWED` — the same query shapes over *skewed* data:
  Zipf-distributed columns and hub-heavy databases whose join keys
  concentrate on a few hot values.  Uniform-independence cardinality
  estimates are wrong here, so these scenarios exercise the heavy-hitter
  corrections of the cost-based join ordering and the hot-key broadcast
  spill of the sharded path (:mod:`repro.cq.statistics`).

Databases per scenario deliberately span the satisfiability spectrum —
random, planted (guaranteed satisfiable), unsatisfiable-by-construction, and
proper-colouring databases with predictable counts — so Boolean,
enumeration, and counting semantics are all exercised on both empty and
non-empty answer sets.

Beyond the static scenarios, :func:`append_schedule` turns any scenario
into an **append-heavy** replay: deterministic growth batches (drawn from
the database's own column values, plus fresh values) that the incremental
differential pass feeds through ``add_fact`` between standing-query
refreshes — semi-naive refresh must equal a from-scratch evaluation after
every batch.

Everything is deterministic in ``(seed, size, regime)``: the differential
harness can be pointed at a fresh seed every CI run and still reproduce any
failure locally.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass

from repro.cq import generators as cqgen
from repro.cq.database import Database, Relation
from repro.cq.query import Atom, Constant, ConjunctiveQuery

REGIME_ACYCLIC = "acyclic"
REGIME_BOUNDED_GHW = "bounded-ghw"
REGIME_CORE_REDUCIBLE = "core-reducible"
REGIME_HARD = "hard"
REGIME_SHARDED = "sharded"
REGIME_SKEWED = "skewed"
ALL_REGIMES = (
    REGIME_ACYCLIC,
    REGIME_BOUNDED_GHW,
    REGIME_CORE_REDUCIBLE,
    REGIME_HARD,
    REGIME_SHARDED,
    REGIME_SKEWED,
)

#: (domain size, tuples per relation) per workload size.  "small" keeps the
#: naive reference solver fast enough to cross-check every scenario; the
#: larger sizes are for benchmarks, where only the optimised routes run.
SIZES = {
    "small": (5, 16),
    "medium": (8, 60),
    "large": (12, 200),
}


@dataclass(frozen=True, eq=False)
class Scenario:
    """One labelled workload instance: a query, a database, and provenance.

    ``shard_variable`` is the designated high-frequency join variable for
    sharded execution — set for the :data:`REGIME_SHARDED` scenarios, where
    the generator knows the hub by construction; ``None`` elsewhere (the
    engine's :func:`~repro.engine.sharding.choose_shard_variable` picks one).
    """

    name: str
    regime: str
    query: ConjunctiveQuery
    database: Database
    seed: int
    description: str
    shard_variable: str | None = None

    def __repr__(self) -> str:
        return f"Scenario({self.name!r}, regime={self.regime!r})"


def _sub_rng(seed: int, size: str, regime: str) -> random.Random:
    # Each regime draws from its own stream, so selecting a subset of
    # regimes never shifts another regime's scenarios for the same seed.
    return random.Random(f"workload|{seed}|{size}|{regime}")


def _databases(query, rng, domain, tuples, colours=3):
    """The database spectrum for one query: satisfiable and not, plus the
    predictable proper-colouring instance for counting anchors."""
    return [
        ("random", cqgen.random_database(query, domain, tuples, seed=rng.randrange(2**30))),
        (
            "planted",
            cqgen.planted_database(
                query, domain, tuples, seed=rng.randrange(2**30), planted_solutions=2
            ),
        ),
        (
            "unsat",
            cqgen.unsatisfiable_database(query, domain, tuples, seed=rng.randrange(2**30)),
        ),
        ("colour", cqgen.grid_constraint_database(query, colours=colours)),
    ]


def _skewed_databases(query, rng, domain, tuples, colours=3):
    """The database spectrum for a skewed scenario: Zipf-distributed and
    hub-concentrated instances replace the uniform/colour ones; planted and
    unsatisfiable stay, so both answer polarities are still exercised."""
    return [
        ("zipf", cqgen.zipf_database(query, domain, tuples, seed=rng.randrange(2**30))),
        ("hub", cqgen.hub_database(query, domain, tuples, seed=rng.randrange(2**30))),
        (
            "planted",
            cqgen.planted_database(
                query, domain, tuples, seed=rng.randrange(2**30), planted_solutions=2
            ),
        ),
        (
            "unsat",
            cqgen.unsatisfiable_database(query, domain, tuples, seed=rng.randrange(2**30)),
        ),
    ]


def _random_acyclic_hypergraph(rng):
    from repro.hypergraphs.generators import random_acyclic_hypergraph

    return random_acyclic_hypergraph(
        num_edges=rng.randint(4, 6), max_rank=3, seed=rng.randrange(2**30)
    )


def _acyclic_queries(rng) -> list[tuple[str, ConjunctiveQuery]]:
    chain = cqgen.chain_query(rng.randint(3, 5))
    last = f"x{len(chain.atoms)}"
    star = cqgen.star_query(rng.randint(3, 5))
    return [
        ("chain-full", chain),
        ("chain-projected", chain.project(["x0", last])),
        ("star-boolean", star.as_boolean()),
        ("random-acyclic", cqgen.query_from_hypergraph(_random_acyclic_hypergraph(rng))),
    ]


def _bounded_ghw_queries(rng) -> list[tuple[str, ConjunctiveQuery]]:
    length = rng.choice([4, 5, 6])
    cycle = cqgen.cycle_query(length)
    return [
        ("cycle-full", cycle),
        ("cycle-projected", cycle.project(["x0"])),
        ("cycle-boolean", cqgen.cycle_query(rng.choice([4, 5])).as_boolean()),
        ("triangle", cqgen.clique_query(3)),
        ("jigsaw22", cqgen.jigsaw_query(2, 2)),
    ]


def _core_reducible_queries(rng) -> list[tuple[str, ConjunctiveQuery]]:
    # Redundant-atom fold: R(x, y) AND R(x, z) with z existential — the core
    # drops the second atom.
    fold = ConjunctiveQuery(
        [Atom("R", ["x", "y"]), Atom("R", ["x", "z"])], free_variables=["x", "y"]
    )
    return [
        ("zigzag-boolean", cqgen.zigzag_cycle_query(rng.choice([4, 6, 8]))),
        ("zigzag-free", cqgen.zigzag_cycle_query(6, free_variables=["x0", "x1"])),
        ("redundant-fold", fold),
    ]


def _hard_queries(rng) -> list[tuple[str, ConjunctiveQuery]]:
    # clique7's certified ghw upper bound (4) exceeds the default width
    # limit (3): the planner must fall back to indexed backtracking.  The
    # near-threshold cycle stays GHD-plannable but makes the *instance* do
    # real search work.
    return [
        ("clique7", cqgen.clique_query(7)),
        ("clique7-boolean", cqgen.clique_query(7).as_boolean()),
        ("threshold-cycle", cqgen.cycle_query(6).project(["x0"])),
    ]


def _sharded_queries(rng) -> list[tuple]:
    """Hub-centric queries for the sharded regime.  Three-element entries
    carry the designated shard variable (the hub every scenario is built
    around); the hub chain deliberately keeps the hub out of its tail atoms
    so the broadcast rung of the fallback ladder is exercised too."""
    wheel = cqgen.hub_cycle_query(rng.choice([3, 4]))
    hub_chain = ConjunctiveQuery(
        [
            Atom("C0", ["h", "x0"]),
            Atom("C1", ["x0", "x1"]),
            Atom("C2", ["x1", "x2"]),
        ]
    )
    return [
        ("hub-cycle-full", wheel, "h"),
        ("hub-cycle-projected", cqgen.hub_cycle_query(4).project(["h", "x0"]), "h"),
        ("hub-cycle-boolean", cqgen.hub_cycle_query(rng.choice([3, 4])).as_boolean(), "h"),
        ("hub-star", cqgen.star_query(rng.randint(3, 5)), "c"),
        ("hub-chain-broadcast", hub_chain, "h"),
    ]


def _skewed_queries(rng) -> list[tuple]:
    """Query shapes where skew actually bites: a triangle (three-relation
    join pool — the cost-based ordering has a genuine choice to make), a
    star, and a wheel (hub in every atom, so the sharded path must spill
    hot hub values to broadcast to stay balanced)."""
    return [
        ("skew-triangle", cqgen.clique_query(3)),
        ("skew-star", cqgen.star_query(rng.randint(3, 5)), "c"),
        ("skew-wheel", cqgen.hub_cycle_query(3), "h"),
    ]


_REGIME_QUERIES = {
    REGIME_ACYCLIC: _acyclic_queries,
    REGIME_BOUNDED_GHW: _bounded_ghw_queries,
    REGIME_CORE_REDUCIBLE: _core_reducible_queries,
    REGIME_HARD: _hard_queries,
    REGIME_SHARDED: _sharded_queries,
    REGIME_SKEWED: _skewed_queries,
}


def generate_workload(
    seed: int = 0,
    regimes: Iterable[str] = ALL_REGIMES,
    size: str = "small",
) -> list[Scenario]:
    """The labelled scenario suite for ``seed``: every regime × query shape ×
    database flavour, deterministically."""
    if size not in SIZES:
        raise ValueError(f"unknown size {size!r}; choose from {sorted(SIZES)}")
    domain, tuples = SIZES[size]
    scenarios = []
    for regime in regimes:
        try:
            build = _REGIME_QUERIES[regime]
        except KeyError:
            raise ValueError(
                f"unknown regime {regime!r}; choose from {ALL_REGIMES}"
            ) from None
        rng = _sub_rng(seed, size, regime)
        for entry in build(rng):
            # Regime builders emit (name, query) or — for the sharded
            # regime — (name, query, shard variable).
            query_name, query = entry[0], entry[1]
            shard_variable = entry[2] if len(entry) > 2 else None
            # Wide cliques get a smaller database: their atom count multiplies
            # the naive solver's per-node scan cost in the cross-checks.
            shrink = 2 if regime == REGIME_HARD and "clique" in query_name else 1
            databases = _skewed_databases if regime == REGIME_SKEWED else _databases
            for db_name, database in databases(
                query, rng, max(3, domain // shrink), max(6, tuples // shrink)
            ):
                scenarios.append(
                    Scenario(
                        name=f"{regime}/{query_name}/{db_name}/s{seed}",
                        regime=regime,
                        query=query,
                        database=database,
                        seed=seed,
                        description=(
                            f"{query_name} over a {db_name} database "
                            f"(size={size}, seed={seed})"
                        ),
                        shard_variable=shard_variable,
                    )
                )
    return scenarios


# ----------------------------------------------------------------------
# Append-heavy replay: deterministic growth batches for ANY scenario
# ----------------------------------------------------------------------
def append_schedule(
    database: Database,
    batches: int = 3,
    fraction: float = 0.05,
    seed: int = 0,
) -> list[dict]:
    """Deterministic append batches for an append-heavy replay of
    ``database``: ``batches`` dicts of relation name → rows to feed through
    ``add_fact`` (or ``POST /facts``) between refreshes.

    Each batch appends about ``fraction`` of every relation's current rows
    (at least one).  Cell values are drawn from the values already seen in
    the same column — so appended rows actually *join* — with a slice of
    fresh values (one past the column's maximum, for integer columns) so
    the interner/dictionary growth paths are exercised too.  Some generated
    rows may duplicate stored rows; the storage layer treats those as
    no-ops, which is itself part of the contract under test.

    Deterministic in ``(database contents, batches, fraction, seed)``; the
    schedule is computed up front, so applying batch ``i`` never changes
    batch ``i+1``.
    """
    if batches < 1:
        raise ValueError("append_schedule needs batches >= 1")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    rng = random.Random(f"appends|{seed}|{batches}|{fraction}")
    columns: dict = {}
    per_batch: dict = {}
    for name, relation in sorted(database.relations.items()):
        if relation.arity == 0:
            continue
        if relation.tuples:
            pools = [sorted({row[i] for row in relation}, key=repr)
                     for i in range(relation.arity)]
        else:
            # An empty relation still grows: small fresh integers, so the
            # relation-appears-later path of every cache layer is replayed.
            pools = [list(range(3)) for _ in range(relation.arity)]
        columns[name] = pools
        per_batch[name] = max(1, int(len(relation.tuples) * fraction))
    schedule = []
    for _ in range(batches):
        batch: dict = {}
        for name, pools in columns.items():
            rows = []
            for _ in range(per_batch[name]):
                row = []
                for pool in pools:
                    if rng.random() < 0.2 and all(
                        isinstance(v, int) and not isinstance(v, bool)
                        for v in pool
                    ):
                        row.append(max(pool) + 1 + rng.randrange(3))
                    else:
                        row.append(rng.choice(pool))
                rows.append(tuple(row))
            batch[name] = rows
        schedule.append(batch)
    return schedule


def apply_appends(database: Database, batch: dict) -> int:
    """Feed one :func:`append_schedule` batch through ``add_fact``; returns
    the number of genuinely new rows (duplicates are storage no-ops)."""
    added = 0
    for name, rows in batch.items():
        relation = database.relation(name)
        before = relation.version
        for row in rows:
            database.add_fact(name, row)
        added += relation.version - before
    return added


# ----------------------------------------------------------------------
# Batches: many queries over ONE database (the answer_many workload)
# ----------------------------------------------------------------------
def _rename_relations(query: ConjunctiveQuery, prefix: str) -> ConjunctiveQuery:
    atoms = [Atom(f"{prefix}{atom.relation}", atom.terms) for atom in query.atoms]
    return ConjunctiveQuery(atoms, free_variables=query.free_variables)


def _rename_variables(query: ConjunctiveQuery, suffix: str) -> ConjunctiveQuery:
    def rename(term):
        return term if isinstance(term, Constant) else f"{term}{suffix}"

    atoms = [
        Atom(atom.relation, [rename(term) for term in atom.terms])
        for atom in query.atoms
    ]
    free = [rename(variable) for variable in query.free_variables]
    return ConjunctiveQuery(atoms, free_variables=free)


def mixed_batch(
    seed: int = 0,
    copies: int = 4,
    size: str = "small",
    regimes: Iterable[str] = ALL_REGIMES,
    distinct: int | None = None,
) -> tuple[list[ConjunctiveQuery], Database]:
    """A serving-engine batch: a shuffled list of queries over one database.

    Every scenario of :func:`generate_workload` (optionally sampled down to
    ``distinct`` scenarios) contributes its query ``copies`` times —
    relations namespaced per scenario so all coexist in the one returned
    database.  Every second copy has its variables renamed, so the batch
    contains structurally-isomorphic-but-not-equal repeats: exactly what
    :meth:`EngineSession.answer_many`'s dedup pass is for.
    """
    if copies < 1:
        raise ValueError("mixed_batch needs copies >= 1")
    rng = random.Random(f"batch|{seed}|{size}|{copies}")
    scenarios = generate_workload(seed, regimes, size)
    if distinct is not None and distinct < len(scenarios):
        scenarios = rng.sample(scenarios, distinct)
    database = Database()
    queries: list[ConjunctiveQuery] = []
    for index, scenario in enumerate(scenarios):
        prefix = f"W{index}_"
        query = _rename_relations(scenario.query, prefix)
        for relation in scenario.database.relations.values():
            database.add_relation(
                Relation(f"{prefix}{relation.name}", relation.arity, relation.tuples)
            )
        for copy_index in range(copies):
            if copy_index % 2:
                queries.append(_rename_variables(query, f"_c{copy_index}"))
            else:
                queries.append(query)
    rng.shuffle(queries)
    return queries, database
