"""Workload generators: queries from hypergraphs and synthetic databases.

The experiments need two ingredients the paper treats abstractly:

* **queries over a given hypergraph** — self-join-free queries with no
  repeated variables whose hypergraph is exactly the given one (the class
  ``Q_J`` used in the Theorem 4.8 hardness argument);
* **databases** — random relations over a small domain, plus *planted*
  databases that are guaranteed to contain at least one solution, so both the
  satisfiable and unsatisfiable regimes can be exercised deterministically.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable

from repro.cq.database import Database, Relation
from repro.cq.query import Atom, ConjunctiveQuery
from repro.hypergraphs.hypergraph import Hypergraph


def _rng(seed) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def query_from_hypergraph(
    hypergraph: Hypergraph,
    relation_prefix: str = "R",
    free_variables: Iterable[Hashable] | None = None,
) -> ConjunctiveQuery:
    """The canonical self-join-free query with the given hypergraph.

    Every edge becomes one atom over a fresh relation symbol, with the edge's
    vertices (in deterministic order) as its variables; the query is full by
    default.  This is exactly the query class the lower-bound machinery works
    with (no self-joins, no repeated variables in an atom).
    """
    atoms = []
    for index, edge in enumerate(hypergraph.edge_list()):
        variables = sorted(edge, key=repr)
        atoms.append(Atom(f"{relation_prefix}{index}", variables))
    return ConjunctiveQuery(atoms, free_variables=free_variables)


def chain_query(length: int, arity: int = 2) -> ConjunctiveQuery:
    """A chain (path) query ``R0(x0, x1) AND R1(x1, x2) AND ...``."""
    if length < 1:
        raise ValueError("chain_query requires length >= 1")
    atoms = []
    for i in range(length):
        variables = [f"x{i}", f"x{i + 1}"]
        for k in range(arity - 2):
            variables.append(f"p{i}_{k}")
        atoms.append(Atom(f"R{i}", variables))
    return ConjunctiveQuery(atoms)


def cycle_query(length: int) -> ConjunctiveQuery:
    """A cycle query of the given length (ghw 2, degree 2)."""
    if length < 3:
        raise ValueError("cycle_query requires length >= 3")
    atoms = [
        Atom(f"R{i}", [f"x{i}", f"x{(i + 1) % length}"])
        for i in range(length)
    ]
    return ConjunctiveQuery(atoms)


def star_query(branches: int) -> ConjunctiveQuery:
    """A star query: ``R_i(c, x_i)`` for every branch (acyclic)."""
    if branches < 1:
        raise ValueError("star_query requires at least one branch")
    atoms = [Atom(f"R{i}", ["c", f"x{i}"]) for i in range(branches)]
    return ConjunctiveQuery(atoms)


def jigsaw_query(rows: int, cols: int) -> ConjunctiveQuery:
    """The canonical query over the ``rows x cols`` jigsaw hypergraph —
    the unbounded-ghw, degree-2, arity-<=-4 family at the heart of
    Theorem 4.8."""
    from repro.hypergraphs.generators import jigsaw

    return query_from_hypergraph(jigsaw(rows, cols), relation_prefix="J")


def zigzag_cycle_query(
    length: int,
    relation: str = "E",
    free_variables: Iterable[Hashable] | None = (),
) -> ConjunctiveQuery:
    """An alternating-orientation cycle over a *single* relation: the
    signature high-width-but-semantically-tractable query.

    The hypergraph is the ``length``-cycle (cyclic, ghw 2), but the
    alternation makes every second vertex fold onto ``x0``/``x1``, so the
    core is the single atom ``E(x0, x1)`` — acyclic.  Planning with
    ``use_core=True`` therefore turns a GHD-guided plan into direct
    Yannakakis (the Section 4.3 semantic-width route).

    ``length`` must be even and at least 4 (odd alternation would repeat a
    variable in the closing atom).  Free variables may only mention ``x0`` /
    ``x1`` — anything else (including ``None``, the full query) would pin a
    foldable vertex and break the single-atom-core invariant.
    """
    if length < 4 or length % 2:
        raise ValueError("zigzag_cycle_query requires an even length >= 4")
    if free_variables is None or not set(free_variables) <= {"x0", "x1"}:
        raise ValueError(
            "free variables of a zigzag cycle must be within {x0, x1} "
            "(a full zigzag query would be its own core)"
        )
    atoms = []
    for i in range(length):
        head, tail = f"x{i}", f"x{(i + 1) % length}"
        atoms.append(
            Atom(relation, [head, tail] if i % 2 == 0 else [tail, head])
        )
    return ConjunctiveQuery(atoms, free_variables=free_variables)


def hub_cycle_query(length: int, hub: str = "h") -> ConjunctiveQuery:
    """A wheel: a cycle whose every atom also contains the ``hub`` variable —
    ``H0(h, x0, x1) AND H1(h, x1, x2) AND ... AND H_{n-1}(h, x_{n-1}, x0)``.

    The signature *sharded-friendly* query: the hub occurs in every atom (at
    a fixed position), so hash-partitioning every relation on the hub column
    makes the shards answer-disjoint — the co-partitioned rung of the
    sharding ladder with no broadcast at all.  The hypergraph is cyclic
    (contracting the hub leaves the ``length``-cycle), so the query still
    exercises the GHD-guided route, where per-shard bag materialisation is
    genuinely cheaper than one big instance.
    """
    if length < 3:
        raise ValueError("hub_cycle_query requires length >= 3")
    atoms = [
        Atom(f"H{i}", [hub, f"x{i}", f"x{(i + 1) % length}"])
        for i in range(length)
    ]
    return ConjunctiveQuery(atoms)


def clique_query(size: int) -> ConjunctiveQuery:
    """The ``K_size`` clique query (bounded arity, treewidth ``size - 1``)."""
    if size < 2:
        raise ValueError("clique_query requires size >= 2")
    atoms = []
    index = 0
    for i in range(size):
        for j in range(i + 1, size):
            atoms.append(Atom(f"E{index}", [f"x{i}", f"x{j}"]))
            index += 1
    return ConjunctiveQuery(atoms)


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------
def random_database(
    query: ConjunctiveQuery,
    domain_size: int,
    tuples_per_relation: int,
    seed=0,
) -> Database:
    """A random database matching the query's schema."""
    rng = _rng(seed)
    database = Database()
    domain = list(range(domain_size))
    for atom in query.atoms:
        if database.has_relation(atom.relation):
            continue
        relation = Relation(atom.relation, atom.arity)
        for _ in range(tuples_per_relation):
            relation.add(tuple(rng.choice(domain) for _ in range(atom.arity)))
        database.add_relation(relation)
    return database


def zipf_database(
    query: ConjunctiveQuery,
    domain_size: int,
    tuples_per_relation: int,
    seed=0,
    exponent: float = 1.2,
) -> Database:
    """A random database whose every column is Zipf-distributed.

    Value ``r`` of the domain (1-indexed rank) is drawn with probability
    proportional to ``1 / r**exponent``, so a handful of head values carry
    most of the mass — the canonical skewed workload.  Uniform-independence
    cardinality estimates are badly wrong here unless corrected by heavy
    hitters, which is exactly what the cost-based join ordering's sketches
    are for.
    """
    if domain_size < 1:
        raise ValueError("zipf_database requires domain_size >= 1")
    rng = _rng(seed)
    database = Database()
    domain = list(range(domain_size))
    cumulative: list[float] = []
    total = 0.0
    for rank in range(1, domain_size + 1):
        total += 1.0 / rank**exponent
        cumulative.append(total)
    for atom in query.atoms:
        if database.has_relation(atom.relation):
            continue
        relation = Relation(atom.relation, atom.arity)
        for _ in range(tuples_per_relation):
            relation.add(
                tuple(rng.choices(domain, cum_weights=cumulative, k=atom.arity))
            )
        database.add_relation(relation)
    return database


def hub_database(
    query: ConjunctiveQuery,
    domain_size: int,
    tuples_per_relation: int,
    seed=0,
    hub_variables: Iterable[Hashable] | None = None,
    hot_values: int = 2,
    hot_fraction: float = 0.9,
) -> Database:
    """A database concentrating the *hub* columns on a few hot values.

    Every column bound to a hub variable draws from ``hot_values`` designated
    hot domain values with probability ``hot_fraction`` (uniform otherwise);
    non-hub columns stay uniform.  ``hub_variables=None`` targets the query's
    highest-degree variables — the join columns where skew actually hurts.
    This is the hub-heavy half of the skewed regime: join keys so
    concentrated that hash-partitioning on them collapses onto one shard
    unless hot keys are spilled to broadcast.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction!r}")
    rng = _rng(seed)
    database = Database()
    domain = list(range(domain_size))
    hot = domain[: max(1, min(hot_values, domain_size))]
    if hub_variables is None:
        occurrences: dict = {}
        for atom in query.atoms:
            for variable in atom.variables():
                occurrences[variable] = occurrences.get(variable, 0) + 1
        top = max(occurrences.values(), default=0)
        hubs = {v for v, count in occurrences.items() if count == top}
    else:
        hubs = set(hub_variables)
    for atom in query.atoms:
        if database.has_relation(atom.relation):
            continue
        relation = Relation(atom.relation, atom.arity)
        hub_positions = {
            index
            for index, term in enumerate(atom.terms)
            if not hasattr(term, "value") and term in hubs
        }
        for _ in range(tuples_per_relation):
            row = tuple(
                rng.choice(hot)
                if index in hub_positions and rng.random() < hot_fraction
                else rng.choice(domain)
                for index in range(atom.arity)
            )
            relation.add(row)
        database.add_relation(relation)
    return database


def planted_database(
    query: ConjunctiveQuery,
    domain_size: int,
    tuples_per_relation: int,
    seed=0,
    planted_solutions: int = 1,
) -> Database:
    """A random database guaranteed to satisfy the query.

    ``planted_solutions`` random assignments of the query variables are
    sampled and the corresponding ground atoms inserted, then random noise
    tuples are added up to the requested size.
    """
    rng = _rng(seed)
    database = random_database(query, domain_size, tuples_per_relation, seed=rng)
    domain = list(range(domain_size))
    for _ in range(max(1, planted_solutions)):
        assignment = {v: rng.choice(domain) for v in query.variables}
        for atom in query.atoms:
            row = tuple(
                term.value if hasattr(term, "value") else assignment[term]
                for term in atom.terms
            )
            database.add_fact(atom.relation, row)
    return database


def unsatisfiable_database(
    query: ConjunctiveQuery,
    domain_size: int,
    tuples_per_relation: int,
    seed=0,
) -> Database:
    """A database that cannot satisfy the query.

    One relation of the query is split off onto a private part of the domain,
    so no joint assignment can satisfy all atoms simultaneously.  The split
    only works for a relation appearing in exactly *one* atom that shares a
    variable with the rest of the query — shifting a self-joined relation
    would shift every one of its atoms coherently and can leave the query
    satisfiable.  When no atom qualifies (single-relation self-join queries,
    variable-disjoint queries), the first relation is left empty instead,
    which is unsatisfiable for any query that mentions it.
    """
    rng = _rng(seed)
    database = Database()
    domain = list(range(domain_size))
    shifted = [value + domain_size for value in domain]
    atoms = list(query.atoms)
    relation_occurrences: dict = {}
    for atom in atoms:
        relation_occurrences[atom.relation] = relation_occurrences.get(atom.relation, 0) + 1
    shared_index = None
    for index, atom in enumerate(atoms):
        if relation_occurrences[atom.relation] != 1:
            continue
        others = set()
        for other_index, other in enumerate(atoms):
            if other_index != index:
                others.update(other.variables())
        if set(atom.variables()) & others:
            shared_index = index
            break
    for index, atom in enumerate(atoms):
        if database.has_relation(atom.relation):
            continue
        relation = Relation(atom.relation, atom.arity)
        use_domain = shifted if index == shared_index else domain
        if shared_index is None and index == 0:
            database.add_relation(relation)
            continue
        for _ in range(tuples_per_relation):
            relation.add(tuple(rng.choice(use_domain) for _ in range(atom.arity)))
        database.add_relation(relation)
    return database


def grid_constraint_database(query: ConjunctiveQuery, colours: int, seed=0) -> Database:
    """A "proper colouring"-style database: every relation contains all tuples
    over ``colours`` values whose adjacent positions differ.

    On cycle/grid/jigsaw queries this produces instances whose solution counts
    have predictable structure (proper colourings), which the counting
    experiments use as a sanity anchor.
    """
    database = Database()
    for atom in query.atoms:
        if database.has_relation(atom.relation):
            continue
        relation = Relation(atom.relation, atom.arity)
        _fill_distinct_adjacent(relation, colours)
        database.add_relation(relation)
    return database


def _fill_distinct_adjacent(relation: Relation, colours: int) -> None:
    def rows(prefix: tuple) -> None:
        if len(prefix) == relation.arity:
            relation.add(prefix)
            return
        for value in range(colours):
            if prefix and value == prefix[-1]:
                continue
            rows(prefix + (value,))

    rows(())
