"""GHD-guided CQ evaluation (the Proposition 2.2 upper bound).

Given a generalised hypertree decomposition of the query's hypergraph of
width ``k``, evaluation proceeds in two stages:

1. **Bag materialisation** — for every decomposition node, join the (at most
   ``k``) relations of its cover ``lambda_u`` together with every atom
   assigned to that node, and project onto the bag.  Each bag relation has
   size at most ``||D||^k``.
2. **Acyclic evaluation** — the bag relations arranged along the
   decomposition tree form an acyclic instance equivalent to the original
   query, which Yannakakis answers in polynomial time.

This is what makes BCQ tractable for classes of bounded ghw, and (for full
CQs) what makes #CQ polynomial via the counting DP in
:mod:`repro.cq.counting`.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.cq.database import Database
from repro.cq.query import ConjunctiveQuery
from repro.cq.relational import NamedRelation, from_atom, natural_join_all
from repro.cq.yannakakis import JoinTree, yannakakis_boolean, yannakakis_full
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.ghw import ghw_upper_bound

Node = Hashable


class DecompositionMismatchError(ValueError):
    """Raised when the supplied GHD does not fit the query's hypergraph."""


def _atom_for_edge(query: ConjunctiveQuery):
    """Deterministically map each hypergraph edge (variable scope) to one atom."""
    by_scope: dict[frozenset, list] = {}
    for atom in query.atoms:
        by_scope.setdefault(atom.variable_set(), []).append(atom)
    return {
        scope: sorted(atoms, key=repr)[0]
        for scope, atoms in by_scope.items()
    }


def _assign_atoms_to_nodes(query: ConjunctiveQuery, ghd: GeneralizedHypertreeDecomposition) -> dict:
    """Assign every atom to one decomposition node whose bag contains its scope."""
    assignment: dict[Node, list] = {node: [] for node in ghd.bags}
    nodes = sorted(ghd.bags, key=repr)
    for atom in query.atoms:
        scope = atom.variable_set()
        host = next((node for node in nodes if scope <= ghd.bags[node]), None)
        if host is None:
            raise DecompositionMismatchError(
                f"atom {atom!r} is not covered by any bag of the decomposition"
            )
        assignment[host].append(atom)
    return assignment


def build_bag_join_tree(
    query: ConjunctiveQuery, database: Database, ghd: GeneralizedHypertreeDecomposition
) -> JoinTree:
    """Materialise bag relations and arrange them along the decomposition tree."""
    edge_atom = _atom_for_edge(query)
    assignment = _assign_atoms_to_nodes(query, ghd)
    # One atom may be materialised at several nodes (cover edge here, assigned
    # atom there): build its named relation once and share it — the cached key
    # indexes on the shared relation then serve every bag join that probes it.
    materialised: dict = {}

    def relation_for(atom) -> NamedRelation:
        if atom not in materialised:
            materialised[atom] = from_atom(atom, database)
        return materialised[atom]

    bag_relations: dict[Node, NamedRelation] = {}
    for node, bag in ghd.bags.items():
        atoms = []
        for cover_edge in sorted(ghd.covers[node], key=lambda e: sorted(map(repr, e))):
            atom = edge_atom.get(frozenset(cover_edge))
            if atom is not None:
                atoms.append(atom)
        for atom in assignment[node]:
            if atom not in atoms:
                atoms.append(atom)
        if not atoms:
            bag_relations[node] = NamedRelation(tuple(sorted(bag, key=repr)), set())
            if not bag:
                bag_relations[node] = NamedRelation((), {()})
            continue
        joined = natural_join_all([relation_for(atom) for atom in atoms])
        keep = [c for c in joined.columns if c in bag]
        bag_relations[node] = joined.project(keep)
    parent = _root_tree(ghd)
    return JoinTree(bag_relations, parent)


def _root_tree(ghd: GeneralizedHypertreeDecomposition) -> dict:
    """Orient the decomposition tree from an arbitrary (deterministic) root."""
    nodes = sorted(ghd.bags, key=repr)
    if not nodes:
        raise DecompositionMismatchError("the decomposition has no nodes")
    parent: dict[Node, Node | None] = {}
    root = nodes[0]
    parent[root] = None
    seen = {root}
    frontier = [root]
    decomposition = ghd.decomposition
    while frontier:
        current = frontier.pop()
        for neighbour in decomposition.neighbours(current):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            parent[neighbour] = current
            frontier.append(neighbour)
    missing = set(nodes) - seen
    if missing:
        # The decomposition tree should be connected; connect leftovers to the
        # root so evaluation still works (their bags share no variables with
        # the rest, so this is a plain conjunction).
        for node in sorted(missing, key=repr):
            parent[node] = root
            seen.add(node)
    return parent


def _default_ghd(query: ConjunctiveQuery) -> GeneralizedHypertreeDecomposition:
    result = ghw_upper_bound(query.hypergraph())
    if result.decomposition is None:
        raise DecompositionMismatchError("could not build a decomposition for the query")
    return result.decomposition


def decomposition_boolean_answer(
    query: ConjunctiveQuery,
    database: Database,
    ghd: GeneralizedHypertreeDecomposition | None = None,
) -> bool:
    """BCQ through a (supplied or computed) GHD."""
    if not query.atoms:
        return True
    if ghd is None:
        ghd = _default_ghd(query)
    tree = build_bag_join_tree(query, database, ghd)
    return yannakakis_boolean(tree)


def decomposition_enumerate_answers(
    query: ConjunctiveQuery,
    database: Database,
    ghd: GeneralizedHypertreeDecomposition | None = None,
) -> set[tuple]:
    """The answer set ``q(D)`` through a GHD (projected onto the free variables)."""
    if not query.atoms:
        return {()}
    if ghd is None:
        ghd = _default_ghd(query)
    tree = build_bag_join_tree(query, database, ghd)
    if not query.free_variables:
        return {()} if yannakakis_boolean(tree) else set()
    result = yannakakis_full(tree, output_columns=query.free_variables)
    return set(result.rows)


def decomposition_count_answers(
    query: ConjunctiveQuery,
    database: Database,
    ghd: GeneralizedHypertreeDecomposition | None = None,
) -> int:
    """#CQ for *full* CQs through a GHD (Proposition 4.14's upper bound).

    Raises ``ValueError`` for non-full queries: with existential variables the
    problem is #P-hard already for acyclic queries (Pichler and Skritek), and
    the join-tree DP would count the wrong thing.
    """
    from repro.cq.counting import count_answers_via_join_tree

    if not query.is_full():
        raise ValueError("decomposition-based counting requires a full CQ")
    if not query.atoms:
        return 1
    if ghd is None:
        ghd = _default_ghd(query)
    tree = build_bag_join_tree(query, database, ghd)
    return count_answers_via_join_tree(tree)
